//! The greedy dense-subgraph algorithm (§3.4.2, Algorithm 1).
//!
//! Three phases:
//!
//! 1. **Pre-processing**: prune entities too distant from the mentions —
//!    for every entity, sum the squared shortest weighted-path distances to
//!    all mention nodes and keep the `graph_size_factor × #mentions`
//!    closest, never dropping a mention's last candidate.
//! 2. **Main loop**: iteratively remove the non-taboo entity with the
//!    smallest weighted degree (an entity is taboo when it is the last
//!    remaining candidate of a mention it is connected to). The kept
//!    solution maximizes `min weighted degree of entities / #entities`.
//! 3. **Post-processing**: the solution may leave several candidates per
//!    mention; enumerate all combinations when feasible, otherwise run a
//!    deterministic local search, maximizing the total edge weight.

use ned_core::NedError;
use ned_obs::Clock;

use crate::graph::MentionEntityGraph;
use crate::obs::SolverObs;

/// Parameters of the solver (a slice of [`crate::AidaConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Keep `graph_size_factor × #mentions` entities after pre-pruning.
    pub graph_size_factor: usize,
    /// Enumerate exhaustively when the combination count is at most this.
    pub exhaustive_limit: u64,
    /// Local-search sweeps when enumeration is infeasible.
    pub local_search_iterations: usize,
    /// Seed for local-search restarts.
    pub seed: u64,
    /// Deterministic iteration budget (Dijkstra pops, greedy removals, and
    /// post-processing objective evaluations each cost one unit).
    /// `u64::MAX` disables the guard.
    pub max_iterations: u64,
    /// Optional wall-clock budget in milliseconds. Nondeterministic by
    /// nature; `None` keeps runs reproducible.
    pub wall_budget_ms: Option<u64>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            graph_size_factor: 5,
            exhaustive_limit: 20_000,
            local_search_iterations: 400,
            seed: 0xa1da,
            max_iterations: u64::MAX,
            wall_budget_ms: None,
        }
    }
}

/// The solver's iteration/wall budget. One unit is one "small" step —
/// a Dijkstra pop, one greedy removal scan, one full-assignment objective
/// evaluation — so exhaustion is deterministic for a given graph and
/// budget regardless of thread count or machine speed.
struct Budget {
    spent: u64,
    max: u64,
    started_ns: u64,
    wall_ms: Option<u64>,
    clock: Clock,
}

impl Budget {
    fn new(config: &SolverConfig, clock: &Clock) -> Self {
        Budget {
            spent: 0,
            max: config.max_iterations,
            // The wall clock bounds *runtime*, never influences *results*:
            // exhaustion yields a typed BudgetExhausted error, not a
            // different answer. With no wall budget the clock is never
            // consulted at all.
            started_ns: if config.wall_budget_ms.is_some() { clock.now_nanos() } else { 0 },
            wall_ms: config.wall_budget_ms,
            clock: clock.clone(),
        }
    }

    /// Charges one unit; errors when the budget is exhausted. The wall
    /// clock is sampled only every 1024 units to keep the guard cheap.
    fn charge(&mut self) -> Result<(), NedError> {
        self.spent = self.spent.saturating_add(1);
        if self.spent > self.max {
            return Err(NedError::BudgetExhausted { spent: self.spent, budget: self.max });
        }
        if let Some(budget_ms) = self.wall_ms {
            if self.spent.is_multiple_of(1024) {
                let elapsed_ms =
                    self.clock.now_nanos().saturating_sub(self.started_ns) / 1_000_000;
                if elapsed_ms > budget_ms {
                    return Err(NedError::DeadlineExceeded { elapsed_ms, budget_ms });
                }
            }
        }
        Ok(())
    }
}

/// Distance penalty for an entity that cannot reach a mention at all.
const UNREACHABLE: f64 = 100.0;

/// Solves the graph without a budget guard (compatibility entry point):
/// returns, per mention, the chosen entity node index (`None` only for
/// mentions without candidates).
pub fn solve(graph: &MentionEntityGraph, config: &SolverConfig) -> Vec<Option<usize>> {
    let unbounded =
        SolverConfig { max_iterations: u64::MAX, wall_budget_ms: None, ..*config };
    // With an unlimited budget the solver cannot fail.
    solve_budgeted(graph, &unbounded).unwrap_or_else(|_| vec![None; graph.mention_count])
}

/// [`solve_budgeted`] with a system clock and disabled counters.
pub fn solve_budgeted(
    graph: &MentionEntityGraph,
    config: &SolverConfig,
) -> Result<Vec<Option<usize>>, NedError> {
    solve_budgeted_observed(graph, config, &Clock::system(), &SolverObs::default())
}

/// Solves the graph under the configured iteration/wall budget.
///
/// On exhaustion, returns [`NedError::BudgetExhausted`] (deterministic) or
/// [`NedError::DeadlineExceeded`] (wall budget, opt-in): the caller — the
/// disambiguator's degradation ladder — falls back to local features
/// instead of stalling the whole batch on one adversarial document.
///
/// Wall-clock reads go through `clock` (only when a wall budget is set);
/// `obs` receives the solver's work counters, all of which count
/// deterministic algorithmic steps.
pub fn solve_budgeted_observed(
    graph: &MentionEntityGraph,
    config: &SolverConfig,
    clock: &Clock,
    obs: &SolverObs,
) -> Result<Vec<Option<usize>>, NedError> {
    let n = graph.entity_count();
    if n == 0 {
        return Ok(vec![None; graph.mention_count]);
    }
    obs.invocations.inc();
    let mut budget = Budget::new(config, clock);
    let result = (|| {
        let mut active = prune_distant_entities(graph, config, &mut budget)?;
        obs.entities_pruned.add(active.iter().filter(|&&a| !a).count() as u64);
        let best_active = greedy_min_degree(graph, &mut active, &mut budget, obs)?;
        postprocess(graph, &best_active, config, &mut budget)
    })();
    // `spent` is the ladder's iteration currency; record it whether the
    // solve finished or exhausted, so totals reflect work actually done.
    obs.iterations.add(budget.spent);
    if result.is_err() {
        obs.budget_exhausted.inc();
    }
    result
}

/// Phase 1: keep the `factor × #mentions` entities with the smallest sum of
/// squared shortest-path distances to the mention set.
fn prune_distant_entities(
    graph: &MentionEntityGraph,
    config: &SolverConfig,
    budget: &mut Budget,
) -> Result<Vec<bool>, NedError> {
    let n = graph.entity_count();
    let keep_target = config.graph_size_factor.saturating_mul(graph.mention_count).max(1);
    if n <= keep_target {
        return Ok(vec![true; n]);
    }
    // Sum of squared shortest-path distances from every mention.
    let mut distance_sum = vec![0.0f64; n];
    for mi in 0..graph.mention_count {
        let d = dijkstra_from_mention(graph, mi, budget)?;
        for (v, sum) in distance_sum.iter_mut().enumerate() {
            let dv = d[v].unwrap_or(UNREACHABLE);
            *sum += dv * dv;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| distance_sum[a].total_cmp(&distance_sum[b]));
    let mut active = vec![false; n];
    for &v in order.iter().take(keep_target) {
        active[v] = true;
    }
    // Never drop a mention's last candidate: re-add its best-weighted one.
    for (mi, cands) in graph.mention_candidates.iter().enumerate() {
        if cands.is_empty() || cands.iter().any(|&ni| active[ni]) {
            continue;
        }
        let best = cands.iter().copied().max_by(|&a, &b| {
            mention_edge_weight(graph, a, mi).total_cmp(&mention_edge_weight(graph, b, mi))
        });
        if let Some(best) = best {
            active[best] = true;
        }
    }
    Ok(active)
}

/// Dijkstra over the bipartite mention/entity graph starting at mention
/// `mi`; edge length is `1 − weight` (weights are in [0, 1] after graph
/// construction). Returns entity-node distances.
fn dijkstra_from_mention(
    graph: &MentionEntityGraph,
    mi: usize,
    budget: &mut Budget,
) -> Result<Vec<Option<f64>>, NedError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Node ids: 0..n are entities, n..n+m are mentions.
    let n = graph.entity_count();
    let total = n + graph.mention_count;
    let mut dist = vec![f64::INFINITY; total];
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
    let start = n + mi;
    dist[start] = 0.0;
    heap.push(Reverse((OrdF64(0.0), start)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        budget.charge()?;
        if d > dist[u] {
            continue;
        }
        let relax = |v: usize, w: f64, dist: &mut Vec<f64>, heap: &mut BinaryHeap<_>| {
            let len = (1.0 - w).max(0.0);
            let nd = d + len;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        };
        if u < n {
            // Entity node: neighbours are its mentions and related entities.
            for &(m, w) in &graph.nodes[u].mention_edges {
                relax(n + m, w, &mut dist, &mut heap);
            }
            for &(v, w) in &graph.nodes[u].entity_edges {
                relax(v, w, &mut dist, &mut heap);
            }
        } else {
            let m = u - n;
            for &ni in &graph.mention_candidates[m] {
                let w = mention_edge_weight(graph, ni, m);
                relax(ni, w, &mut dist, &mut heap);
            }
        }
    }
    Ok((0..n).map(|v| dist[v].is_finite().then_some(dist[v])).collect())
}

/// Total-order wrapper for finite f64 keys in the heap.
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn mention_edge_weight(graph: &MentionEntityGraph, ni: usize, mi: usize) -> f64 {
    graph.nodes[ni]
        .mention_edges
        .iter()
        .find(|&&(m, _)| m == mi)
        .map_or(0.0, |&(_, w)| w)
}

/// Phase 2: the greedy main loop. Mutates `active` while iterating and
/// returns the best active set found.
fn greedy_min_degree(
    graph: &MentionEntityGraph,
    active: &mut [bool],
    budget: &mut Budget,
    obs: &SolverObs,
) -> Result<Vec<bool>, NedError> {
    let n = graph.entity_count();
    let mut degree: Vec<f64> = (0..n)
        .map(|v| if active[v] { graph.weighted_degree(v, active) } else { 0.0 })
        .collect();
    // Remaining active candidates per mention.
    let mut remaining: Vec<usize> = graph
        .mention_candidates
        .iter()
        .map(|cands| cands.iter().filter(|&&ni| active[ni]).count())
        .collect();

    let objective = |active: &[bool], degree: &[f64]| -> f64 {
        let count = active.iter().filter(|&&a| a).count();
        if count == 0 {
            return f64::NEG_INFINITY;
        }
        let min_deg = (0..n)
            .filter(|&v| active[v])
            .map(|v| degree[v])
            .fold(f64::INFINITY, f64::min);
        min_deg / count as f64
    };

    let mut best_active = active.to_vec();
    let mut best_objective = objective(active, &degree);

    loop {
        budget.charge()?;
        // Taboo: entity is the last candidate of any incident mention.
        let is_taboo = |v: usize| {
            graph.nodes[v]
                .mention_edges
                .iter()
                .any(|&(m, _)| remaining[m] <= 1 && graph.mention_candidates[m].contains(&v))
        };
        let mut taboo_now = 0u64;
        let victim = (0..n)
            .filter(|&v| active[v])
            .filter(|&v| {
                if is_taboo(v) {
                    taboo_now += 1;
                    false
                } else {
                    true
                }
            })
            .min_by(|&a, &b| degree[a].total_cmp(&degree[b]));
        obs.taboo_hits.add(taboo_now);
        let Some(v) = victim else { break };
        // Remove v and update neighbour degrees.
        active[v] = false;
        degree[v] = 0.0;
        for &(u, w) in &graph.nodes[v].entity_edges {
            if active[u] {
                degree[u] -= w;
            }
        }
        for &(m, _) in &graph.nodes[v].mention_edges {
            if graph.mention_candidates[m].contains(&v) {
                remaining[m] -= 1;
            }
        }
        let obj = objective(active, &degree);
        if obj > best_objective {
            best_objective = obj;
            best_active = active.to_vec();
        }
    }
    Ok(best_active)
}

/// Phase 3: resolve mentions that still have several active candidates.
fn postprocess(
    graph: &MentionEntityGraph,
    active: &[bool],
    config: &SolverConfig,
    budget: &mut Budget,
) -> Result<Vec<Option<usize>>, NedError> {
    let choices: Vec<Vec<usize>> = graph
        .mention_candidates
        .iter()
        .map(|cands| cands.iter().copied().filter(|&ni| active[ni]).collect::<Vec<_>>())
        .collect();
    // Combination count with saturation.
    let mut combos: u64 = 1;
    for c in &choices {
        combos = combos.saturating_mul(c.len().max(1) as u64);
        if combos > config.exhaustive_limit {
            break;
        }
    }
    if combos <= config.exhaustive_limit {
        exhaustive(graph, &choices, budget)
    } else {
        local_search(graph, &choices, config, budget)
    }
}

/// Total objective of a full assignment: chosen mention-edge weights plus
/// entity-edge weights between distinct chosen nodes (each pair once).
fn assignment_weight(graph: &MentionEntityGraph, assignment: &[Option<usize>]) -> f64 {
    let mut total = 0.0;
    let mut chosen: Vec<usize> = Vec::with_capacity(assignment.len());
    for (mi, &a) in assignment.iter().enumerate() {
        if let Some(ni) = a {
            total += mention_edge_weight(graph, ni, mi);
            chosen.push(ni);
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    for (i, &a) in chosen.iter().enumerate() {
        for &(b, w) in &graph.nodes[a].entity_edges {
            if chosen[i + 1..].binary_search(&b).is_ok() {
                total += w;
            }
        }
    }
    total
}

fn exhaustive(
    graph: &MentionEntityGraph,
    choices: &[Vec<usize>],
    budget: &mut Budget,
) -> Result<Vec<Option<usize>>, NedError> {
    let m = choices.len();
    let mut current: Vec<Option<usize>> = vec![None; m];
    let mut best: Vec<Option<usize>> = vec![None; m];
    let mut best_weight = f64::NEG_INFINITY;
    fn recurse(
        graph: &MentionEntityGraph,
        choices: &[Vec<usize>],
        mi: usize,
        current: &mut Vec<Option<usize>>,
        best: &mut Vec<Option<usize>>,
        best_weight: &mut f64,
        budget: &mut Budget,
    ) -> Result<(), NedError> {
        if mi == choices.len() {
            budget.charge()?;
            let w = assignment_weight(graph, current);
            if w > *best_weight {
                *best_weight = w;
                best.clone_from(current);
            }
            return Ok(());
        }
        if choices[mi].is_empty() {
            current[mi] = None;
            return recurse(graph, choices, mi + 1, current, best, best_weight, budget);
        }
        for &ni in &choices[mi] {
            current[mi] = Some(ni);
            recurse(graph, choices, mi + 1, current, best, best_weight, budget)?;
        }
        Ok(())
    }
    recurse(graph, choices, 0, &mut current, &mut best, &mut best_weight, budget)?;
    Ok(best)
}

/// xorshift64* generator for deterministic restarts.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn local_search(
    graph: &MentionEntityGraph,
    choices: &[Vec<usize>],
    config: &SolverConfig,
    budget: &mut Budget,
) -> Result<Vec<Option<usize>>, NedError> {
    let m = choices.len();
    let mut rng = XorShift(config.seed | 1);
    // Start from per-mention best local weight.
    let greedy_start: Vec<Option<usize>> = choices
        .iter()
        .enumerate()
        .map(|(mi, cands)| {
            cands.iter().copied().max_by(|&a, &b| {
                mention_edge_weight(graph, a, mi).total_cmp(&mention_edge_weight(graph, b, mi))
            })
        })
        .collect();
    let mut best = greedy_start.clone();
    let mut best_weight = assignment_weight(graph, &best);

    const RESTARTS: usize = 4;
    for restart in 0..RESTARTS {
        let mut current = if restart == 0 {
            greedy_start.clone()
        } else {
            // Random restart: candidates sampled uniformly.
            choices
                .iter()
                .map(|cands| (!cands.is_empty()).then(|| cands[rng.below(cands.len())]))
                .collect()
        };
        let mut current_weight = assignment_weight(graph, &current);
        // Hill climbing: sweep mentions, trying each candidate.
        for _ in 0..config.local_search_iterations {
            let mut improved = false;
            for mi in 0..m {
                if choices[mi].len() < 2 {
                    continue;
                }
                let original = current[mi];
                for &ni in &choices[mi] {
                    if Some(ni) == original {
                        continue;
                    }
                    budget.charge()?;
                    current[mi] = Some(ni);
                    let w = assignment_weight(graph, &current);
                    if w > current_weight {
                        current_weight = w;
                        improved = true;
                    } else {
                        current[mi] = original;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        if current_weight > best_weight {
            best_weight = current_weight;
            best = current;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::EntityId;
    use ned_relatedness::Relatedness;

    struct TableRel(Vec<(EntityId, EntityId, f64)>);

    impl Relatedness for TableRel {
        fn name(&self) -> &'static str {
            "table"
        }
        fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
            self.0
                .iter()
                .find(|&&(x, y, _)| (x == a && y == b) || (x == b && y == a))
                .map_or(0.0, |&(_, _, w)| w)
        }
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// The Page/Kashmir scenario: coherence must override the misleading
    /// local preference of mention 0.
    fn coherent_graph() -> MentionEntityGraph {
        // Mention 0 "Kashmir": region (local 0.9) vs song (local 0.5).
        // Mention 1 "Page": Jimmy (0.6) vs Larry (0.55).
        // Song–Jimmy strongly related; region related to nothing.
        let local = vec![
            vec![(e(10), 0.9), (e(11), 0.5)], // 10 = region, 11 = song
            vec![(e(20), 0.6), (e(21), 0.55)], // 20 = Jimmy, 21 = Larry
        ];
        let rel = TableRel(vec![(e(11), e(20), 1.0)]);
        MentionEntityGraph::build(&local, &rel, 0.6, true)
    }

    fn chosen_entities(
        graph: &MentionEntityGraph,
        solution: &[Option<usize>],
    ) -> Vec<Option<EntityId>> {
        solution.iter().map(|s| s.map(|ni| graph.nodes[ni].entity)).collect()
    }

    #[test]
    fn coherence_overrides_local_preference() {
        let graph = coherent_graph();
        let solution = solve(&graph, &SolverConfig::default());
        let chosen = chosen_entities(&graph, &solution);
        assert_eq!(chosen, vec![Some(e(11)), Some(e(20))]);
    }

    #[test]
    fn every_mention_gets_exactly_one_entity() {
        let graph = coherent_graph();
        let solution = solve(&graph, &SolverConfig::default());
        assert_eq!(solution.len(), graph.mention_count);
        assert!(solution.iter().all(|s| s.is_some()));
    }

    #[test]
    fn empty_graph_maps_nothing() {
        let local: Vec<Vec<(EntityId, f64)>> = vec![vec![], vec![]];
        let rel = TableRel(vec![]);
        let graph = MentionEntityGraph::build(&local, &rel, 0.4, true);
        let solution = solve(&graph, &SolverConfig::default());
        assert_eq!(solution, vec![None, None]);
    }

    #[test]
    fn mention_without_candidates_is_unmapped_others_resolved() {
        let local = vec![vec![], vec![(e(1), 0.7)]];
        let rel = TableRel(vec![]);
        let graph = MentionEntityGraph::build(&local, &rel, 0.4, true);
        let solution = solve(&graph, &SolverConfig::default());
        assert_eq!(solution[0], None);
        assert!(solution[1].is_some());
    }

    #[test]
    fn pruning_keeps_last_candidates() {
        // 30 mentions × 1 candidate each with tiny factor: every candidate
        // is some mention's last and must survive.
        let local: Vec<Vec<(EntityId, f64)>> =
            (0..30).map(|i| vec![(e(i), 0.5 + (i as f64) * 0.01)]).collect();
        let rel = TableRel(vec![]);
        let graph = MentionEntityGraph::build(&local, &rel, 0.4, true);
        let config = SolverConfig { graph_size_factor: 1, ..Default::default() };
        let solution = solve(&graph, &config);
        assert!(solution.iter().all(|s| s.is_some()));
    }

    #[test]
    fn local_search_matches_exhaustive_on_small_graph() {
        let graph = coherent_graph();
        let exhaustive_solution = solve(&graph, &SolverConfig::default());
        let ls_solution =
            solve(&graph, &SolverConfig { exhaustive_limit: 0, ..Default::default() });
        assert_eq!(
            assignment_weight(&graph, &exhaustive_solution),
            assignment_weight(&graph, &ls_solution)
        );
    }

    #[test]
    fn solver_is_deterministic() {
        let graph = coherent_graph();
        let a = solve(&graph, &SolverConfig::default());
        let b = solve(&graph, &SolverConfig::default());
        assert_eq!(a, b);
    }

    /// One mention with 2000 candidates: the pruning phase's Dijkstra pops
    /// every node, charging > 1024 units and crossing the wall-clock
    /// sampling cadence before any greedy shrinking happens.
    fn wide_graph() -> MentionEntityGraph {
        let local: Vec<Vec<(EntityId, f64)>> =
            vec![(0..2000u32).map(|ci| (e(ci), 0.5)).collect()];
        MentionEntityGraph::build(&local, &TableRel(vec![]), 0.4, true)
    }

    #[test]
    fn manual_clock_deadline_is_deterministic() {
        let config = SolverConfig { wall_budget_ms: Some(5), ..Default::default() };
        // Advance the hand *after* the budget reads its start time — as if
        // 10 ms passed mid-solve — and charge up to the sampling point.
        let (clock, hand) = Clock::manual();
        let mut budget = Budget::new(&config, &clock);
        hand.advance_ms(10);
        for _ in 0..1023 {
            budget.charge().expect("below the sampling cadence");
        }
        let err = budget.charge();
        assert!(matches!(err, Err(NedError::DeadlineExceeded { .. })), "{err:?}");
        // The whole solver under an idle manual clock: the wall budget
        // never trips, no real time involved.
        let graph = wide_graph();
        let (idle, _hand) = Clock::manual();
        let result = solve_budgeted_observed(&graph, &config, &idle, &SolverObs::default());
        assert!(result.is_ok());
    }

    #[test]
    fn solver_counters_track_work_and_exhaustion() {
        use ned_obs::{names, Metrics};
        let graph = wide_graph();
        let metrics = Metrics::new();
        let obs = SolverObs::new(&metrics);
        let ok = solve_budgeted_observed(
            &graph,
            &SolverConfig::default(),
            &Clock::null(),
            &obs,
        );
        assert!(ok.is_ok());
        assert_eq!(metrics.counter_value(names::AIDA_SOLVER_INVOCATIONS), 1);
        assert!(metrics.counter_value(names::AIDA_SOLVER_ITERATIONS) > 1024);
        assert!(metrics.counter_value(names::AIDA_SOLVER_ENTITIES_PRUNED) > 0);
        assert_eq!(metrics.counter_value(names::AIDA_SOLVER_BUDGET_EXHAUSTED), 0);
        let starved = SolverConfig { max_iterations: 10, ..Default::default() };
        let err = solve_budgeted_observed(&graph, &starved, &Clock::null(), &obs);
        assert!(matches!(err, Err(NedError::BudgetExhausted { .. })));
        assert_eq!(metrics.counter_value(names::AIDA_SOLVER_BUDGET_EXHAUSTED), 1);
        assert_eq!(metrics.counter_value(names::AIDA_SOLVER_INVOCATIONS), 2);
    }

    #[test]
    fn assignment_weight_counts_pairs_once() {
        let graph = coherent_graph();
        // Choose song (node of e11) and Jimmy (node of e20).
        let song = graph.nodes.iter().position(|n| n.entity == e(11)).unwrap();
        let jimmy = graph.nodes.iter().position(|n| n.entity == e(20)).unwrap();
        let w = assignment_weight(&graph, &[Some(song), Some(jimmy)]);
        let me: f64 =
            mention_edge_weight(&graph, song, 0) + mention_edge_weight(&graph, jimmy, 1);
        let ee = graph.nodes[song]
            .entity_edges
            .iter()
            .find(|&&(v, _)| v == jimmy)
            .map(|&(_, w)| w)
            .unwrap();
        assert!((w - (me + ee)).abs() < 1e-12);
    }
}
