//! Disambiguation output types.

use ned_core::DegradationLevel;
use ned_kb::EntityId;

/// The decision for one mention, with per-candidate scores for downstream
//  confidence assessment (Ch. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct MentionAssignment {
    /// Index into the input mention slice.
    pub mention_index: usize,
    /// The chosen entity; `None` when the mention had no candidates (the
    /// mention is then trivially out-of-KB, §2.2.1).
    pub entity: Option<EntityId>,
    /// Final score of the chosen entity (method-specific scale).
    pub score: f64,
    /// All candidates with their scores, sorted descending by score.
    pub candidate_scores: Vec<(EntityId, f64)>,
}

impl MentionAssignment {
    /// Creates an unmapped assignment (no candidates).
    pub fn unmapped(mention_index: usize) -> Self {
        MentionAssignment { mention_index, entity: None, score: 0.0, candidate_scores: Vec::new() }
    }

    /// Normalized score of the chosen entity: its share of the total
    /// candidate score mass (§5.4.1); 0 when unmapped.
    pub fn normalized_score(&self) -> f64 {
        let total: f64 = self.candidate_scores.iter().map(|&(_, s)| s).sum();
        if total <= 0.0 {
            return 0.0;
        }
        match self.entity {
            Some(e) => {
                self.candidate_scores
                    .iter()
                    .find(|&&(c, _)| c == e)
                    .map_or(0.0, |&(_, s)| s / total)
            }
            None => 0.0,
        }
    }
}

/// Full output of a disambiguation run: one assignment per input mention, in
/// input order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DisambiguationResult {
    /// Assignments, parallel to the input mentions.
    pub assignments: Vec<MentionAssignment>,
    /// How far down the feature ladder the method had to step for this
    /// document ([`DegradationLevel::None`] on the happy path).
    pub degradation: DegradationLevel,
}

impl DisambiguationResult {
    /// Wraps assignments produced at full fidelity.
    pub fn full_fidelity(assignments: Vec<MentionAssignment>) -> Self {
        DisambiguationResult { assignments, degradation: DegradationLevel::None }
    }

    /// The chosen labels, parallel to the input mentions (`None` =
    /// out-of-KB / unmapped).
    pub fn labels(&self) -> Vec<Option<EntityId>> {
        self.assignments.iter().map(|a| a.entity).collect()
    }

    /// Assignment of mention `i`, `None` past the end (total — callers
    /// decide how to treat an out-of-range mention index).
    pub fn assignment(&self, i: usize) -> Option<&MentionAssignment> {
        self.assignments.get(i)
    }

    /// Number of mentions mapped to an entity.
    pub fn mapped_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.entity.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_score_shares_mass() {
        let a = MentionAssignment {
            mention_index: 0,
            entity: Some(EntityId(1)),
            score: 3.0,
            candidate_scores: vec![(EntityId(1), 3.0), (EntityId(2), 1.0)],
        };
        assert!((a.normalized_score() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unmapped_has_zero_confidence() {
        let a = MentionAssignment::unmapped(3);
        assert_eq!(a.normalized_score(), 0.0);
        assert_eq!(a.entity, None);
    }

    #[test]
    fn labels_are_in_input_order() {
        let r = DisambiguationResult::full_fidelity(vec![
            MentionAssignment::unmapped(0),
            MentionAssignment {
                mention_index: 1,
                entity: Some(EntityId(7)),
                score: 1.0,
                candidate_scores: vec![(EntityId(7), 1.0)],
            },
        ]);
        assert_eq!(r.labels(), vec![None, Some(EntityId(7))]);
        assert_eq!(r.mapped_count(), 1);
        assert!(!r.degradation.is_degraded());
    }

    #[test]
    fn assignment_is_total() {
        let r = DisambiguationResult::full_fidelity(vec![MentionAssignment::unmapped(0)]);
        assert_eq!(r.assignment(0).map(|a| a.mention_index), Some(0));
        assert!(r.assignment(1).is_none());
    }
}
