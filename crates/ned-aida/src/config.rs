//! AIDA hyper-parameters.
//!
//! Defaults are the values tuned on the withheld CoNLL development split
//! (§3.6.1): α = 0.34, β = 0.26, γ = 0.40, prior threshold ρ = 0.9,
//! coherence threshold λ = 0.9, and an initial graph of 5 × #mentions
//! entities.

/// Which weight to use for keyphrase words in the similarity measure
/// (Eq. 3.4: "weight(w) is either the NPMI weight or the collection-wide IDF
/// weight").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeywordWeighting {
    /// Entity-specific NPMI (Eq. 3.1); the AIDA default.
    Npmi,
    /// Global IDF (Eq. 3.5).
    Idf,
}

/// Configuration of the [`crate::Disambiguator`].
#[derive(Debug, Clone)]
pub struct AidaConfig {
    /// Weight of the popularity prior (α).
    pub alpha: f64,
    /// Weight of the context similarity (β).
    pub beta: f64,
    /// Weight of the coherence (γ).
    pub gamma: f64,
    /// Prior robustness threshold ρ (§3.5.1): the prior participates in the
    /// mention–entity weight only when the best candidate's prior ≥ ρ.
    pub prior_threshold: f64,
    /// Coherence robustness threshold λ (§3.5.2): mentions whose prior and
    /// similarity distributions have L1 distance < λ are fixed to their best
    /// local candidate before the graph algorithm runs.
    pub coherence_threshold: f64,
    /// Enable the prior robustness test; when disabled the prior is always
    /// linearly combined with the similarity.
    pub use_prior_robustness: bool,
    /// Enable the prior feature at all.
    pub use_prior: bool,
    /// Enable the coherence robustness test.
    pub use_coherence_robustness: bool,
    /// Enable the coherence graph algorithm at all; when disabled the best
    /// local candidate is chosen per mention.
    pub use_coherence: bool,
    /// Keep `graph_size_factor × #mentions` entities after the distance
    /// pre-pruning of §3.4.2.
    pub graph_size_factor: usize,
    /// Keyword weighting in the similarity measure.
    pub keyword_weighting: KeywordWeighting,
    /// Expand short single-token mentions to an unambiguous longer
    /// co-occurring mention before candidate lookup ("Jimmy Page … Page").
    pub use_mention_expansion: bool,
    /// Post-processing enumerates all mention–entity combinations when their
    /// product is at most this bound; otherwise local search runs.
    pub exhaustive_limit: u64,
    /// Iterations of the local-search post-processing fallback.
    pub local_search_iterations: usize,
    /// Seed for the local-search candidate sampling (deterministic runs).
    pub seed: u64,
    /// Deterministic iteration budget for the graph solver (greedy loop
    /// steps + post-processing objective evaluations). Exhaustion makes the
    /// disambiguator step down the degradation ladder instead of stalling on
    /// an adversarial document. `u64::MAX` disables the guard.
    pub solver_max_iterations: u64,
    /// Optional wall-clock budget for the graph solver, in milliseconds.
    /// `None` (the default) keeps runs fully deterministic; set it only for
    /// latency-bound serving, where exceeding it degrades the document.
    pub solver_wall_budget_ms: Option<u64>,
}

impl Default for AidaConfig {
    fn default() -> Self {
        AidaConfig {
            alpha: 0.34,
            beta: 0.26,
            gamma: 0.40,
            prior_threshold: 0.9,
            coherence_threshold: 0.9,
            use_prior_robustness: true,
            use_prior: true,
            use_coherence_robustness: true,
            use_coherence: true,
            graph_size_factor: 5,
            keyword_weighting: KeywordWeighting::Npmi,
            use_mention_expansion: true,
            exhaustive_limit: 20_000,
            local_search_iterations: 400,
            seed: 0xa1da,
            // Generous: orders of magnitude above what any CoNLL-sized
            // document needs, but finite, so a pathological graph cannot
            // stall a worker forever.
            solver_max_iterations: 50_000_000,
            solver_wall_budget_ms: None,
        }
    }
}

impl AidaConfig {
    /// The `sim-k` configuration: similarity only, no prior, no coherence.
    pub fn sim_only() -> Self {
        AidaConfig {
            use_prior: false,
            use_prior_robustness: false,
            use_coherence: false,
            use_coherence_robustness: false,
            ..Self::default()
        }
    }

    /// The `prior sim-k` configuration: unconditional linear combination of
    /// prior and similarity, no robustness test, no coherence.
    pub fn prior_sim() -> Self {
        AidaConfig {
            use_prior: true,
            use_prior_robustness: false,
            use_coherence: false,
            use_coherence_robustness: false,
            ..Self::default()
        }
    }

    /// The `r-prior sim-k` configuration: prior-tested similarity, no
    /// coherence.
    pub fn r_prior_sim() -> Self {
        AidaConfig {
            use_prior: true,
            use_prior_robustness: true,
            use_coherence: false,
            use_coherence_robustness: false,
            ..Self::default()
        }
    }

    /// The `r-prior sim-k coh` configuration: graph coherence without the
    /// coherence robustness test.
    pub fn r_prior_sim_coh() -> Self {
        AidaConfig { use_coherence_robustness: false, ..Self::default() }
    }

    /// The full AIDA configuration `r-prior sim-k r-coh` (the default).
    pub fn full() -> Self {
        Self::default()
    }

    /// Relative similarity weight when combined with the prior:
    /// β / (α + β).
    pub fn sim_share(&self) -> f64 {
        if self.alpha + self.beta <= 0.0 {
            return 1.0;
        }
        self.beta / (self.alpha + self.beta)
    }

    /// Relative prior weight when combined with the similarity:
    /// α / (α + β).
    pub fn prior_share(&self) -> f64 {
        1.0 - self.sim_share()
    }

    /// Checks parameter invariants; call after manual construction.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.alpha + self.beta + self.gamma;
        if !(0.999..=1.001).contains(&sum) {
            return Err(format!("alpha + beta + gamma must be 1, got {sum}"));
        }
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("gamma", self.gamma),
            ("prior_threshold", self.prior_threshold),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if !(0.0..=2.0).contains(&self.coherence_threshold) {
            return Err("coherence_threshold must be in [0,2] (an L1 distance)".into());
        }
        if self.graph_size_factor == 0 {
            return Err("graph_size_factor must be positive".into());
        }
        if self.solver_max_iterations == 0 {
            return Err("solver_max_iterations must be positive (u64::MAX disables)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_values() {
        let c = AidaConfig::default();
        assert!((c.alpha - 0.34).abs() < 1e-12);
        assert!((c.beta - 0.26).abs() < 1e-12);
        assert!((c.gamma - 0.40).abs() < 1e-12);
        assert_eq!(c.graph_size_factor, 5);
        c.validate().unwrap();
    }

    #[test]
    fn shares_match_paper() {
        let c = AidaConfig::default();
        // §3.6.1: w = 0.566 · prior + 0.433 · sim.
        assert!((c.prior_share() - 0.566).abs() < 0.01);
        assert!((c.sim_share() - 0.433).abs() < 0.01);
    }

    #[test]
    fn named_configurations() {
        assert!(!AidaConfig::sim_only().use_prior);
        assert!(!AidaConfig::sim_only().use_coherence);
        assert!(AidaConfig::prior_sim().use_prior);
        assert!(!AidaConfig::prior_sim().use_prior_robustness);
        assert!(AidaConfig::r_prior_sim_coh().use_coherence);
        assert!(!AidaConfig::r_prior_sim_coh().use_coherence_robustness);
        assert!(AidaConfig::full().use_coherence_robustness);
        for c in [
            AidaConfig::sim_only(),
            AidaConfig::prior_sim(),
            AidaConfig::r_prior_sim(),
            AidaConfig::r_prior_sim_coh(),
            AidaConfig::full(),
        ] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_weights() {
        let c = AidaConfig { alpha: 0.9, ..AidaConfig::default() };
        assert!(c.validate().is_err());
        let c = AidaConfig { graph_size_factor: 0, ..AidaConfig::default() };
        assert!(c.validate().is_err());
    }
}
