#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! AIDA: accurate joint disambiguation of named entities (Chapter 3).
//!
//! The disambiguation framework combines three feature classes (§3.3):
//!
//! 1. the context-independent **popularity prior** of an entity given a
//!    mention (§3.3.3),
//! 2. the **keyphrase-based similarity** between the mention context and the
//!    entity's keyphrases, with partial "cover" matches (§3.3.4,
//!    Eqs. 3.4–3.6),
//! 3. the **entity–entity coherence** via any [`ned_relatedness::Relatedness`]
//!    measure (§3.3.5).
//!
//! The features build a weighted mention–entity graph (§3.4.1) solved by a
//! greedy dense-subgraph algorithm (§3.4.2, Algorithm 1), guarded by the
//! robustness tests of §3.5. Baselines from the literature (prior-only,
//! Cucerzan, Kulkarni et al., a local linker) live in [`baselines`].

pub mod algorithm;
pub mod baselines;
pub mod candidates;
pub mod classification;
pub mod config;
pub mod context;
pub mod cover;
pub mod deadline;
pub mod disambiguator;
pub mod expansion;
pub mod graph;
pub mod joint;
pub mod method;
pub mod obs;
pub mod result;
pub mod robustness;
pub mod scratch;
pub mod similarity;

pub use config::{AidaConfig, KeywordWeighting};
pub use deadline::{remaining_ns, DeadlinePlan, DeadlinePolicy};
pub use ned_core::{DegradationLevel, NedError};
pub use disambiguator::Disambiguator;
pub use joint::{Annotation, JointAnnotator, JointConfig};
pub use method::NedMethod;
pub use obs::{PipelineObs, SimObs, SolverObs};
pub use result::{DisambiguationResult, MentionAssignment};
