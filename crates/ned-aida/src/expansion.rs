//! Document-internal mention expansion.
//!
//! News text introduces an entity by its full name and then refers back by
//! a short form ("Jimmy Page ... Page ..."). The AIDA system expands such
//! short mentions to the longest co-occurring mention that contains them,
//! restricting the candidate space to the full name's candidates — a
//! document-local form of coreference (§2.4.3) that removes most of the
//! short form's ambiguity for free.

use ned_text::Mention;

/// For every mention, the index of the mention whose surface should be used
/// for candidate lookup: itself, or a longer mention it expands to.
pub fn expansion_targets(mentions: &[Mention]) -> Vec<usize> {
    mentions
        .iter()
        .enumerate()
        .map(|(i, m)| {
            // Only single-token mentions are expanded, and only when the
            // expansion is unambiguous: exactly one distinct longer surface
            // contains the short form as a full token.
            if m.surface.split_whitespace().nth(1).is_some() {
                return i;
            }
            let mut target: Option<(usize, &str)> = None;
            for (j, other) in mentions.iter().enumerate() {
                if j == i || other.surface.len() <= m.surface.len() {
                    continue;
                }
                if !contains_token(&other.surface, &m.surface) {
                    continue;
                }
                match target {
                    None => target = Some((j, &other.surface)),
                    Some((_, surface)) if surface == other.surface => {}
                    Some(_) => return i, // ambiguous expansion: keep as is
                }
            }
            target.map_or(i, |(j, _)| j)
        })
        .collect()
}

/// True when `short` occurs as a whole token of `long` (case-sensitive:
/// names are proper nouns).
fn contains_token(long: &str, short: &str) -> bool {
    long.split_whitespace().any(|t| t == short)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(surface: &str, pos: usize) -> Mention {
        let n = surface.split_whitespace().count();
        Mention::new(surface, pos, pos + n)
    }

    #[test]
    fn short_form_expands_to_full_name() {
        let mentions = vec![m("Jimmy Page", 0), m("Page", 10)];
        assert_eq!(expansion_targets(&mentions), vec![0, 0]);
    }

    #[test]
    fn expansion_works_in_either_direction_of_occurrence() {
        let mentions = vec![m("Page", 0), m("Jimmy Page", 10)];
        assert_eq!(expansion_targets(&mentions), vec![1, 1]);
    }

    #[test]
    fn ambiguous_expansion_is_skipped() {
        // Both Jimmy Page and Larry Page occur: "Page" stays unexpanded.
        let mentions = vec![m("Jimmy Page", 0), m("Larry Page", 5), m("Page", 10)];
        assert_eq!(expansion_targets(&mentions), vec![0, 1, 2]);
    }

    #[test]
    fn repeated_identical_long_form_is_not_ambiguous() {
        let mentions = vec![m("Jimmy Page", 0), m("Jimmy Page", 5), m("Page", 10)];
        let targets = expansion_targets(&mentions);
        assert_eq!(targets[2], 0);
    }

    #[test]
    fn multi_token_mentions_never_expand() {
        let mentions = vec![m("Jimmy Page Band", 0), m("Jimmy Page", 5)];
        assert_eq!(expansion_targets(&mentions), vec![0, 1]);
    }

    #[test]
    fn substring_without_token_boundary_does_not_expand() {
        // "Page" is not a token of "Pageant Show".
        let mentions = vec![m("Pageant Show", 0), m("Page", 5)];
        assert_eq!(expansion_targets(&mentions), vec![0, 1]);
    }

    #[test]
    fn case_sensitive_matching() {
        let mentions = vec![m("Jimmy page", 0), m("Page", 5)];
        assert_eq!(expansion_targets(&mentions), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(expansion_targets(&[]).is_empty());
    }
}
