//! Keyphrase-based mention–entity similarity (§3.3.4, Eqs. 3.4–3.6).
//!
//! For a mention `m` and candidate entity `e`:
//!
//! `simscore(m, e) = Σ_{q ∈ KP(e)} score(q)` where
//! `score(q) = z · (Σ_{w ∈ cover} weight(w) / Σ_{w ∈ q} weight(w))²`
//! and `z = #matching words / cover length`.
//!
//! `weight(w)` is either the entity-specific NPMI or the global IDF,
//! selected by [`KeywordWeighting`].

use ned_kb::{EntityId, KbView, WordId};

use crate::config::KeywordWeighting;
use crate::cover::shortest_cover;
use crate::obs::SimObs;

/// Computes `score(q)` (Eq. 3.4) for one keyphrase of `e` against a mention
/// context given as position-sorted `(pos, word)` pairs.
pub fn phrase_score<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    phrase_words: &[WordId],
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> f64 {
    let weight = |w: WordId| -> f64 {
        match weighting {
            KeywordWeighting::Npmi => kb.weights().keyword_npmi(e, w),
            KeywordWeighting::Idf => kb.weights().word_idf(w),
        }
    };
    let phrase_mass: f64 = {
        let mut ws: Vec<WordId> = phrase_words.to_vec();
        ws.sort_unstable();
        ws.dedup();
        ws.iter().map(|&w| weight(w)).sum()
    };
    if phrase_mass <= 0.0 {
        return 0.0;
    }
    let Some(cover) = shortest_cover(context, phrase_words) else {
        return 0.0;
    };
    let cover_mass: f64 = cover.words.iter().map(|&w| weight(w)).sum();
    if cover_mass <= 0.0 {
        return 0.0;
    }
    let ratio = (cover_mass / phrase_mass).min(1.0);
    cover.z() * ratio * ratio
}

/// `simscore(m, e)` (Eq. 3.6): the sum of phrase scores over all keyphrases
/// of `e`.
///
/// Uses the knowledge base's keyphrase inverted index to visit only the
/// phrases sharing at least one word with the context. The pruning is exact:
/// a phrase with no context word has no shortest cover and scores exactly
/// 0.0, so the result is bit-identical to [`simscore_exhaustive`] (both sum
/// the surviving phrases in ascending phrase-id order, and adding a +0.0
/// term never changes an IEEE sum of non-negative terms).
pub fn simscore<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> f64 {
    simscore_indexed(kb, e, context, &context_word_set(context), weighting)
}

/// The distinct words of a context window, sorted — the query set for the
/// keyphrase inverted index. Callers scoring many candidates against the
/// same context should compute this once and use [`simscore_indexed`].
pub fn context_word_set(context: &[(usize, WordId)]) -> Vec<WordId> {
    let mut ws: Vec<WordId> = context.iter().map(|&(_, w)| w).collect();
    ws.sort_unstable();
    ws.dedup();
    ws
}

/// [`simscore`] with the context's word set precomputed; bit-identical to
/// `simscore`. `context_words` must be sorted and deduplicated (as produced
/// by [`context_word_set`]).
pub fn simscore_indexed<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    context_words: &[WordId],
    weighting: KeywordWeighting,
) -> f64 {
    simscore_observed(kb, e, context, context_words, weighting, &SimObs::default())
}

/// [`simscore_indexed`] with work counters: which query plan was chosen,
/// how many index postings were scanned, and how many phrases survived
/// pruning. The counters never influence the score — passing
/// [`SimObs::default`] (disabled handles) is bit-identical to
/// [`simscore_indexed`].
pub fn simscore_observed<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    context_words: &[WordId],
    weighting: KeywordWeighting,
    obs: &SimObs,
) -> f64 {
    obs.evaluations.inc();
    // Adaptive query plan: enumerate the phrases sharing ≥ 1 word with the
    // context from whichever side is smaller — probe the inverted index per
    // context word, or scan KP(e) testing each phrase word against the
    // sorted context word set. Both yield the same phrases in ascending
    // phrase-id order, so the score is bitwise independent of the plan.
    let kp = kb.keyphrases(e);
    let matching: Vec<ned_kb::PhraseId> = if kp.len() <= context_words.len() {
        obs.plan_entity_side.inc();
        kp.iter()
            .filter(|ep| {
                kb.phrase_words(ep.phrase)
                    .iter()
                    .any(|w| context_words.binary_search(w).is_ok())
            })
            .map(|ep| ep.phrase)
            .collect()
    } else {
        obs.plan_word_side.inc();
        let (matching, scanned) =
            kb.keyphrase_index().matching_phrases_counted(e, context_words);
        obs.postings_scanned.add(scanned);
        matching
    };
    obs.phrases_matched.add(matching.len() as u64);
    // fold(0.0) rather than sum(): Iterator::sum's identity is -0.0, which
    // would make an empty phrase set differ in sign bit from an exhaustive
    // sum of zeros.
    matching
        .iter()
        .map(|&p| phrase_score(kb, e, kb.phrase_words(p), context, weighting))
        .fold(0.0, |acc, s| acc + s)
}

/// Reference implementation of `simscore(m, e)` scanning all of KP(e)
/// without the inverted index. Kept for tests asserting the index prunes
/// exactly.
pub fn simscore_exhaustive<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> f64 {
    kb.keyphrases(e)
        .iter()
        .map(|ep| phrase_score(kb, e, kb.phrase_words(ep.phrase), context, weighting))
        .fold(0.0, |acc, s| acc + s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DocumentContext;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::tokenize;

    /// Jimmy Page vs Larry Page with distinctive keyphrases.
    fn kb() -> (KnowledgeBase, EntityId, EntityId) {
        let mut b = KbBuilder::new();
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        b.add_keyphrase(jimmy, "Gibson guitar", 2);
        b.add_keyphrase(jimmy, "hard rock chords", 3);
        b.add_keyphrase(jimmy, "Grammy Award winner", 1);
        b.add_keyphrase(larry, "search engine", 3);
        b.add_keyphrase(larry, "Stanford university", 2);
        (b.build(), jimmy, larry)
    }

    fn context_of(kb: &KnowledgeBase, text: &str) -> Vec<(usize, WordId)> {
        DocumentContext::build(kb, &tokenize(text)).words
    }

    #[test]
    fn matching_context_scores_higher() {
        let (kb, jimmy, larry) = kb();
        let ctx = context_of(&kb, "played unusual chords on his Gibson guitar");
        let sj = simscore(&kb, jimmy, &ctx, KeywordWeighting::Npmi);
        let sl = simscore(&kb, larry, &ctx, KeywordWeighting::Npmi);
        assert!(sj > 0.0);
        assert_eq!(sl, 0.0);
    }

    #[test]
    fn full_adjacent_match_beats_scattered_match() {
        let (kb, jimmy, _) = kb();
        let phrase: Vec<WordId> =
            ["gibson", "guitar"].iter().map(|w| kb.word_id(w).unwrap()).collect();
        let adjacent = context_of(&kb, "a Gibson guitar sound");
        let scattered = context_of(&kb, "a Gibson sound with heavy amplifier feedback guitar");
        let s_adj = phrase_score(&kb, jimmy, &phrase, &adjacent, KeywordWeighting::Npmi);
        let s_scat = phrase_score(&kb, jimmy, &phrase, &scattered, KeywordWeighting::Npmi);
        assert!(s_adj > s_scat, "{s_adj} vs {s_scat}");
        assert!(s_scat > 0.0);
    }

    #[test]
    fn partial_match_is_superlinearly_reduced() {
        let (kb, jimmy, _) = kb();
        let phrase: Vec<WordId> = ["grammy", "award", "winner"]
            .iter()
            .map(|w| kb.word_id(w).unwrap())
            .collect();
        let full = context_of(&kb, "Grammy Award winner");
        let partial = context_of(&kb, "Grammy winner");
        let s_full = phrase_score(&kb, jimmy, &phrase, &full, KeywordWeighting::Npmi);
        let s_partial = phrase_score(&kb, jimmy, &phrase, &partial, KeywordWeighting::Npmi);
        assert!(s_full > s_partial);
        assert!(s_partial > 0.0);
        // Squared ratio: partial (2/3 of weight mass, z = 1) is below
        // (2/3)² + ε of the full score even before the z factor.
        assert!(s_partial < s_full * 0.6);
    }

    #[test]
    fn indexed_simscore_matches_exhaustive_bitwise() {
        let (kb, jimmy, larry) = kb();
        for text in [
            "played unusual chords on his Gibson guitar",
            "search engine built at Stanford university",
            "hard rock guitar award",
            "nothing in common with anyone",
            "",
        ] {
            let ctx = context_of(&kb, text);
            for e in [jimmy, larry] {
                for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
                    let fast = simscore(&kb, e, &ctx, weighting);
                    let slow = simscore_exhaustive(&kb, e, &ctx, weighting);
                    assert_eq!(fast.to_bits(), slow.to_bits(), "{text:?}");
                }
            }
        }
    }

    #[test]
    fn empty_context_scores_zero() {
        let (kb, jimmy, _) = kb();
        assert_eq!(simscore(&kb, jimmy, &[], KeywordWeighting::Npmi), 0.0);
    }

    #[test]
    fn idf_weighting_also_works() {
        let (kb, jimmy, _) = kb();
        let ctx = context_of(&kb, "hard rock chords everywhere");
        assert!(simscore(&kb, jimmy, &ctx, KeywordWeighting::Idf) > 0.0);
    }

    #[test]
    fn score_is_nonnegative_and_bounded_per_phrase() {
        let (kb, jimmy, _) = kb();
        let ctx = context_of(&kb, "Gibson guitar Gibson guitar chords rock hard");
        for ep in kb.keyphrases(jimmy) {
            let s = phrase_score(
                &kb,
                jimmy,
                kb.phrase_words(ep.phrase),
                &ctx,
                KeywordWeighting::Npmi,
            );
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }
}
