//! Keyphrase-based mention–entity similarity (§3.3.4, Eqs. 3.4–3.6).
//!
//! For a mention `m` and candidate entity `e`:
//!
//! `simscore(m, e) = Σ_{q ∈ KP(e)} score(q)` where
//! `score(q) = z · (Σ_{w ∈ cover} weight(w) / Σ_{w ∈ q} weight(w))²`
//! and `z = #matching words / cover length`.
//!
//! `weight(w)` is either the entity-specific NPMI or the global IDF,
//! selected by [`KeywordWeighting`].

use ned_kb::{EntityId, KbView, PhraseId, WordId};

use crate::config::KeywordWeighting;
use crate::cover::{shortest_cover, shortest_cover_into, CoverScratch};
use crate::obs::SimObs;
use crate::scratch::{with_scratch, ScoringScratch};

/// Computes `score(q)` (Eq. 3.4) for one keyphrase of `e` against a mention
/// context given as position-sorted `(pos, word)` pairs.
///
/// This is the reference implementation: it re-derives the deduplicated
/// phrase word set and its weight mass on every call. The hot path uses
/// [`phrase_score_run`], which reads both from the KB's precomputed
/// [`PhraseRuns`](ned_kb::PhraseRuns) and is verified bit-identical.
pub fn phrase_score<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    phrase_words: &[WordId],
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> f64 {
    let weight = |w: WordId| -> f64 {
        match weighting {
            KeywordWeighting::Npmi => kb.weights().keyword_npmi(e, w),
            KeywordWeighting::Idf => kb.weights().word_idf(w),
        }
    };
    let phrase_mass: f64 = {
        let mut ws: Vec<WordId> = phrase_words.to_vec();
        ws.sort_unstable();
        ws.dedup();
        ws.iter().map(|&w| weight(w)).sum()
    };
    if phrase_mass <= 0.0 {
        return 0.0;
    }
    let Some(cover) = shortest_cover(context, phrase_words) else {
        return 0.0;
    };
    let cover_mass: f64 = cover.words.iter().map(|&w| weight(w)).sum();
    if cover_mass <= 0.0 {
        return 0.0;
    }
    let ratio = (cover_mass / phrase_mass).min(1.0);
    cover.z() * ratio * ratio
}

/// [`phrase_score`] for an interned keyphrase, reading the precomputed
/// deduplicated word run and weight masses from the KB's
/// [`PhraseRuns`](ned_kb::PhraseRuns) and reusing the caller's cover
/// buffers. Bit-identical to the reference:
///
/// - the precomputed masses were summed with the exact reference expression
///   over the exact reference word order (sorted, deduplicated);
/// - the scratch cover scan finds the same window and word set (membership
///   over the sorted run is set-equivalent to `contains` on the raw words);
/// - the cover mass is accumulated in the same ascending-word-id order. The
///   accumulator starts at `+0.0` where `Iterator::sum` starts at `-0.0`,
///   which can only differ when every term is a signed zero — and then both
///   paths take the `cover_mass <= 0.0` early return.
// ned-lint: hot
pub fn phrase_score_run<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    p: PhraseId,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
    cover: &mut CoverScratch,
) -> f64 {
    let runs = kb.phrase_runs();
    let run = runs.run(p);
    let phrase_mass = match weighting {
        KeywordWeighting::Npmi => runs.npmi_mass(e, p).unwrap_or_else(|| {
            // Not an own phrase of `e` (no precomputed row entry): fall back
            // to the reference expression over the run.
            run.iter().map(|&w| kb.weights().keyword_npmi(e, w)).sum()
        }),
        KeywordWeighting::Idf => runs.idf_mass(p),
    };
    if phrase_mass <= 0.0 {
        return 0.0;
    }
    let Some(shape) = shortest_cover_into(context, run, cover) else {
        return 0.0;
    };
    // Iterator-free indexed fold over the cover words so the compiler can
    // keep the weight lookups in a tight loop.
    let cw = cover.cover_words();
    let mut cover_mass = 0.0f64;
    let mut i = 0usize;
    while i < cw.len() {
        let w = cw[i]; // ned-lint: allow(p1) — i < len by loop bound
        cover_mass += match weighting {
            KeywordWeighting::Npmi => kb.weights().keyword_npmi(e, w),
            KeywordWeighting::Idf => kb.weights().word_idf(w),
        };
        i += 1;
    }
    if cover_mass <= 0.0 {
        return 0.0;
    }
    let ratio = (cover_mass / phrase_mass).min(1.0);
    shape.z() * ratio * ratio
}

/// `simscore(m, e)` (Eq. 3.6): the sum of phrase scores over all keyphrases
/// of `e`.
///
/// Uses the knowledge base's keyphrase inverted index to visit only the
/// phrases sharing at least one word with the context. The pruning is exact:
/// a phrase with no context word has no shortest cover and scores exactly
/// 0.0, so the result is bit-identical to [`simscore_exhaustive`] (both sum
/// the surviving phrases in ascending phrase-id order, and adding a +0.0
/// term never changes an IEEE sum of non-negative terms).
pub fn simscore<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> f64 {
    simscore_indexed(kb, e, context, &context_word_set(context), weighting)
}

/// The distinct words of a context window, sorted — the query set for the
/// keyphrase inverted index. Callers scoring many candidates against the
/// same context should compute this once and use [`simscore_indexed`].
pub fn context_word_set(context: &[(usize, WordId)]) -> Vec<WordId> {
    let mut ws: Vec<WordId> = context.iter().map(|&(_, w)| w).collect();
    ws.sort_unstable();
    ws.dedup();
    ws
}

/// [`simscore`] with the context's word set precomputed; bit-identical to
/// `simscore`. `context_words` must be sorted and deduplicated (as produced
/// by [`context_word_set`]).
pub fn simscore_indexed<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    context_words: &[WordId],
    weighting: KeywordWeighting,
) -> f64 {
    simscore_observed(kb, e, context, context_words, weighting, &SimObs::default())
}

/// [`simscore_indexed`] with work counters: which query plan was chosen,
/// how many index postings were scanned, and how many phrases survived
/// pruning. The counters never influence the score — passing
/// [`SimObs::default`] (disabled handles) is bit-identical to
/// [`simscore_indexed`].
pub fn simscore_observed<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    context_words: &[WordId],
    weighting: KeywordWeighting,
    obs: &SimObs,
) -> f64 {
    with_scratch(|scratch| {
        simscore_with_arena(kb, e, context, context_words, weighting, obs, scratch)
    })
}

/// [`simscore_observed`] against an explicit scoring arena — the inner form
/// used once a scratch is already held (the batched candidate pass, the
/// thread-local wrapper).
pub(crate) fn simscore_with_arena<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    context_words: &[WordId],
    weighting: KeywordWeighting,
    obs: &SimObs,
    scratch: &mut ScoringScratch,
) -> f64 {
    let ScoringScratch { cover, matching, .. } = scratch;
    obs.evaluations.inc();
    // Adaptive query plan: enumerate the phrases sharing ≥ 1 word with the
    // context from whichever side is smaller — probe the inverted index per
    // context word, or scan KP(e) testing each phrase word against the
    // sorted context word set. Both yield the same phrases in ascending
    // phrase-id order, so the score is bitwise independent of the plan.
    let kp = kb.keyphrases(e);
    if kp.len() <= context_words.len() {
        obs.plan_entity_side.inc();
        matching.clear();
        // The precomputed run is the deduplicated word set of the phrase;
        // `any` over it decides exactly like `any` over the raw word list.
        matching.extend(
            kp.iter()
                .filter(|ep| {
                    kb.phrase_runs()
                        .run(ep.phrase)
                        .iter()
                        .any(|w| context_words.binary_search(w).is_ok())
                })
                .map(|ep| ep.phrase),
        );
    } else {
        obs.plan_word_side.inc();
        let scanned = kb.keyphrase_index().matching_phrases_into(e, context_words, matching);
        obs.postings_scanned.add(scanned);
    }
    obs.phrases_matched.add(matching.len() as u64);
    // fold(0.0) rather than sum(): Iterator::sum's identity is -0.0, which
    // would make an empty phrase set differ in sign bit from an exhaustive
    // sum of zeros.
    matching
        .iter()
        .fold(0.0, |acc, &p| acc + phrase_score_run(kb, e, p, context, weighting, cover))
}

/// Batched `simscore` over every candidate of one mention: scores all
/// `entities` against the same context in one pass and returns the scores in
/// input order. Bit-identical to calling [`simscore_indexed`] per entity —
/// the batching only changes *when* each candidate's postings are gathered,
/// never which postings, their per-candidate order, or the summation order.
// ned-lint: hot
pub fn simscores_batch<K: KbView + ?Sized>(
    kb: &K,
    entities: &[EntityId],
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
    obs: &SimObs,
) -> Vec<f64> {
    let mut out = Vec::new(); // ned-lint: allow(h1) — compat wrapper returns an owned Vec by contract; the zero-alloc path is simscores_batch_into
    simscores_batch_into(kb, entities, context, weighting, obs, &mut out);
    out
}

/// [`simscores_batch`] writing into a caller-owned buffer (cleared first).
/// With a warmed per-thread arena and a reused `out` buffer, a steady-state
/// call performs zero heap allocations — this is the entry point the bench
/// harness uses to certify the allocation-free hot path.
// ned-lint: hot
pub fn simscores_batch_into<K: KbView + ?Sized>(
    kb: &K,
    entities: &[EntityId],
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
    obs: &SimObs,
    out: &mut Vec<f64>,
) {
    with_scratch(|scratch| {
        scratch.context_words.clear();
        scratch.context_words.extend(context.iter().map(|&(_, w)| w));
        scratch.context_words.sort_unstable();
        scratch.context_words.dedup();
        simscores_batch_arena(
            kb,
            entities.len(),
            |i| entities[i], // ned-lint: allow(p1) — i < entities.len() by construction
            context,
            weighting,
            obs,
            scratch,
        );
        out.clear();
        out.extend_from_slice(&scratch.sims);
    });
}

/// The batched scoring pass. Requires `scratch.context_words` to already
/// hold the sorted-deduplicated context word set; leaves the scores in
/// `scratch.sims`, in candidate order.
///
/// Counter identity with the per-candidate path: every candidate records one
/// evaluation and one plan decision in candidate order; word-side postings
/// and matched-phrase counts are recorded per candidate during the merge
/// phases. All counters are atomic adds, so the totals are independent of
/// the recording order.
// ned-lint: hot
pub(crate) fn simscores_batch_arena<K: KbView + ?Sized>(
    kb: &K,
    n: usize,
    entity_at: impl Fn(usize) -> EntityId,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
    obs: &SimObs,
    scratch: &mut ScoringScratch,
) {
    let ScoringScratch { cover, context_words, matching, word_side, phrase_bufs, sims } = scratch;
    let context_words: &[WordId] = context_words;
    sims.clear();
    word_side.clear();
    let idx = kb.keyphrase_index();
    let runs = kb.phrase_runs();

    // Phase A — plan each candidate in candidate order. Entity-side plans
    // (KP(e) no larger than the context word set) are scored immediately;
    // word-side plans are registered for the shared merge pass.
    for i in 0..n {
        let e = entity_at(i);
        obs.evaluations.inc();
        let kp = kb.keyphrases(e);
        if kp.len() <= context_words.len() {
            obs.plan_entity_side.inc();
            matching.clear();
            matching.extend(
                kp.iter()
                    .filter(|ep| {
                        runs.run(ep.phrase)
                            .iter()
                            .any(|w| context_words.binary_search(w).is_ok())
                    })
                    .map(|ep| ep.phrase),
            );
            obs.phrases_matched.add(matching.len() as u64);
            let s = matching
                .iter()
                .fold(0.0, |acc, &p| acc + phrase_score_run(kb, e, p, context, weighting, cover));
            sims.push(s);
        } else {
            obs.plan_word_side.inc();
            word_side.push((e, i));
            sims.push(0.0);
        }
    }
    if word_side.is_empty() {
        return;
    }

    // Phase B — entity-major order for the merge. Duplicate candidate
    // entities (not produced by the dictionary, but allowed by the API)
    // fall back to the per-candidate probe so each occurrence does — and
    // records — its own work, exactly like the unbatched path.
    word_side.sort_unstable();
    let has_duplicate = word_side.windows(2).any(|p| p[0].0 == p[1].0); // ned-lint: allow(p1) — windows(2) pairs
    if has_duplicate {
        for &(e, i) in word_side.iter() {
            let scanned = idx.matching_phrases_into(e, context_words, matching);
            obs.postings_scanned.add(scanned);
            obs.phrases_matched.add(matching.len() as u64);
            sims[i] = matching // ned-lint: allow(p1) — i < n, sims has n entries
                .iter()
                .fold(0.0, |acc, &p| acc + phrase_score_run(kb, e, p, context, weighting, cover));
        }
        return;
    }

    // Phase C — one pass over each context word's postings, accumulating
    // phrase ids entity-major into dense per-candidate slots. The postings
    // list and the candidate list are both entity-sorted, so a monotone
    // cursor localizes each binary search to the unconsumed suffix; the
    // slices found are exactly `entity_postings(e, w)`. For a fixed
    // candidate, pushes happen in context-word order — the per-candidate
    // probe order — so phase D's sort+dedup reproduces
    // `matching_phrases_counted` exactly.
    while phrase_bufs.len() < word_side.len() {
        phrase_bufs.push(Vec::new()); // ned-lint: allow(h1) — arena warmup growth; steady state reuses these buffers and the alloc ratchet counts the warmup
    }
    for buf in phrase_bufs.iter_mut().take(word_side.len()) {
        buf.clear();
    }
    for &w in context_words.iter() {
        let postings = idx.postings(w);
        let mut pos = 0usize;
        for (slot, &(e, _)) in word_side.iter().enumerate() {
            let lo = pos + postings[pos..].partition_point(|&(pe, _)| pe < e); // ned-lint: allow(p1) — pos ≤ len cursor
            let hi = lo + postings[lo..].partition_point(|&(pe, _)| pe == e); // ned-lint: allow(p1) — lo ≤ len by partition
            phrase_bufs[slot].extend(postings[lo..hi].iter().map(|&(_, p)| p)); // ned-lint: allow(p1) — slot < word_side len
            pos = hi;
        }
    }

    // Phase D — per-candidate dedup and ascending-phrase-id fold: the
    // reference summation order, term for term.
    for (slot, &(e, i)) in word_side.iter().enumerate() {
        let buf = &mut phrase_bufs[slot]; // ned-lint: allow(p1) — slot < word_side len
        obs.postings_scanned.add(buf.len() as u64);
        buf.sort_unstable();
        buf.dedup();
        obs.phrases_matched.add(buf.len() as u64);
        sims[i] = buf // ned-lint: allow(p1) — i < n, sims has n entries
            .iter()
            .fold(0.0, |acc, &p| acc + phrase_score_run(kb, e, p, context, weighting, cover));
    }
}

/// Reference implementation of `simscore(m, e)` scanning all of KP(e)
/// without the inverted index. Kept for tests asserting the index prunes
/// exactly.
pub fn simscore_exhaustive<K: KbView + ?Sized>(
    kb: &K,
    e: EntityId,
    context: &[(usize, WordId)],
    weighting: KeywordWeighting,
) -> f64 {
    kb.keyphrases(e)
        .iter()
        .map(|ep| phrase_score(kb, e, kb.phrase_words(ep.phrase), context, weighting))
        .fold(0.0, |acc, s| acc + s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DocumentContext;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::tokenize;

    /// Jimmy Page vs Larry Page with distinctive keyphrases.
    fn kb() -> (KnowledgeBase, EntityId, EntityId) {
        let mut b = KbBuilder::new();
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        b.add_keyphrase(jimmy, "Gibson guitar", 2);
        b.add_keyphrase(jimmy, "hard rock chords", 3);
        b.add_keyphrase(jimmy, "Grammy Award winner", 1);
        b.add_keyphrase(larry, "search engine", 3);
        b.add_keyphrase(larry, "Stanford university", 2);
        (b.build(), jimmy, larry)
    }

    fn context_of(kb: &KnowledgeBase, text: &str) -> Vec<(usize, WordId)> {
        DocumentContext::build(kb, &tokenize(text)).words
    }

    #[test]
    fn matching_context_scores_higher() {
        let (kb, jimmy, larry) = kb();
        let ctx = context_of(&kb, "played unusual chords on his Gibson guitar");
        let sj = simscore(&kb, jimmy, &ctx, KeywordWeighting::Npmi);
        let sl = simscore(&kb, larry, &ctx, KeywordWeighting::Npmi);
        assert!(sj > 0.0);
        assert_eq!(sl, 0.0);
    }

    #[test]
    fn full_adjacent_match_beats_scattered_match() {
        let (kb, jimmy, _) = kb();
        let phrase: Vec<WordId> =
            ["gibson", "guitar"].iter().map(|w| kb.word_id(w).unwrap()).collect();
        let adjacent = context_of(&kb, "a Gibson guitar sound");
        let scattered = context_of(&kb, "a Gibson sound with heavy amplifier feedback guitar");
        let s_adj = phrase_score(&kb, jimmy, &phrase, &adjacent, KeywordWeighting::Npmi);
        let s_scat = phrase_score(&kb, jimmy, &phrase, &scattered, KeywordWeighting::Npmi);
        assert!(s_adj > s_scat, "{s_adj} vs {s_scat}");
        assert!(s_scat > 0.0);
    }

    #[test]
    fn partial_match_is_superlinearly_reduced() {
        let (kb, jimmy, _) = kb();
        let phrase: Vec<WordId> = ["grammy", "award", "winner"]
            .iter()
            .map(|w| kb.word_id(w).unwrap())
            .collect();
        let full = context_of(&kb, "Grammy Award winner");
        let partial = context_of(&kb, "Grammy winner");
        let s_full = phrase_score(&kb, jimmy, &phrase, &full, KeywordWeighting::Npmi);
        let s_partial = phrase_score(&kb, jimmy, &phrase, &partial, KeywordWeighting::Npmi);
        assert!(s_full > s_partial);
        assert!(s_partial > 0.0);
        // Squared ratio: partial (2/3 of weight mass, z = 1) is below
        // (2/3)² + ε of the full score even before the z factor.
        assert!(s_partial < s_full * 0.6);
    }

    #[test]
    fn indexed_simscore_matches_exhaustive_bitwise() {
        let (kb, jimmy, larry) = kb();
        for text in [
            "played unusual chords on his Gibson guitar",
            "search engine built at Stanford university",
            "hard rock guitar award",
            "nothing in common with anyone",
            "",
        ] {
            let ctx = context_of(&kb, text);
            for e in [jimmy, larry] {
                for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
                    let fast = simscore(&kb, e, &ctx, weighting);
                    let slow = simscore_exhaustive(&kb, e, &ctx, weighting);
                    assert_eq!(fast.to_bits(), slow.to_bits(), "{text:?}");
                }
            }
        }
    }

    #[test]
    fn empty_context_scores_zero() {
        let (kb, jimmy, _) = kb();
        assert_eq!(simscore(&kb, jimmy, &[], KeywordWeighting::Npmi), 0.0);
    }

    #[test]
    fn idf_weighting_also_works() {
        let (kb, jimmy, _) = kb();
        let ctx = context_of(&kb, "hard rock chords everywhere");
        assert!(simscore(&kb, jimmy, &ctx, KeywordWeighting::Idf) > 0.0);
    }

    #[test]
    fn score_is_nonnegative_and_bounded_per_phrase() {
        let (kb, jimmy, _) = kb();
        let ctx = context_of(&kb, "Gibson guitar Gibson guitar chords rock hard");
        for ep in kb.keyphrases(jimmy) {
            let s = phrase_score(
                &kb,
                jimmy,
                kb.phrase_words(ep.phrase),
                &ctx,
                KeywordWeighting::Npmi,
            );
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    /// The run-based fast path must reproduce the reference `phrase_score`
    /// bit for bit — for own phrases (precomputed NPMI mass), foreign
    /// phrases (fallback recomputation), and both weightings.
    #[test]
    fn run_phrase_score_matches_reference_bitwise() {
        let (kb, jimmy, larry) = kb();
        let mut cover = crate::cover::CoverScratch::new();
        for text in [
            "played unusual chords on his Gibson guitar",
            "Grammy winner at Stanford university",
            "hard rock guitar award",
            "",
        ] {
            let ctx = context_of(&kb, text);
            for e in [jimmy, larry] {
                for scored in [jimmy, larry] {
                    for ep in kb.keyphrases(scored) {
                        for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
                            let reference = phrase_score(
                                &kb,
                                e,
                                kb.phrase_words(ep.phrase),
                                &ctx,
                                weighting,
                            );
                            let fast =
                                phrase_score_run(&kb, e, ep.phrase, &ctx, weighting, &mut cover);
                            assert_eq!(
                                reference.to_bits(),
                                fast.to_bits(),
                                "{text:?} e={e:?} phrase={:?}",
                                ep.phrase
                            );
                        }
                    }
                }
            }
        }
    }

    /// The batched multi-candidate pass must equal per-candidate
    /// `simscore_indexed` bitwise, with the same counter totals.
    #[test]
    fn batched_simscores_match_per_candidate_bitwise() {
        let (kb, jimmy, larry) = kb();
        for text in [
            "played unusual chords on his Gibson guitar",
            "search engine built at Stanford university",
            "hard rock guitar award winner at a search engine",
            "nothing in common with anyone",
            "",
        ] {
            let ctx = context_of(&kb, text);
            let words = context_word_set(&ctx);
            for entities in [
                vec![jimmy, larry],
                vec![larry, jimmy],
                vec![jimmy],
                vec![jimmy, larry, jimmy], // duplicate → per-candidate fallback
            ] {
                for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
                    let batch_obs = SimObs::new(&ned_obs::Metrics::new());
                    let single_obs = SimObs::new(&ned_obs::Metrics::new());
                    let batched = simscores_batch(&kb, &entities, &ctx, weighting, &batch_obs);
                    let singles: Vec<f64> = entities
                        .iter()
                        .map(|&e| {
                            simscore_observed(&kb, e, &ctx, &words, weighting, &single_obs)
                        })
                        .collect();
                    assert_eq!(batched.len(), singles.len());
                    for (b, s) in batched.iter().zip(singles.iter()) {
                        assert_eq!(b.to_bits(), s.to_bits(), "{text:?} {entities:?}");
                    }
                    assert_eq!(
                        batch_obs.evaluations.value(),
                        single_obs.evaluations.value(),
                        "evaluation counts diverge"
                    );
                    assert_eq!(batch_obs.plan_entity_side.value(), single_obs.plan_entity_side.value());
                    assert_eq!(batch_obs.plan_word_side.value(), single_obs.plan_word_side.value());
                    assert_eq!(
                        batch_obs.postings_scanned.value(),
                        single_obs.postings_scanned.value(),
                        "scanned counts diverge on {text:?}"
                    );
                    assert_eq!(batch_obs.phrases_matched.value(), single_obs.phrases_matched.value());
                }
            }
        }
    }
}
