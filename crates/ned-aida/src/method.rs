//! The common interface of all NED methods (AIDA and the baselines).

use ned_text::{Mention, Token};

use crate::result::DisambiguationResult;

/// A named-entity disambiguation method: maps every input mention to an
/// entity (or leaves it unmapped when the dictionary offers no candidate).
pub trait NedMethod {
    /// Identifier used in experiment tables.
    fn name(&self) -> String;

    /// Disambiguates all `mentions` of a tokenized document jointly.
    ///
    /// Returns one assignment per mention, in input order.
    fn disambiguate(&self, tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult;
}

impl<T: NedMethod + ?Sized> NedMethod for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn disambiguate(&self, tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult {
        (**self).disambiguate(tokens, mentions)
    }
}

impl<T: NedMethod + ?Sized> NedMethod for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn disambiguate(&self, tokens: &[Token], mentions: &[Mention]) -> DisambiguationResult {
        (**self).disambiguate(tokens, mentions)
    }
}
