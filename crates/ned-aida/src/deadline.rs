//! Per-request deadline → solver budget plumbing.
//!
//! The serving layer gives each request a deadline; what the pipeline needs
//! is a *plan*: which rung of the feature ladder to run and what wall
//! budget to hand the graph solver. [`DeadlinePolicy`] makes that
//! translation a pure function of the remaining time, so the threaded
//! service, the virtual-time load simulator, and the `annotate` CLI all
//! degrade identically:
//!
//! - plenty of time → the full joint method under a wall budget
//!   ([`DeadlinePlan::Budgeted`]); if the solver still overruns, the
//!   disambiguator's own ladder (PR 2) catches the typed
//!   `DeadlineExceeded` and falls back to local features;
//! - nearly out of time → skip the coherence graph up front
//!   ([`DeadlinePlan::NoCoherence`]);
//! - out of time (expired while queued) → the popularity prior alone
//!   ([`DeadlinePlan::PriorOnly`]) — an answer, degraded, instead of a
//!   timeout.

use ned_core::DegradationLevel;

use crate::config::AidaConfig;

/// Thresholds steering the deadline → plan translation.
///
/// All decisions are pure integer comparisons on the remaining time, so a
/// plan is deterministic for a given (deadline, dequeue-time) pair — the
/// virtual-time load harness relies on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// Below this many remaining milliseconds, skip the coherence graph up
    /// front rather than letting the solver start work it cannot finish.
    pub no_coherence_below_ms: u64,
    /// Below this many remaining milliseconds, fall straight to the
    /// popularity prior (also the plan for already-expired requests).
    pub prior_only_below_ms: u64,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        // A quick-scale document solves in single-digit milliseconds; give
        // the joint method a rung down at 5 ms and keep a 1 ms floor where
        // only the prior is affordable.
        DeadlinePolicy { no_coherence_below_ms: 5, prior_only_below_ms: 1 }
    }
}

impl DeadlinePolicy {
    /// Validates threshold ordering.
    pub fn validate(&self) -> Result<(), String> {
        if self.prior_only_below_ms > self.no_coherence_below_ms {
            return Err(format!(
                "prior_only_below_ms ({}) must not exceed no_coherence_below_ms ({})",
                self.prior_only_below_ms, self.no_coherence_below_ms
            ));
        }
        Ok(())
    }

    /// Translates the remaining time into a plan. `None` means the request
    /// has no deadline (run the full method, no wall budget).
    pub fn plan(&self, remaining_ns: Option<u64>) -> DeadlinePlan {
        let Some(remaining_ns) = remaining_ns else {
            return DeadlinePlan::Full;
        };
        let remaining_ms = remaining_ns / 1_000_000;
        if remaining_ns == 0 || remaining_ms < self.prior_only_below_ms {
            DeadlinePlan::PriorOnly
        } else if remaining_ms < self.no_coherence_below_ms {
            DeadlinePlan::NoCoherence { wall_ms: remaining_ms }
        } else {
            DeadlinePlan::Budgeted { wall_ms: remaining_ms }
        }
    }
}

/// The feature-ladder rung and solver wall budget chosen for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlinePlan {
    /// No deadline: the configured method, no wall budget.
    Full,
    /// Full method under a solver wall budget of `wall_ms` milliseconds;
    /// overruns surface as `DeadlineExceeded` and degrade via the
    /// disambiguator's ladder.
    Budgeted {
        /// Remaining milliseconds, handed to the solver as its wall budget.
        wall_ms: u64,
    },
    /// Coherence skipped up front; local features still run under the
    /// remaining wall budget.
    NoCoherence {
        /// Remaining milliseconds (kept for accounting; the coherence-free
        /// path has no solver to budget).
        wall_ms: u64,
    },
    /// Deadline (almost) expired: popularity prior alone.
    PriorOnly,
}

impl DeadlinePlan {
    /// The degradation floor this plan imposes: the response's reported
    /// level is the maximum of this and whatever the disambiguator's own
    /// ladder reports.
    pub fn floor(&self) -> DegradationLevel {
        match self {
            DeadlinePlan::Full | DeadlinePlan::Budgeted { .. } => DegradationLevel::None,
            DeadlinePlan::NoCoherence { .. } => DegradationLevel::NoCoherence,
            DeadlinePlan::PriorOnly => DegradationLevel::PriorOnly,
        }
    }

    /// Derives the per-request configuration implementing this plan on top
    /// of `base`. The result always passes [`AidaConfig::validate`] when
    /// `base` does.
    pub fn apply(&self, base: &AidaConfig) -> AidaConfig {
        match *self {
            DeadlinePlan::Full => base.clone(),
            DeadlinePlan::Budgeted { wall_ms } => {
                AidaConfig { solver_wall_budget_ms: Some(wall_ms), ..base.clone() }
            }
            DeadlinePlan::NoCoherence { .. } => AidaConfig {
                use_coherence: false,
                use_coherence_robustness: false,
                solver_wall_budget_ms: None,
                ..base.clone()
            },
            // Prior-only: weight the prior alone (α = 1) and drop every
            // other feature. Candidate features are still computed — the
            // ladder's own PriorOnly rung works the same way — but no
            // graph is built and no solver runs.
            DeadlinePlan::PriorOnly => AidaConfig {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                use_prior: true,
                use_prior_robustness: false,
                use_coherence: false,
                use_coherence_robustness: false,
                solver_wall_budget_ms: None,
                ..base.clone()
            },
        }
    }

    /// Stable label for reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeadlinePlan::Full => "full",
            DeadlinePlan::Budgeted { .. } => "budgeted",
            DeadlinePlan::NoCoherence { .. } => "no-coherence",
            DeadlinePlan::PriorOnly => "prior-only",
        }
    }
}

impl std::fmt::Display for DeadlinePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Remaining time before `deadline_ms` (counted from `submitted_ns`) at
/// `now_ns`, or `None` when the request carries no deadline. Saturates at
/// zero once expired.
pub fn remaining_ns(
    deadline_ms: Option<u64>,
    submitted_ns: u64,
    now_ns: u64,
) -> Option<u64> {
    let deadline_ms = deadline_ms?;
    let deadline_abs = submitted_ns.saturating_add(deadline_ms.saturating_mul(1_000_000));
    Some(deadline_abs.saturating_sub(now_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_runs_full() {
        let p = DeadlinePolicy::default();
        assert_eq!(p.plan(None), DeadlinePlan::Full);
        assert_eq!(DeadlinePlan::Full.floor(), DegradationLevel::None);
    }

    #[test]
    fn plan_steps_down_the_ladder_as_time_runs_out() {
        let p = DeadlinePolicy::default();
        assert_eq!(p.plan(Some(50_000_000)), DeadlinePlan::Budgeted { wall_ms: 50 });
        assert_eq!(p.plan(Some(5_000_000)), DeadlinePlan::Budgeted { wall_ms: 5 });
        assert_eq!(p.plan(Some(4_999_999)), DeadlinePlan::NoCoherence { wall_ms: 4 });
        assert_eq!(p.plan(Some(1_000_000)), DeadlinePlan::NoCoherence { wall_ms: 1 });
        assert_eq!(p.plan(Some(999_999)), DeadlinePlan::PriorOnly);
        assert_eq!(p.plan(Some(0)), DeadlinePlan::PriorOnly);
    }

    #[test]
    fn floors_are_ordered_with_the_ladder() {
        let p = DeadlinePolicy::default();
        let mut last = DegradationLevel::None;
        for remaining in [u64::MAX, 10_000_000, 2_000_000, 0] {
            let floor = p.plan(Some(remaining)).floor();
            assert!(floor >= last, "monotone degradation as time shrinks");
            last = floor;
        }
        assert_eq!(last, DegradationLevel::PriorOnly);
    }

    #[test]
    fn applied_configs_validate() {
        let base = AidaConfig::full();
        for plan in [
            DeadlinePlan::Full,
            DeadlinePlan::Budgeted { wall_ms: 7 },
            DeadlinePlan::NoCoherence { wall_ms: 2 },
            DeadlinePlan::PriorOnly,
        ] {
            let cfg = plan.apply(&base);
            cfg.validate().unwrap_or_else(|e| panic!("{plan}: {e}"));
        }
        assert_eq!(
            DeadlinePlan::Budgeted { wall_ms: 7 }.apply(&base).solver_wall_budget_ms,
            Some(7)
        );
        assert!(!DeadlinePlan::NoCoherence { wall_ms: 2 }.apply(&base).use_coherence);
        let prior = DeadlinePlan::PriorOnly.apply(&base);
        assert!(!prior.use_coherence);
        assert_eq!(prior.alpha, 1.0);
        assert_eq!(prior.sim_share(), 0.0, "prior gets all the local weight");
    }

    #[test]
    fn remaining_time_saturates() {
        assert_eq!(remaining_ns(None, 5, 100), None);
        assert_eq!(remaining_ns(Some(10), 0, 0), Some(10_000_000));
        assert_eq!(remaining_ns(Some(10), 1_000, 5_000_000), Some(5_001_000));
        assert_eq!(remaining_ns(Some(1), 0, 2_000_000), Some(0), "expired clamps to 0");
    }

    #[test]
    fn policy_validation() {
        assert!(DeadlinePolicy::default().validate().is_ok());
        let bad = DeadlinePolicy { no_coherence_below_ms: 1, prior_only_below_ms: 5 };
        assert!(bad.validate().is_err());
    }
}
