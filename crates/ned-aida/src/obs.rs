//! Pre-resolved metric handles for the disambiguation pipeline.
//!
//! The hot loops (similarity scoring, the greedy solver) run millions of
//! times per corpus, so they must not pay a registry lookup per event.
//! These structs resolve every counter once — at [`crate::Disambiguator`]
//! construction — into cheap atomic handles; the default-constructed form
//! holds disabled handles that compile down to a single branch per event.
//!
//! All counters here obey the determinism contract of `ned-obs`: they count
//! *algorithmic* events (candidates scored, postings scanned, solver steps),
//! so their totals depend only on the input and configuration, never on
//! thread interleaving or machine speed.

use ned_obs::{names, Counter, Metrics, Span};

/// Counters of the similarity stage (Eq. 3.4 evaluation and the keyphrase
/// inverted index behind it).
#[derive(Debug, Clone, Default)]
pub struct SimObs {
    /// `simscore` evaluations (one per mention–candidate pair scored).
    pub evaluations: Counter,
    /// Evaluations that scanned KP(e) directly (entity side smaller).
    pub plan_entity_side: Counter,
    /// Evaluations that probed the inverted index (context side smaller).
    pub plan_word_side: Counter,
    /// Index postings visited before deduplication (word-side plan only).
    pub postings_scanned: Counter,
    /// Phrases that survived pruning and were actually scored.
    pub phrases_matched: Counter,
}

impl SimObs {
    /// Resolves the similarity counters in `metrics`.
    pub fn new(metrics: &Metrics) -> Self {
        SimObs {
            evaluations: metrics.counter(names::AIDA_SIMILARITY_EVALUATIONS),
            plan_entity_side: metrics.counter(names::AIDA_SIM_PLAN_ENTITY_SIDE),
            plan_word_side: metrics.counter(names::AIDA_SIM_PLAN_WORD_SIDE),
            postings_scanned: metrics.counter(names::KP_INDEX_POSTINGS_SCANNED),
            phrases_matched: metrics.counter(names::AIDA_SIM_PHRASES_MATCHED),
        }
    }
}

/// Counters of the greedy dense-subgraph solver (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct SolverObs {
    /// Solver invocations (one per document that reached the joint stage).
    pub invocations: Counter,
    /// Budget units spent (Dijkstra pops, greedy removals, objective
    /// evaluations) — exactly the ladder's iteration currency.
    pub iterations: Counter,
    /// Greedy-loop candidates skipped because removing them would strand a
    /// mention (taboo rule of §3.4.2).
    pub taboo_hits: Counter,
    /// Entity nodes dropped by the distance pre-pruning phase.
    pub entities_pruned: Counter,
    /// Invocations that exhausted their iteration or wall budget.
    pub budget_exhausted: Counter,
}

impl SolverObs {
    /// Resolves the solver counters in `metrics`.
    pub fn new(metrics: &Metrics) -> Self {
        SolverObs {
            invocations: metrics.counter(names::AIDA_SOLVER_INVOCATIONS),
            iterations: metrics.counter(names::AIDA_SOLVER_ITERATIONS),
            taboo_hits: metrics.counter(names::AIDA_SOLVER_TABOO_HITS),
            entities_pruned: metrics.counter(names::AIDA_SOLVER_ENTITIES_PRUNED),
            budget_exhausted: metrics.counter(names::AIDA_SOLVER_BUDGET_EXHAUSTED),
        }
    }
}

/// All pipeline counters plus the registry handle for stage spans.
#[derive(Debug, Clone, Default)]
pub struct PipelineObs {
    /// Documents disambiguated (non-empty feature sets).
    pub docs: Counter,
    /// Mentions processed across all documents.
    pub mentions: Counter,
    /// Candidate entities retrieved and scored (expansion-fallback
    /// re-lookups count again: the work was done twice).
    pub candidates_considered: Counter,
    /// Mentions fixed to their best local candidate by the coherence
    /// robustness test (§3.5.2).
    pub mentions_fixed: Counter,
    /// Entity nodes in the constructed mention–entity graphs.
    pub graph_entity_nodes: Counter,
    /// Entity–entity coherence edges in the constructed graphs.
    pub coherence_edges_built: Counter,
    /// Documents that completed at the full joint level.
    pub degradation_joint: Counter,
    /// Documents degraded to local features (solver budget exhausted).
    pub degradation_no_coherence: Counter,
    /// Documents degraded to the popularity prior (poisoned similarity).
    pub degradation_prior_only: Counter,
    /// Similarity-stage counters.
    pub sim: SimObs,
    /// Solver counters.
    pub solver: SolverObs,
    metrics: Metrics,
}

impl PipelineObs {
    /// Resolves every pipeline counter in `metrics` and keeps the handle
    /// for stage spans.
    pub fn new(metrics: &Metrics) -> Self {
        PipelineObs {
            docs: metrics.counter(names::AIDA_DOCS),
            mentions: metrics.counter(names::AIDA_MENTIONS),
            candidates_considered: metrics.counter(names::AIDA_CANDIDATES_CONSIDERED),
            mentions_fixed: metrics.counter(names::AIDA_MENTIONS_FIXED),
            graph_entity_nodes: metrics.counter(names::AIDA_GRAPH_ENTITY_NODES),
            coherence_edges_built: metrics.counter(names::AIDA_COHERENCE_EDGES_BUILT),
            degradation_joint: metrics.counter(names::AIDA_DEGRADATION_JOINT),
            degradation_no_coherence: metrics.counter(names::AIDA_DEGRADATION_NO_COHERENCE),
            degradation_prior_only: metrics.counter(names::AIDA_DEGRADATION_PRIOR_ONLY),
            sim: SimObs::new(metrics),
            solver: SolverObs::new(metrics),
            metrics: metrics.clone(),
        }
    }

    /// Opens a wall-clock span recording into histogram `name` on drop.
    /// Durations follow the registry's [`ned_obs::Clock`] — frozen at zero
    /// under the default null clock, so counters stay deterministic.
    pub fn span(&self, name: &str) -> Span {
        self.metrics.span(name)
    }
}
