//! Named-entity classification (NEC, §2.4.4).
//!
//! NEC abstracts over the entity level: instead of resolving "Dylan" to
//! `Bob Dylan`, it labels the mention with its semantic type (person /
//! musician / ...). The thesis describes NEC as a sibling task enabled by
//! the same knowledge base; this implementation classifies a mention by
//! aggregating the type evidence of its disambiguation candidates, weighted
//! by a blend of the popularity prior and the context similarity — the same
//! local features AIDA uses, projected onto the taxonomy.

use ned_kb::taxonomy::Taxonomy;
use ned_kb::{KbView, TypeId};
use ned_text::{Mention, Token};

use crate::candidates::candidate_features;
use crate::config::KeywordWeighting;
use crate::context::DocumentContext;

/// A type prediction with its aggregated evidence mass.
#[derive(Debug, Clone, PartialEq)]
pub struct TypePrediction {
    /// The predicted type.
    pub ty: TypeId,
    /// Normalized evidence in (0, 1]; predictions for one mention sum to 1
    /// over *direct* candidate types.
    pub score: f64,
}

/// Type classifier over a knowledge base and a taxonomy.
pub struct TypeClassifier<'a, K> {
    kb: K,
    taxonomy: &'a Taxonomy,
    /// Weight of the prior against the context similarity.
    prior_weight: f64,
}

// Manual Debug: the KB handle and taxonomy would dump whole stores.
impl<K> std::fmt::Debug for TypeClassifier<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypeClassifier")
            .field("prior_weight", &self.prior_weight)
            .finish_non_exhaustive()
    }
}

impl<'a, K: KbView> TypeClassifier<'a, K> {
    /// Creates a classifier with the default prior weight (0.5).
    pub fn new(kb: K, taxonomy: &'a Taxonomy) -> Self {
        TypeClassifier { kb, taxonomy, prior_weight: 0.5 }
    }

    /// Overrides the prior/context blend.
    pub fn with_prior_weight(mut self, w: f64) -> Self {
        assert!((0.0..=1.0).contains(&w), "prior weight must be in [0,1]");
        self.prior_weight = w;
        self
    }

    /// Classifies one mention: type scores aggregated over the candidate
    /// entities' *direct* types, sorted descending. Empty when the mention
    /// has no candidates.
    pub fn classify(&self, tokens: &[Token], mention: &Mention) -> Vec<TypePrediction> {
        let ctx = DocumentContext::build(&self.kb, tokens);
        let features = candidate_features(
            &self.kb,
            mention,
            &ctx.for_mention(mention),
            KeywordWeighting::Npmi,
        );
        let mut scores: Vec<(TypeId, f64)> = Vec::new();
        for f in &features {
            let weight =
                self.prior_weight * f.prior + (1.0 - self.prior_weight) * f.sim_normalized;
            for &ty in self.taxonomy.direct_types(f.entity) {
                match scores.iter_mut().find(|(t, _)| *t == ty) {
                    Some((_, s)) => *s += weight,
                    None => scores.push((ty, weight)),
                }
            }
        }
        let total: f64 = scores.iter().map(|&(_, s)| s).sum();
        if total <= 0.0 {
            // No evidence at all: fall back to uniform over candidate types.
            let n = scores.len();
            for (_, s) in &mut scores {
                *s = 1.0 / n.max(1) as f64;
            }
        } else {
            for (_, s) in &mut scores {
                *s /= total;
            }
        }
        let mut out: Vec<TypePrediction> =
            scores.into_iter().map(|(ty, score)| TypePrediction { ty, score }).collect();
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.ty.cmp(&b.ty)));
        out
    }

    /// Convenience: the single best type, if any.
    pub fn best_type(&self, tokens: &[Token], mention: &Mention) -> Option<TypeId> {
        self.classify(tokens, mention).first().map(|p| p.ty)
    }

    /// True if the mention's evidence supports `ty` (directly or via a
    /// subtype) with at least `min_score` mass.
    pub fn supports(
        &self,
        tokens: &[Token],
        mention: &Mention,
        ty: TypeId,
        min_score: f64,
    ) -> bool {
        self.classify(tokens, mention)
            .iter()
            .filter(|p| self.taxonomy.is_subtype_of(p.ty, ty))
            .map(|p| p.score)
            .sum::<f64>()
            >= min_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::tokenize;

    /// "Dylan" is either the musician (popular) or a city (less popular).
    fn setup() -> (KnowledgeBase, Taxonomy) {
        let mut b = KbBuilder::new();
        let musician = b.add_entity("Bob Dylan", EntityKind::Person);
        let city = b.add_entity("Dylan Town", EntityKind::Location);
        b.add_name(musician, "Dylan", 80);
        b.add_name(city, "Dylan", 20);
        b.add_keyphrase(musician, "folk singer", 4);
        b.add_keyphrase(musician, "studio album", 3);
        b.add_keyphrase(city, "river harbor", 3);
        b.add_keyphrase(city, "municipal council", 2);
        let kb = b.build();
        let mut tax = Taxonomy::new(kb.entity_count());
        let person = tax.add_type("person");
        let m = tax.add_type("musician");
        tax.add_subclass(m, person);
        let location = tax.add_type("location");
        let c = tax.add_type("city");
        tax.add_subclass(c, location);
        tax.assign(musician, m);
        tax.assign(city, c);
        (kb, tax)
    }

    #[test]
    fn context_drives_the_type() {
        let (kb, tax) = setup();
        let clf = TypeClassifier::new(&kb, &tax).with_prior_weight(0.2);
        let tokens = tokenize("the river harbor near Dylan was busy");
        let mention = Mention::new("Dylan", 4, 5);
        let best = clf.best_type(&tokens, &mention).unwrap();
        assert_eq!(tax.name(best), "city");
        // Music context flips it.
        let tokens = tokenize("the folk singer Dylan released a studio album");
        let mention = Mention::new("Dylan", 3, 4);
        let best = clf.best_type(&tokens, &mention).unwrap();
        assert_eq!(tax.name(best), "musician");
    }

    #[test]
    fn prior_dominates_without_context() {
        let (kb, tax) = setup();
        let clf = TypeClassifier::new(&kb, &tax);
        let tokens = tokenize("Dylan appeared");
        let mention = Mention::new("Dylan", 0, 1);
        let best = clf.best_type(&tokens, &mention).unwrap();
        assert_eq!(tax.name(best), "musician");
    }

    #[test]
    fn scores_are_normalized() {
        let (kb, tax) = setup();
        let clf = TypeClassifier::new(&kb, &tax);
        let tokens = tokenize("the folk singer Dylan");
        let mention = Mention::new("Dylan", 3, 4);
        let predictions = clf.classify(&tokens, &mention);
        let total: f64 = predictions.iter().map(|p| p.score).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in predictions.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn supports_respects_the_hierarchy() {
        let (kb, tax) = setup();
        let clf = TypeClassifier::new(&kb, &tax);
        let tokens = tokenize("the folk singer Dylan released a studio album");
        let mention = Mention::new("Dylan", 3, 4);
        let person = tax.type_by_name("person").unwrap();
        // "musician" evidence counts toward "person".
        assert!(clf.supports(&tokens, &mention, person, 0.5));
        let location = tax.type_by_name("location").unwrap();
        assert!(!clf.supports(&tokens, &mention, location, 0.5));
    }

    #[test]
    fn unknown_mention_has_no_prediction() {
        let (kb, tax) = setup();
        let clf = TypeClassifier::new(&kb, &tax);
        let tokens = tokenize("Zorp appeared");
        let mention = Mention::new("Zorp", 0, 1);
        assert!(clf.classify(&tokens, &mention).is_empty());
        assert_eq!(clf.best_type(&tokens, &mention), None);
    }
}
