//! Mention-context extraction (§3.3.4).
//!
//! "On the mention side, we use all tokens in the entire input text (except
//! stopwords and the mention itself) as context." The context is interned
//! against the knowledge base's keyword vocabulary; tokens unknown to the KB
//! cannot match any keyphrase and are dropped.

use ned_kb::{KbView, WordId};
use ned_text::stopwords::is_stopword;
use ned_text::{Mention, Token, TokenKind};

/// The document context: every non-stopword word token with its position,
/// interned as KB keywords.
#[derive(Debug, Clone, Default)]
pub struct DocumentContext {
    /// (token position, keyword id), sorted by position.
    pub words: Vec<(usize, WordId)>,
}

impl DocumentContext {
    /// Builds the context of a whole document.
    pub fn build<K: KbView + ?Sized>(kb: &K, tokens: &[Token]) -> Self {
        let words = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokenKind::Word && !is_stopword(&t.text))
            .filter_map(|(i, t)| kb.word_id(&t.text).map(|w| (i, w)))
            .collect();
        DocumentContext { words }
    }

    /// The context of one mention: the document context minus the mention's
    /// own tokens.
    pub fn for_mention(&self, mention: &Mention) -> Vec<(usize, WordId)> {
        self.words
            .iter()
            .copied()
            .filter(|&(pos, _)| !mention.covers(pos))
            .collect()
    }

    /// Number of context words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the document has no usable context.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::tokenize;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let e = b.add_entity("Jimmy Page", EntityKind::Person);
        b.add_keyphrase(e, "hard rock chords", 1);
        b.add_keyphrase(e, "Gibson guitar", 1);
        b.build()
    }

    #[test]
    fn keeps_known_content_words_with_positions() {
        let kb = kb();
        let tokens = tokenize("Page played unusual chords on his Gibson.");
        let ctx = DocumentContext::build(&kb, &tokens);
        let words: Vec<&str> = ctx.words.iter().map(|&(_, w)| kb.word_text(w)).collect();
        assert_eq!(words, vec!["chords", "gibson"]);
        // Positions point at the original tokens.
        assert_eq!(tokens[ctx.words[0].0].text, "chords");
    }

    #[test]
    fn drops_stopwords_and_unknown_words() {
        let kb = kb();
        let tokens = tokenize("on his the unusual");
        let ctx = DocumentContext::build(&kb, &tokens);
        assert!(ctx.is_empty());
    }

    #[test]
    fn mention_tokens_are_excluded_from_its_context() {
        let kb = kb();
        let tokens = tokenize("Gibson chords Gibson");
        let ctx = DocumentContext::build(&kb, &tokens);
        assert_eq!(ctx.len(), 3);
        let m = Mention::new("Gibson", 0, 1);
        let mention_ctx = ctx.for_mention(&m);
        assert_eq!(mention_ctx.len(), 2);
        assert!(mention_ctx.iter().all(|&(pos, _)| pos != 0));
    }
}
