//! Reusable per-worker scoring arenas.
//!
//! The candidate-scoring hot path (context word set → matching-phrase
//! enumeration → shortest covers → weight masses) used to allocate a handful
//! of short-lived vectors per mention–candidate pair. [`ScoringScratch`]
//! bundles every one of those buffers into a single arena that is cleared
//! (never freed) between uses, so steady-state scoring performs zero heap
//! allocations per mention.
//!
//! # Ownership rules
//!
//! - One arena per worker thread, owned by a thread-local and handed out by
//!   [`with_scratch`]. The vendored rayon shim spawns scoped workers per
//!   parallel region, so each worker's arena lives for its whole chunk of
//!   documents and is reused across every mention in it.
//! - Re-entrant [`with_scratch`] calls (the arena already borrowed further
//!   up the stack) fall back to a fresh arena. This is safe because the
//!   arena never influences *values* — only where intermediates live — so
//!   results are bit-identical either way.
//! - Buffers hold plain ids and floats; nothing borrows from the KB, so an
//!   arena outlives any particular knowledge base and can serve several.

use std::cell::RefCell;

use ned_kb::{EntityId, PhraseId, WordId};

use crate::cover::CoverScratch;

/// All buffers of the scoring hot path, reusable across mentions.
#[derive(Debug, Default)]
pub struct ScoringScratch {
    /// Shortest-cover buffers (occurrences, window counts, cover words).
    pub cover: CoverScratch,
    /// Sorted-deduplicated context word set of the current mention.
    pub(crate) context_words: Vec<WordId>,
    /// Matching phrase ids of the candidate currently being scored.
    pub(crate) matching: Vec<PhraseId>,
    /// Word-side-planned candidates of the current mention as
    /// `(entity, candidate index)`, sorted by entity for the merge pass.
    pub(crate) word_side: Vec<(EntityId, usize)>,
    /// Dense per-candidate phrase-id accumulators, indexed by the
    /// candidate's slot in the sorted `word_side` list.
    pub(crate) phrase_bufs: Vec<Vec<PhraseId>>,
    /// Batched similarity scores, in candidate order.
    pub(crate) sims: Vec<f64>,
}

impl ScoringScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static SCRATCH: RefCell<ScoringScratch> = RefCell::new(ScoringScratch::new());
}

/// Runs `f` with this worker thread's scoring arena.
///
/// The arena is process-lifetime per thread: the first use on a thread pays
/// the buffer growth, every later use on that thread reuses the capacity.
/// If the arena is already borrowed (a re-entrant scoring call further up
/// the stack), `f` gets a fresh arena instead — bit-identical results, just
/// without the reuse.
pub fn with_scratch<R>(f: impl FnOnce(&mut ScoringScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ScoringScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_scratch_reuses_capacity_across_calls() {
        with_scratch(|s| {
            s.context_words.clear();
            s.context_words.extend((0u32..64).map(WordId));
        });
        let cap = with_scratch(|s| s.context_words.capacity());
        assert!(cap >= 64, "thread-local arena should retain capacity, got {cap}");
    }

    #[test]
    fn reentrant_with_scratch_falls_back_to_fresh_arena() {
        with_scratch(|outer| {
            outer.sims.push(1.0);
            let inner_len = with_scratch(|inner| {
                inner.sims.push(2.0);
                inner.sims.len()
            });
            // The inner call must have seen a fresh arena, not ours.
            assert_eq!(inner_len, 1);
            assert_eq!(outer.sims.last().copied(), Some(1.0));
        });
    }
}
