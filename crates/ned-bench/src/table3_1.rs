//! Table 3.1: properties of the CoNLL-style corpus and its knowledge base.

use std::collections::HashSet;

use ned_eval::report::{num, Table};
use ned_kb::stats::KbStats;

use crate::setup::{Env, Scale};

/// Prints the corpus/KB property table.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let corpus = env.conll(scale);
    let kb = &env.exported.kb;

    let articles = corpus.docs.len();
    let mentions: usize = corpus.docs.iter().map(|d| d.mentions.len()).sum();
    let no_entity: usize = corpus.docs.iter().map(|d| d.out_of_kb_count()).sum();
    let words: usize = corpus.docs.iter().map(|d| d.tokens.len()).sum();
    let distinct_mentions: usize = corpus
        .docs
        .iter()
        .map(|d| {
            d.mentions.iter().map(|m| m.mention.surface.as_str()).collect::<HashSet<_>>().len()
        })
        .sum();
    let with_candidates: usize = corpus
        .docs
        .iter()
        .flat_map(|d| d.mentions.iter())
        .filter(|m| !kb.candidates(&m.mention.surface).is_empty())
        .count();
    let candidate_total: usize = corpus
        .docs
        .iter()
        .flat_map(|d| d.mentions.iter())
        .map(|m| kb.candidates(&m.mention.surface).len())
        .sum();

    let mut t = Table::new("Table 3.1 — corpus properties (CoNLL-like)", &["property", "value"]);
    t.add_row(vec!["articles".into(), articles.to_string()]);
    t.add_row(vec!["mentions (total)".into(), mentions.to_string()]);
    t.add_row(vec!["mentions with no entity".into(), no_entity.to_string()]);
    t.add_row(vec!["words per article (avg.)".into(), num(words as f64 / articles as f64, 1)]);
    t.add_row(vec![
        "mentions per article (avg.)".into(),
        num(mentions as f64 / articles as f64, 1),
    ]);
    t.add_row(vec![
        "distinct mentions per article (avg.)".into(),
        num(distinct_mentions as f64 / articles as f64, 1),
    ]);
    t.add_row(vec![
        "mentions with candidate in KB".into(),
        num(with_candidates as f64 / articles as f64, 1),
    ]);
    t.add_row(vec![
        "entities per mention (avg.)".into(),
        num(candidate_total as f64 / mentions.max(1) as f64, 1),
    ]);
    print!("{}", t.render());

    let stats = KbStats::of(kb);
    let mut k = Table::new("Knowledge base properties", &["property", "value"]);
    k.add_row(vec!["entities".into(), stats.entities.to_string()]);
    k.add_row(vec!["names".into(), stats.names.to_string()]);
    k.add_row(vec!["name-entity pairs".into(), stats.name_entity_pairs.to_string()]);
    k.add_row(vec![
        "mean candidates per name".into(),
        num(stats.mean_candidates_per_name, 2),
    ]);
    k.add_row(vec!["max candidates per name".into(), stats.max_candidates_per_name.to_string()]);
    k.add_row(vec!["links".into(), stats.links.to_string()]);
    k.add_row(vec!["mean in-links".into(), num(stats.mean_inlinks, 2)]);
    k.add_row(vec!["distinct keyphrases".into(), stats.distinct_keyphrases.to_string()]);
    k.add_row(vec![
        "mean keyphrases per entity".into(),
        num(stats.mean_keyphrases_per_entity, 2),
    ]);
    print!("{}", k.render());
}
