//! Table 5.1 / Figure 5.3: quality of the disambiguation-confidence
//! assessors — precision at confidence cutoffs and MAP of the induced
//! mention ranking.

use ned_aida::baselines::{LocalLinker, PriorOnly};
use ned_aida::{AidaConfig, Disambiguator};
use ned_eval::map::{interpolated_map, precision_at_confidence, pr_curve, RankedItem};
use ned_eval::report::{num, pct, Table};
use ned_emerging::confidence::{ConfAssessor, ConfidenceMethod};
use ned_relatedness::MilneWitten;

use crate::runner::run_per_doc;
use crate::setup::{Env, Scale};

/// Runs the confidence comparison on the CoNLL-like test split.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let kb = &env.frozen;
    let corpus = env.conll(scale);
    let docs = corpus.test();

    // prior: ranked by the prior of the chosen entity.
    let prior_items = {
        let method = PriorOnly::new(kb);
        let eval = crate::runner::run_method(&method, docs);
        eval.ranked_items()
    };

    // IW: ranked by the local linker score.
    let iw_items = {
        let method = LocalLinker::new(kb);
        let eval = crate::runner::run_method(&method, docs);
        eval.ranked_items()
    };

    // AIDAcoh: the graph method ranked by its keyphrase/weighted-degree
    // normalized score.
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());
    let aida_items = {
        let eval = crate::runner::run_method(&aida, docs);
        eval.ranked_items()
    };

    // CONF: normalized weighted degree + entity perturbation.
    let assessor = ConfAssessor::new(ConfidenceMethod::Conf);
    let conf_eval = run_per_doc(docs, |doc| {
        let mentions = doc.bare_mentions();
        let features = aida.features(&doc.tokens, &mentions);
        let result = aida.disambiguate_features(&features);
        let confidence = assessor.assess(&aida, &features, &result);
        crate::runner::DocOutcome {
            gold: doc.gold_labels(),
            predicted: result.labels(),
            confidence,
            status: crate::runner::DocStatus::from_degradation(result.degradation),
        }
    });
    let conf_items = conf_eval.ranked_items();

    let mut table = Table::new(
        "Table 5.1 — confidence assessors",
        &["Measure", "Prec@95%conf", "#Men@95%conf", "Prec@80%conf", "#Men@80%conf", "MAP"],
    );
    let rows: Vec<(&str, &Vec<RankedItem>)> = vec![
        ("prior", &prior_items),
        ("AIDAcoh", &aida_items),
        ("IW", &iw_items),
        ("CONF", &conf_items),
    ];
    for (name, items) in &rows {
        let (p95, n95) = precision_at_confidence(items, 0.95);
        let (p80, n80) = precision_at_confidence(items, 0.80);
        table.add_row(vec![
            name.to_string(),
            if n95 > 0 { pct(p95) } else { "-".into() },
            n95.to_string(),
            if n80 > 0 { pct(p80) } else { "-".into() },
            n80.to_string(),
            pct(interpolated_map(items)),
        ]);
    }
    print!("{}", table.render());

    // Figure 5.3: interpolated precision at recall levels.
    let mut fig = Table::new(
        "Figure 5.3 — precision at recall levels",
        &["recall", "prior", "AIDAcoh", "CONF"],
    );
    let interp_at = |items: &[RankedItem], recall: f64| -> f64 {
        pr_curve(items)
            .iter()
            .filter(|p| p.recall >= recall)
            .map(|p| p.precision)
            .fold(0.0f64, f64::max)
    };
    for r in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        fig.add_row(vec![
            num(r, 1),
            num(interp_at(&prior_items, r), 4),
            num(interp_at(&aida_items, r), 4),
            num(interp_at(&conf_items, r), 4),
        ]);
    }
    print!("{}", fig.render());
}
