#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Experiment harness regenerating every table and figure of the thesis'
//! evaluation chapters on the synthetic world (see DESIGN.md §5 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured records).
//!
//! Run with `cargo run -p ned-bench --release --bin experiments -- <id|all>`.
//!
//! Every binary linking this crate (the experiments harness and the crate's
//! test runners) routes heap allocation through the first-party counting
//! wrapper, so benches can report per-stage allocation-event counts — see
//! `ned_obs::alloc` for the counting contract. Library crates never install
//! it; this is strictly a bench/test-build measurement aid.

use ned_obs::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Allocation events since process start (monotone, process-global; take
/// deltas at quiescent points — see `ned_obs::alloc`).
pub fn alloc_events() -> u64 {
    ALLOC.alloc_count()
}

pub mod ablations;
pub mod bench_serving;
pub mod bench_streaming;
pub mod bench_throughput;
pub mod fig4_3;
pub mod fig5_4;
pub mod runner;
pub mod setup;
pub mod table3_1;
pub mod table3_2;
pub mod table4_2;
pub mod table4_3;
pub mod table4_4;
pub mod table5_1;
pub mod table5_3;

/// An experiment entry point.
pub type Experiment = fn(&setup::Scale);

/// All experiment ids, in chapter order.
pub const EXPERIMENTS: &[(&str, Experiment)] = &[
    ("table3_1", table3_1::run),
    ("table3_2", table3_2::run),
    ("table4_2", table4_2::run),
    ("table4_3", table4_3::run),
    ("fig4_3", fig4_3::run),
    ("table4_4", table4_4::run),
    ("table5_1", table5_1::run),
    ("table5_3", table5_3::run),
    ("fig5_4", fig5_4::run),
    ("ablations", ablations::run),
    ("bench_throughput", bench_throughput::run),
    ("bench_serving", bench_serving::run),
    ("bench_streaming", bench_streaming::run),
];
