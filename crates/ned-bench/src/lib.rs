#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Experiment harness regenerating every table and figure of the thesis'
//! evaluation chapters on the synthetic world (see DESIGN.md §5 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured records).
//!
//! Run with `cargo run -p ned-bench --release --bin experiments -- <id|all>`.

pub mod ablations;
pub mod bench_throughput;
pub mod fig4_3;
pub mod fig5_4;
pub mod runner;
pub mod setup;
pub mod table3_1;
pub mod table3_2;
pub mod table4_2;
pub mod table4_3;
pub mod table4_4;
pub mod table5_1;
pub mod table5_3;

/// An experiment entry point.
pub type Experiment = fn(&setup::Scale);

/// All experiment ids, in chapter order.
pub const EXPERIMENTS: &[(&str, Experiment)] = &[
    ("table3_1", table3_1::run),
    ("table3_2", table3_2::run),
    ("table4_2", table4_2::run),
    ("table4_3", table4_3::run),
    ("fig4_3", fig4_3::run),
    ("table4_4", table4_4::run),
    ("table5_1", table5_1::run),
    ("table5_3", table5_3::run),
    ("fig5_4", fig5_4::run),
    ("ablations", ablations::run),
    ("bench_throughput", bench_throughput::run),
];
