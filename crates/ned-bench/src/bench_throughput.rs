//! Throughput benchmark of the parallel disambiguation engine.
//!
//! Runs full AIDA (with a cached Milne–Witten measure) over the CoNLL-like
//! corpus at several thread counts and reports docs/sec and mentions/sec per
//! count, the speedup relative to one thread, and the relatedness-cache hit
//! rate. The sweep runs through the `Arc<FrozenKb>` read path (the service
//! configuration) and a legacy `&KnowledgeBase` pass asserts both paths are
//! byte-identical. Also measures the algorithmic speedup of the keyphrase
//! inverted index (indexed vs exhaustive `simscore` over every
//! mention–candidate pair) and asserts that every thread count produces
//! byte-identical outcomes. Results are printed as a table and written to
//! `BENCH_throughput.json`, `BENCH_kb_memory.json`, and `metrics.json` in
//! the working directory.
//!
//! Each sweep run carries its own [`ned_obs::Metrics`] registry; the bench
//! asserts that the full metrics snapshot — every counter and histogram
//! bucket — is identical across thread counts (the observability layer's
//! determinism contract), and that a metrics-disabled run produces
//! byte-identical annotations to the instrumented ones (the zero-overhead
//! contract).
//!
//! Because the harness installs the counting allocator (see
//! `ned_obs::alloc`), every stage also reports its allocation-event count:
//! per-run `allocs_per_doc` columns, and a dedicated batched-scoring stage
//! that certifies the steady-state hot path allocates ~nothing per mention.
//! The single-threaded stage figures feed the shrink-only `alloc.toml`
//! ratchet (checked by the `alloc_check` binary in CI).

use std::time::Instant;

use ned_kb::FrozenKbStats;
use ned_obs::{names as obs_names, Metrics, MetricsSnapshot};

use ned_aida::context::DocumentContext;
use ned_aida::similarity::{
    context_word_set, simscore_exhaustive, simscore_indexed, simscores_batch_into,
};
use ned_aida::{AidaConfig, Disambiguator, KeywordWeighting, SimObs};
use ned_eval::report::{num, Table};
use ned_relatedness::{CacheConfig, CachedRelatedness, EvictionPolicy, MilneWitten};

use crate::alloc_events;
use crate::runner::{run_method_with_threads, Evaluation};
use crate::setup::{Env, Scale};

/// A mention's context window plus its candidate entities.
type SimCase = (Vec<(usize, ned_kb::WordId)>, Vec<ned_kb::EntityId>);

/// 1-thread pipeline cost measured at the PR-5 tip (observability layer),
/// pinned so the before/after trajectory stays visible in the JSON report:
/// 0.148064 s / 200 docs on the quick scale.
const PINNED_BASELINE_1T_NS_PER_DOC: f64 = 740_320.0;

/// One thread-count measurement.
#[derive(Debug, Clone, Copy)]
struct Run {
    threads: usize,
    seconds: f64,
    docs_per_sec: f64,
    mentions_per_sec: f64,
    speedup: f64,
    cache_hit_rate: f64,
    failed_docs: usize,
    degraded_docs: usize,
    /// Allocation events during the pipeline pass (process-global delta at
    /// quiescent points; exact at 1 thread, scheduling-dependent above).
    alloc_events: u64,
    allocs_per_doc: f64,
}

/// One row of the hit-rate-vs-memory-cap cache sweep: a single-threaded
/// pipeline pass with the relatedness cache bounded to `cap_bytes` under
/// `policy` (`cap_bytes: None` is the unbounded reference row). The
/// counters come from the run's metrics snapshot, so `cache_check` in CI
/// re-verifies the same conservation laws the unit harness proves.
#[derive(Debug, Clone)]
struct CacheSweepRow {
    policy: &'static str,
    cap_bytes: Option<u64>,
    lookups: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    admit_rejected: u64,
    stale_discards: u64,
    live_entries: u64,
    bytes: u64,
    peak_bytes: u64,
    hit_rate: f64,
    /// The run was executed twice; true when both snapshots matched bitwise.
    rerun_deterministic: bool,
    /// Annotation outcomes were byte-identical to the unbounded baseline.
    outcomes_match_unbounded: bool,
}

/// One stage's allocation accounting for the report and the ratchet.
#[derive(Debug, Clone, Copy)]
struct StageAlloc {
    stage: &'static str,
    alloc_events: u64,
    /// What `per_unit` divides by ("doc", "pair", "mention").
    unit: &'static str,
    per_unit: f64,
}

/// Byte-level equality of two evaluations (labels, confidence bits, and
/// per-document status).
fn identical(a: &Evaluation, b: &Evaluation) -> bool {
    a.docs.len() == b.docs.len()
        && a.docs.iter().zip(&b.docs).all(|(x, y)| {
            x.gold == y.gold
                && x.predicted == y.predicted
                && x.status == y.status
                && x.confidence.len() == y.confidence.len()
                && x.confidence
                    .iter()
                    .zip(&y.confidence)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// Runs the throughput benchmark.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let kb = &env.exported.kb;
    let corpus = env.conll(scale);
    let docs = &corpus.docs;
    let mention_count: usize = docs.iter().map(|d| d.mentions.len()).sum();

    let thread_counts = [1usize, 2, 4, 8];
    let mut runs: Vec<Run> = Vec::new();
    let mut baseline: Option<Evaluation> = None;
    let mut deterministic = true;
    let mut snapshot: Option<MetricsSnapshot> = None;
    let mut metrics_deterministic = true;

    for &threads in &thread_counts {
        // Fresh cache and metrics registry per run so the hit rate and
        // counters reflect one pass. The sweep runs over the frozen columnar
        // KB behind a shared `Arc` handle. The default null clock keeps span
        // sums at zero, so the whole snapshot (histograms included) must be
        // identical across thread counts.
        let metrics = Metrics::new();
        let cached =
            CachedRelatedness::with_metrics(MilneWitten::new(env.frozen.clone()), &metrics);
        let aida = Disambiguator::new(env.frozen.clone(), &cached, AidaConfig::full())
            .with_metrics(&metrics);
        let alloc_before = alloc_events();
        let start = Instant::now();
        let eval = run_method_with_threads(&aida, docs, threads)
            .unwrap_or_else(|e| panic!("cannot build {threads}-thread pool: {e}"));
        let seconds = start.elapsed().as_secs_f64();
        let run_allocs = alloc_events() - alloc_before;
        eval.record_metrics(&metrics);
        let failed_docs = eval.failed_count();
        let degraded_docs = eval.degraded_count();
        match &baseline {
            None => baseline = Some(eval),
            Some(b) => {
                if !identical(b, &eval) {
                    deterministic = false;
                }
            }
        }
        let snap = metrics.snapshot();
        match &snapshot {
            None => snapshot = Some(snap),
            Some(first) => {
                if *first != snap {
                    metrics_deterministic = false;
                }
            }
        }
        let speedup = runs.first().map_or(1.0, |r0| r0.seconds / seconds);
        runs.push(Run {
            threads,
            seconds,
            docs_per_sec: docs.len() as f64 / seconds,
            mentions_per_sec: mention_count as f64 / seconds,
            speedup,
            cache_hit_rate: cached.hit_rate(),
            failed_docs,
            degraded_docs,
            alloc_events: run_allocs,
            allocs_per_doc: run_allocs as f64 / docs.len() as f64,
        });
    }
    assert!(deterministic, "thread counts produced diverging outcomes");
    assert!(metrics_deterministic, "thread counts produced diverging metrics snapshots");

    // Zero-overhead contract: a disabled registry must not change a single
    // output bit, and its wall time bounds the instrumentation cost.
    let metrics_off_seconds = {
        let cached = CachedRelatedness::new(MilneWitten::new(env.frozen.clone()));
        let aida = Disambiguator::new(env.frozen.clone(), &cached, AidaConfig::full());
        let start = Instant::now();
        let eval = run_method_with_threads(&aida, docs, 1)
            .unwrap_or_else(|e| panic!("cannot build 1-thread pool: {e}"));
        let seconds = start.elapsed().as_secs_f64();
        let Some(b) = baseline.as_ref() else {
            unreachable!("the thread sweep runs at least once")
        };
        assert!(identical(b, &eval), "disabled metrics changed annotation output");
        seconds
    };
    let metrics_on_seconds = runs.first().map_or(0.0, |r| r.seconds);
    let metrics_overhead = if metrics_off_seconds > 0.0 {
        metrics_on_seconds / metrics_off_seconds
    } else {
        1.0
    };

    // The legacy mutable-shaped KB must agree byte for byte with the frozen
    // read path — the tables of the thesis do not move when the storage
    // layout does.
    {
        let cached = CachedRelatedness::new(MilneWitten::new(kb));
        let aida = Disambiguator::new(kb, &cached, AidaConfig::full());
        let legacy = run_method_with_threads(&aida, docs, 1)
            .unwrap_or_else(|e| panic!("cannot build 1-thread pool: {e}"));
        let Some(frozen_eval) = baseline.as_ref() else {
            unreachable!("the thread sweep runs at least once")
        };
        assert!(
            identical(frozen_eval, &legacy),
            "frozen KB path diverged from the legacy KB path"
        );
    }

    // Hit-rate-vs-memory-cap sweep: single-threaded runs per eviction
    // policy and byte cap, each executed twice — the metrics snapshots
    // (gauges included) must match bit for bit across reruns, and the
    // annotation outcomes must equal the unbounded baseline (memoization
    // is an optimization, never a result). The rows feed `cache_check`.
    let cache_caps: [Option<u64>; 6] = [
        Some(256 * 1024),
        Some(512 * 1024),
        Some(1 << 20),
        Some(2 << 20),
        Some(8 << 20),
        None,
    ];
    let sweep_policies = [EvictionPolicy::Lru, EvictionPolicy::TinyLfuSlru];
    let mut cache_rows: Vec<CacheSweepRow> = Vec::new();
    for &policy in &sweep_policies {
        for &cap in &cache_caps {
            let config = match cap {
                Some(bytes) => CacheConfig::bounded(bytes).with_policy(policy),
                None => CacheConfig::unbounded().with_policy(policy),
            };
            let run_once = || {
                let metrics = Metrics::new();
                let cached = CachedRelatedness::with_config(
                    MilneWitten::new(env.frozen.clone()),
                    &metrics,
                    config,
                );
                let aida = Disambiguator::new(env.frozen.clone(), &cached, AidaConfig::full())
                    .with_metrics(&metrics);
                let eval = run_method_with_threads(&aida, docs, 1)
                    .unwrap_or_else(|e| panic!("cannot build 1-thread pool: {e}"));
                eval.record_metrics(&metrics);
                cached.cache().publish_gauges();
                (eval, metrics.snapshot())
            };
            let (eval_a, snap_a) = run_once();
            let (_, snap_b) = run_once();
            let rerun_deterministic = snap_a == snap_b;
            let outcomes_match_unbounded =
                baseline.as_ref().is_some_and(|b| identical(b, &eval_a));
            let c = |name: &str| snap_a.counter(name);
            let hits = c(obs_names::RELATEDNESS_CACHE_HITS);
            let misses = c(obs_names::RELATEDNESS_CACHE_MISSES);
            let lookups = hits + misses;
            cache_rows.push(CacheSweepRow {
                policy: policy.label(),
                cap_bytes: cap,
                lookups,
                hits,
                misses,
                inserts: c(obs_names::RELATEDNESS_CACHE_INSERTS),
                evictions: c(obs_names::RELATEDNESS_CACHE_EVICTIONS),
                admit_rejected: c(obs_names::RELATEDNESS_CACHE_ADMIT_REJECTED),
                stale_discards: c(obs_names::RELATEDNESS_CACHE_STALE_DISCARDS),
                live_entries: snap_a.gauge(obs_names::RELATEDNESS_CACHE_ENTRIES),
                bytes: snap_a.gauge(obs_names::RELATEDNESS_CACHE_BYTES),
                peak_bytes: snap_a.gauge(obs_names::RELATEDNESS_CACHE_BYTES_PEAK),
                hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
                rerun_deterministic,
                outcomes_match_unbounded,
            });
        }
    }
    assert!(
        cache_rows.iter().all(|r| r.rerun_deterministic),
        "a bounded cache run was not reproducible"
    );
    assert!(
        cache_rows.iter().all(|r| r.outcomes_match_unbounded),
        "a bounded cache changed annotation outcomes"
    );

    // Algorithmic speedup of the keyphrase inverted index: score every
    // mention–candidate pair with and without the index, over the frozen
    // read path.
    let fkb = &env.frozen;
    let contexts: Vec<SimCase> = docs
        .iter()
        .flat_map(|d| {
            let ctx = DocumentContext::build(fkb, &d.tokens);
            d.mentions
                .iter()
                .map(|m| {
                    let cands =
                        fkb.candidates(&m.mention.surface).iter().map(|c| c.entity).collect();
                    (ctx.for_mention(&m.mention), cands)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let pair_count: usize = contexts.iter().map(|(_, cands)| cands.len()).sum();
    let time_sim = |indexed: bool| -> (f64, u64) {
        let alloc_before = alloc_events();
        let start = Instant::now();
        let mut acc = 0.0;
        for (ctx, cands) in &contexts {
            // As in the engine: one index query set per mention, shared by
            // all of its candidates.
            let words = context_word_set(ctx);
            for &e in cands {
                acc += if indexed {
                    simscore_indexed(fkb, e, ctx, &words, KeywordWeighting::Npmi)
                } else {
                    simscore_exhaustive(fkb, e, ctx, KeywordWeighting::Npmi)
                };
            }
        }
        std::hint::black_box(acc);
        (start.elapsed().as_secs_f64(), alloc_events() - alloc_before)
    };
    let (exhaustive_s, exhaustive_allocs) = time_sim(false);
    let (indexed_s, indexed_allocs) = time_sim(true);
    let index_speedup = if indexed_s > 0.0 { exhaustive_s / indexed_s } else { 1.0 };

    // The batched scorer, run twice over the whole corpus on one thread:
    // the first pass grows the per-thread arena to its high-water mark, the
    // second must be allocation-free — the zero-allocation hot-path claim,
    // measured rather than asserted by construction. Scores from both
    // passes must agree bitwise (scratch reuse cannot change a bit).
    let batched_metrics = Metrics::new();
    let batched_obs = SimObs::new(&batched_metrics);
    let mut batched_out: Vec<f64> = Vec::new();
    let time_batched = |out: &mut Vec<f64>| -> (f64, u64, f64) {
        let alloc_before = alloc_events();
        let start = Instant::now();
        let mut acc = 0.0;
        for (ctx, cands) in &contexts {
            simscores_batch_into(fkb, cands, ctx, KeywordWeighting::Npmi, &batched_obs, out);
            acc = out.iter().fold(acc, |a, &s| a + s);
        }
        std::hint::black_box(acc);
        (start.elapsed().as_secs_f64(), alloc_events() - alloc_before, acc)
    };
    let (_batched_warm_s, batched_warm_allocs, warm_acc) = time_batched(&mut batched_out);
    let (batched_steady_s, batched_steady_allocs, steady_acc) = time_batched(&mut batched_out);
    assert!(
        warm_acc.to_bits() == steady_acc.to_bits(),
        "scratch reuse changed batched scores: {warm_acc} vs {steady_acc}"
    );
    let batched_speedup = if batched_steady_s > 0.0 { indexed_s / batched_steady_s } else { 1.0 };
    let steady_sim_allocs_per_mention = if contexts.is_empty() {
        0.0
    } else {
        batched_steady_allocs as f64 / contexts.len() as f64
    };

    let per = |events: u64, n: usize| if n == 0 { 0.0 } else { events as f64 / n as f64 };
    let alloc_stages = [
        StageAlloc {
            stage: "pipeline_1_thread",
            alloc_events: runs.first().map_or(0, |r| r.alloc_events),
            unit: "doc",
            per_unit: runs.first().map_or(0.0, |r| r.allocs_per_doc),
        },
        StageAlloc {
            stage: "sim_exhaustive",
            alloc_events: exhaustive_allocs,
            unit: "pair",
            per_unit: per(exhaustive_allocs, pair_count),
        },
        StageAlloc {
            stage: "sim_indexed",
            alloc_events: indexed_allocs,
            unit: "pair",
            per_unit: per(indexed_allocs, pair_count),
        },
        StageAlloc {
            stage: "sim_batched_warmup",
            alloc_events: batched_warm_allocs,
            unit: "mention",
            per_unit: per(batched_warm_allocs, contexts.len()),
        },
        StageAlloc {
            stage: "sim_batched_steady",
            alloc_events: batched_steady_allocs,
            unit: "mention",
            per_unit: steady_sim_allocs_per_mention,
        },
    ];

    let mut table = Table::new(
        "Throughput — full AIDA over the CoNLL-like corpus",
        &[
            "threads",
            "seconds",
            "docs/s",
            "mentions/s",
            "speedup",
            "cache hit rate",
            "failed",
            "degraded",
            "allocs/doc",
        ],
    );
    for r in &runs {
        table.add_row(vec![
            r.threads.to_string(),
            num(r.seconds, 3),
            num(r.docs_per_sec, 1),
            num(r.mentions_per_sec, 1),
            num(r.speedup, 2),
            num(r.cache_hit_rate, 3),
            r.failed_docs.to_string(),
            r.degraded_docs.to_string(),
            num(r.allocs_per_doc, 1),
        ]);
    }
    print!("{}", table.render());
    let mut cache_table = Table::new(
        "Relatedness cache — hit rate vs. memory cap (1 thread)",
        &["policy", "cap", "hit rate", "evictions", "rejected", "peak bytes", "live"],
    );
    for r in &cache_rows {
        cache_table.add_row(vec![
            r.policy.to_string(),
            r.cap_bytes.map_or_else(|| "unbounded".to_string(), |c| c.to_string()),
            num(r.hit_rate, 4),
            r.evictions.to_string(),
            r.admit_rejected.to_string(),
            r.peak_bytes.to_string(),
            r.live_entries.to_string(),
        ]);
    }
    print!("{}", cache_table.render());
    println!(
        "keyphrase index: exhaustive {:.3}s vs indexed {:.3}s ({index_speedup:.2}x) vs \
         batched {:.3}s ({batched_speedup:.2}x over indexed); \
         deterministic across thread counts: {deterministic}",
        exhaustive_s, indexed_s, batched_steady_s
    );
    println!(
        "allocations: steady-state batched scoring {batched_steady_allocs} events over {} \
         mentions ({steady_sim_allocs_per_mention:.4}/mention; warmup pass {batched_warm_allocs})",
        contexts.len()
    );
    let measured_ns_per_doc = runs
        .first()
        .map_or(0.0, |r| r.seconds * 1e9 / docs.len().max(1) as f64);
    let pinned_speedup = if measured_ns_per_doc > 0.0 {
        PINNED_BASELINE_1T_NS_PER_DOC / measured_ns_per_doc
    } else {
        1.0
    };
    println!(
        "pinned baseline: 1-thread {measured_ns_per_doc:.0} ns/doc vs \
         {PINNED_BASELINE_1T_NS_PER_DOC:.0} ns/doc at the PR-5 tip ({pinned_speedup:.2}x)"
    );
    println!(
        "metrics: snapshot identical across thread counts: {metrics_deterministic}; \
         metrics-off 1-thread {metrics_off_seconds:.3}s vs on {metrics_on_seconds:.3}s \
         ({metrics_overhead:.2}x)"
    );

    let Some(snapshot) = snapshot else {
        unreachable!("the thread sweep runs at least once")
    };
    let kb_stats = *env.frozen.stats();
    let sim_timings = SimTimings {
        exhaustive_s,
        indexed_s,
        index_speedup,
        batched_s: batched_steady_s,
        batched_speedup,
    };
    let pinned = PinnedBaseline {
        baseline_ns_per_doc: PINNED_BASELINE_1T_NS_PER_DOC,
        measured_ns_per_doc,
        speedup_vs_pinned: pinned_speedup,
    };
    let json = render_json(
        docs.len(),
        mention_count,
        &runs,
        &sim_timings,
        deterministic,
        &kb_stats,
        &snapshot,
        metrics_deterministic,
        metrics_off_seconds,
        metrics_overhead,
        &alloc_stages,
        &pinned,
        &cache_rows,
    );
    let path = "BENCH_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let memory_json = kb_memory_json(&kb_stats);
    let memory_path = "BENCH_kb_memory.json";
    match std::fs::write(memory_path, &memory_json) {
        Ok(()) => println!("wrote {memory_path}"),
        Err(e) => eprintln!("could not write {memory_path}: {e}"),
    }
    let metrics_path = "metrics.json";
    match std::fs::write(metrics_path, snapshot.to_json()) {
        Ok(()) => println!("wrote {metrics_path}"),
        Err(e) => eprintln!("could not write {metrics_path}: {e}"),
    }
}

/// The `FrozenKbStats` section breakdown as a JSON object body (shared by
/// both benchmark reports).
fn kb_stats_json(s: &FrozenKbStats, indent: &str) -> String {
    let mut out = String::new();
    let mut field = |name: &str, value: usize| {
        out.push_str(&format!("{indent}\"{name}\": {value},\n"));
    };
    field("entity_count", s.entity_count);
    field("entity_bytes", s.entity_bytes);
    field("dictionary_surfaces", s.dictionary_surfaces);
    field("dictionary_pairs", s.dictionary_pairs);
    field("dictionary_bytes", s.dictionary_bytes);
    field("link_edges", s.link_edges);
    field("link_bytes", s.link_bytes);
    field("word_count", s.word_count);
    field("phrase_count", s.phrase_count);
    field("keyphrase_entries", s.keyphrase_entries);
    field("keyphrase_bytes", s.keyphrase_bytes);
    field("weight_bytes", s.weight_bytes);
    field("phrase_run_bytes", s.phrase_run_bytes);
    field("transient_index_bytes", s.transient_index_bytes);
    out.push_str(&format!("{indent}\"total_bytes\": {}\n", s.total_bytes));
    out
}

/// Renders `BENCH_kb_memory.json`: the frozen KB's per-section footprint.
fn kb_memory_json(s: &FrozenKbStats) -> String {
    let mut out = String::from("{\n  \"frozen_kb\": {\n");
    out.push_str(&kb_stats_json(s, "    "));
    out.push_str("  }\n}\n");
    out
}

/// The counters of a metrics snapshot as a JSON object body.
fn metrics_counters_json(snapshot: &MetricsSnapshot, indent: &str) -> String {
    let mut out = String::new();
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        let sep = if i + 1 < snapshot.counters.len() { "," } else { "" };
        out.push_str(&format!("{indent}\"{name}\": {value}{sep}\n"));
    }
    out
}

/// Wall-clock figures of the per-pair scoring comparison.
#[derive(Debug, Clone, Copy)]
struct SimTimings {
    exhaustive_s: f64,
    indexed_s: f64,
    index_speedup: f64,
    batched_s: f64,
    batched_speedup: f64,
}

/// The pinned before/after comparison row (see
/// [`PINNED_BASELINE_1T_NS_PER_DOC`]).
#[derive(Debug, Clone, Copy)]
struct PinnedBaseline {
    baseline_ns_per_doc: f64,
    measured_ns_per_doc: f64,
    speedup_vs_pinned: f64,
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    doc_count: usize,
    mention_count: usize,
    runs: &[Run],
    sim: &SimTimings,
    deterministic: bool,
    kb_stats: &FrozenKbStats,
    snapshot: &MetricsSnapshot,
    metrics_deterministic: bool,
    metrics_off_seconds: f64,
    metrics_overhead: f64,
    alloc_stages: &[StageAlloc],
    pinned: &PinnedBaseline,
    cache_rows: &[CacheSweepRow],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"corpus\": \"conll-like\",\n");
    out.push_str(&format!("  \"docs\": {doc_count},\n"));
    out.push_str(&format!("  \"mentions\": {mention_count},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"seconds\": {:.6}, \"docs_per_sec\": {:.3}, \
             \"mentions_per_sec\": {:.3}, \"speedup_vs_1_thread\": {:.3}, \
             \"cache_hit_rate\": {:.4}, \"failed_docs\": {}, \"degraded_docs\": {}, \
             \"alloc_events\": {}, \"allocs_per_doc\": {:.1}}}{}\n",
            r.threads,
            r.seconds,
            r.docs_per_sec,
            r.mentions_per_sec,
            r.speedup,
            r.cache_hit_rate,
            r.failed_docs,
            r.degraded_docs,
            r.alloc_events,
            r.allocs_per_doc,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"pinned_baseline_1_thread\": {{\"baseline_ns_per_doc\": {:.0}, \
         \"measured_ns_per_doc\": {:.0}, \"speedup_vs_pinned\": {:.3}}},\n",
        pinned.baseline_ns_per_doc, pinned.measured_ns_per_doc, pinned.speedup_vs_pinned
    ));
    out.push_str(&format!(
        "  \"keyphrase_index\": {{\"exhaustive_seconds\": {:.6}, \
         \"indexed_seconds\": {:.6}, \"speedup\": {:.3}, \
         \"batched_seconds\": {:.6}, \"batched_speedup_vs_indexed\": {:.3}}},\n",
        sim.exhaustive_s, sim.indexed_s, sim.index_speedup, sim.batched_s, sim.batched_speedup
    ));
    out.push_str("  \"allocations\": {\n    \"stages\": [\n");
    for (i, s) in alloc_stages.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"stage\": \"{}\", \"alloc_events\": {}, \"unit\": \"{}\", \
             \"per_unit\": {:.4}}}{}\n",
            s.stage,
            s.alloc_events,
            s.unit,
            s.per_unit,
            if i + 1 < alloc_stages.len() { "," } else { "" }
        ));
    }
    let steady = alloc_stages
        .iter()
        .find(|s| s.stage == "sim_batched_steady")
        .map_or(0.0, |s| s.per_unit);
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"steady_state_sim_allocs_per_mention\": {steady:.4}\n  }},\n"
    ));
    out.push_str("  \"frozen_kb\": {\n");
    out.push_str(&kb_stats_json(kb_stats, "    "));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"metrics_overhead\": {{\"on_seconds\": {:.6}, \"off_seconds\": \
         {metrics_off_seconds:.6}, \"ratio\": {metrics_overhead:.3}}},\n",
        runs.first().map_or(0.0, |r| r.seconds)
    ));
    out.push_str("  \"metrics\": {\n");
    out.push_str(&metrics_counters_json(snapshot, "    "));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"cache_sweep\": {{\n    \"entry_bytes\": {},\n    \"rows\": [\n",
        ned_relatedness::ENTRY_BYTES
    ));
    for (i, r) in cache_rows.iter().enumerate() {
        let cap = r.cap_bytes.map_or_else(|| "null".to_string(), |c| c.to_string());
        out.push_str(&format!(
            "      {{\"policy\": \"{}\", \"cap_bytes\": {}, \"bounded\": {}, \
             \"lookups\": {}, \"hits\": {}, \"misses\": {}, \"inserts\": {}, \
             \"evictions\": {}, \"admit_rejected\": {}, \"stale_discards\": {}, \
             \"live_entries\": {}, \"bytes\": {}, \"peak_bytes\": {}, \
             \"hit_rate\": {:.6}, \"rerun_deterministic\": {}, \
             \"outcomes_match_unbounded\": {}}}{}\n",
            r.policy,
            cap,
            r.cap_bytes.is_some(),
            r.lookups,
            r.hits,
            r.misses,
            r.inserts,
            r.evictions,
            r.admit_rejected,
            r.stale_discards,
            r.live_entries,
            r.bytes,
            r.peak_bytes,
            r.hit_rate,
            r.rerun_deterministic,
            r.outcomes_match_unbounded,
            if i + 1 < cache_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str(&format!(
        "  \"metrics_deterministic_across_thread_counts\": {metrics_deterministic},\n"
    ));
    out.push_str(&format!("  \"deterministic_across_thread_counts\": {deterministic}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let runs = vec![
            Run {
                threads: 1,
                seconds: 2.0,
                docs_per_sec: 10.0,
                mentions_per_sec: 50.0,
                speedup: 1.0,
                cache_hit_rate: 0.5,
                failed_docs: 2,
                degraded_docs: 1,
                alloc_events: 4000,
                allocs_per_doc: 200.0,
            },
            Run {
                threads: 4,
                seconds: 1.0,
                docs_per_sec: 20.0,
                mentions_per_sec: 100.0,
                speedup: 2.0,
                cache_hit_rate: 0.5,
                failed_docs: 2,
                degraded_docs: 1,
                alloc_events: 4400,
                allocs_per_doc: 220.0,
            },
        ];
        let stats = FrozenKbStats { entity_count: 7, total_bytes: 4096, ..Default::default() };
        let metrics = Metrics::new();
        metrics.counter("aida_docs").add(20);
        metrics.counter("doc_status_ok").add(18);
        let snapshot = metrics.snapshot();
        let sim = SimTimings {
            exhaustive_s: 2.0,
            indexed_s: 1.0,
            index_speedup: 2.0,
            batched_s: 0.5,
            batched_speedup: 2.0,
        };
        let stages = [
            StageAlloc {
                stage: "pipeline_1_thread",
                alloc_events: 4000,
                unit: "doc",
                per_unit: 200.0,
            },
            StageAlloc {
                stage: "sim_batched_steady",
                alloc_events: 0,
                unit: "mention",
                per_unit: 0.0,
            },
        ];
        let pinned = PinnedBaseline {
            baseline_ns_per_doc: 740_320.0,
            measured_ns_per_doc: 500_000.0,
            speedup_vs_pinned: 1.48,
        };
        let cache_rows = vec![
            CacheSweepRow {
                policy: "lru",
                cap_bytes: Some(262_144),
                lookups: 1000,
                hits: 600,
                misses: 400,
                inserts: 380,
                evictions: 300,
                admit_rejected: 20,
                stale_discards: 0,
                live_entries: 80,
                bytes: 7680,
                peak_bytes: 262_080,
                hit_rate: 0.6,
                rerun_deterministic: true,
                outcomes_match_unbounded: true,
            },
            CacheSweepRow {
                policy: "tinylfu_slru",
                cap_bytes: None,
                lookups: 1000,
                hits: 700,
                misses: 300,
                inserts: 300,
                evictions: 0,
                admit_rejected: 0,
                stale_discards: 0,
                live_entries: 300,
                bytes: 28800,
                peak_bytes: 28800,
                hit_rate: 0.7,
                rerun_deterministic: true,
                outcomes_match_unbounded: true,
            },
        ];
        let json = render_json(
            20, 100, &runs, &sim, true, &stats, &snapshot, true, 1.9, 1.05, &stages, &pinned,
            &cache_rows,
        );
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"cache_sweep\""));
        assert!(json.contains("\"entry_bytes\": 96"));
        assert!(json.contains("\"policy\": \"lru\""));
        assert!(json.contains("\"cap_bytes\": 262144"));
        assert!(json.contains("\"cap_bytes\": null, \"bounded\": false"));
        assert!(json.contains("\"rerun_deterministic\": true"));
        assert!(json.contains("\"outcomes_match_unbounded\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"failed_docs\": 2"));
        assert!(json.contains("\"degraded_docs\": 1"));
        assert!(json.contains("\"allocs_per_doc\": 200.0"));
        assert!(json.contains("\"entity_count\": 7"));
        assert!(json.contains("\"phrase_run_bytes\": 0"));
        assert!(json.contains("\"total_bytes\": 4096"));
        assert!(json.contains("\"deterministic_across_thread_counts\": true"));
        assert!(json.contains("\"metrics_deterministic_across_thread_counts\": true"));
        assert!(json.contains("\"aida_docs\": 20"));
        assert!(json.contains("\"doc_status_ok\": 18"));
        assert!(json.contains("\"off_seconds\": 1.900000"));
        assert!(json.contains("\"baseline_ns_per_doc\": 740320"));
        assert!(json.contains("\"batched_seconds\": 0.500000"));
        assert!(json.contains("\"stage\": \"sim_batched_steady\""));
        assert!(json.contains("\"steady_state_sim_allocs_per_mention\": 0.0000"));
        // No trailing comma at the end of the embedded counters object.
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn alloc_events_is_monotone_and_counting() {
        let before = alloc_events();
        let v: Vec<u64> = (0..256).collect();
        std::hint::black_box(&v);
        let after = alloc_events();
        assert!(after > before, "the counting allocator is installed and counting");
    }

    #[test]
    fn kb_memory_json_is_well_formed() {
        let stats = FrozenKbStats {
            entity_count: 3,
            dictionary_pairs: 9,
            total_bytes: 1234,
            ..Default::default()
        };
        let json = kb_memory_json(&stats);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"frozen_kb\""));
        assert!(json.contains("\"dictionary_pairs\": 9"));
        assert!(json.contains("\"total_bytes\": 1234"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n  }"));
    }
}
