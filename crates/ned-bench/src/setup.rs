//! Shared experiment setup: the standard world, corpora, and scale knobs.

use std::sync::Arc;

use ned_kb::FrozenKb;
use ned_wikigen::config::WorldConfig;
use ned_wikigen::corpus::{conll_like, kore50_like, wp_like, Corpus};
use ned_wikigen::news::{generate_stream, NewsConfig, NewsStream};
use ned_wikigen::{ExportedKb, World};

/// Experiment scale. `quick` keeps every experiment under a few seconds;
/// `full` approaches the corpus sizes of the thesis.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Entities per topic in the world.
    pub entities_per_topic: usize,
    /// Documents in the CoNLL-like corpus (the thesis used 1,393).
    pub conll_docs: usize,
    /// Documents in the KORE50-like corpus (the thesis used 50; more gives
    /// tighter estimates).
    pub kore50_docs: usize,
    /// Documents in the WP-like corpus (the thesis used 2,019 sentences).
    pub wp_docs: usize,
    /// Days in the news stream.
    pub news_days: u32,
    /// Documents per news day.
    pub news_docs_per_day: usize,
}

impl Scale {
    /// Fast scale for smoke runs.
    pub fn quick() -> Self {
        Scale {
            entities_per_topic: 150,
            conll_docs: 200,
            kore50_docs: 100,
            wp_docs: 200,
            news_days: 6,
            news_docs_per_day: 20,
        }
    }

    /// Full scale, approaching the thesis' corpus sizes.
    pub fn full() -> Self {
        Scale {
            entities_per_topic: 400,
            conll_docs: 1_400,
            kore50_docs: 300,
            wp_docs: 1_000,
            news_days: 12,
            news_docs_per_day: 40,
        }
    }
}

/// The standard experiment environment.
#[derive(Debug)]
pub struct Env {
    /// The synthetic world (ground truth).
    pub world: World,
    /// Exported knowledge base + id mappings.
    pub exported: ExportedKb,
    /// The same KB frozen into its columnar read-path form, behind an
    /// `Arc` so experiments can share one handle across rayon workers.
    pub frozen: Arc<FrozenKb>,
}

impl Env {
    /// Builds the standard world at the given scale (fixed master seed —
    /// experiments are reproducible run to run).
    pub fn build(scale: &Scale) -> Self {
        let world = World::generate(WorldConfig {
            entities_per_topic: scale.entities_per_topic,
            ..WorldConfig::default()
        });
        let exported = ExportedKb::build(&world);
        let frozen = Arc::new(FrozenKb::freeze(&exported.kb));
        Env { world, exported, frozen }
    }

    /// The CoNLL-YAGO-style corpus.
    pub fn conll(&self, scale: &Scale) -> Corpus {
        conll_like(&self.world, &self.exported, 7, scale.conll_docs)
    }

    /// The KORE50-style corpus.
    pub fn kore50(&self, scale: &Scale) -> Corpus {
        kore50_like(&self.world, &self.exported, 8, scale.kore50_docs)
    }

    /// The WP-style corpus.
    pub fn wp(&self, scale: &Scale) -> Corpus {
        wp_like(&self.world, &self.exported, 9, scale.wp_docs)
    }

    /// The timestamped news stream with emerging entities.
    pub fn news(&self, scale: &Scale) -> NewsStream {
        generate_stream(
            &self.world,
            &self.exported,
            10,
            &NewsConfig {
                n_days: scale.news_days,
                docs_per_day: scale.news_docs_per_day,
                emerging_prob: 0.12,
                burst_days: 3,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_env_builds() {
        let scale = Scale::quick();
        let env = Env::build(&scale);
        assert!(env.exported.kb.entity_count() > 300);
        let corpus = env.conll(&Scale { conll_docs: 10, ..Scale::quick() });
        assert_eq!(corpus.docs.len(), 10);
    }
}
