//! Streaming incremental-KB benchmark: discover → promote → re-annotate.
//!
//! Drives the simulated news stream (Ch. 5 world) through the full
//! incremental-KB loop and writes every round to `BENCH_streaming.json`:
//!
//! 1. **Discover** — each stream day is annotated with NED-EE over the
//!    *currently published* KB epoch; mentions labeled out-of-KB feed the
//!    promotion tracker.
//! 2. **Promote** — surfaces meeting the support + confidence policy are
//!    promoted: their mutation sequences are appended to a real on-disk
//!    WAL and folded into a fresh [`DeltaKb`] overlay, published by an
//!    atomic [`KbHandle`] epoch swap (exactly what a serving deployment
//!    does between requests).
//! 3. **Re-annotate** — a fixed evaluation set (every stream document with
//!    a gold emerging mention) is re-annotated under the new epoch;
//!    *emerging-entity linked accuracy* is the fraction of gold-EE
//!    mentions now resolved to their promoted entity. It starts at 0 (no
//!    emerging entity exists in the KB) and must improve as promotions
//!    land — the headline claim of the incremental KB.
//!
//! The run also asserts the subsystem's integrity contracts in-bench:
//! replaying the WAL reproduces the accumulated mutation list exactly, and
//! compacting the final overlay yields a [`FrozenKb`] whose re-annotation
//! of the evaluation set is bit-identical to the overlay's. The whole
//! benchmark is pure computation over fixed seeds and is executed twice;
//! the two runs must serialize to byte-identical JSON
//! (`virtual_deterministic`). The `streaming_check` binary re-validates
//! the JSON in CI.

use std::sync::Arc;

use ned_aida::{AidaConfig, Disambiguator, NedMethod};
use ned_emerging::confidence::{ConfAssessor, ConfidenceMethod};
use ned_emerging::discover::{EeConfig, EeDiscovery};
use ned_emerging::ee_model::{EeModelConfig, NameModels};
use ned_emerging::policy::{PromotionPolicy, PromotionTracker};
use ned_eval::gold::GoldDoc;
use ned_kb::{DeltaKb, FrozenKb, KbEpoch, KbHandle, KbMutation, KbView, Wal};
use ned_obs::{names, Metrics, MetricsSnapshot};
use ned_relatedness::MilneWitten;

use crate::setup::{Env, Scale};

/// EE gamma for discovery (mid-grid, as in fig5_4).
const GAMMA: f64 = 0.5;

/// Harvest window: name models are built from the last `WINDOW_DAYS` days
/// up to and including the current one.
const WINDOW_DAYS: u32 = 3;

/// One discover→promote→re-annotate round (one stream day).
#[derive(Debug, Clone, PartialEq)]
struct RoundRow {
    day: u32,
    docs: usize,
    gold_ee_mentions: usize,
    discovered_ee: usize,
    promotions: usize,
    promoted_total: usize,
    delta_entities: usize,
    generation: u64,
    eval_linked: usize,
    eval_total: usize,
    ee_linked_accuracy: f64,
}

/// Everything one full benchmark run produces (compared bitwise across the
/// two invocations).
#[derive(Debug, Clone, PartialEq)]
struct RunOutput {
    rows: Vec<RoundRow>,
    wal_replay_consistent: bool,
    compaction_equivalent: bool,
    snapshot: MetricsSnapshot,
}

/// Annotates the evaluation set under `kb` and counts gold-EE mentions
/// resolved to the entity their surface was promoted as.
fn eval_linked<K: KbView + Clone>(
    kb: K,
    eval_docs: &[GoldDoc],
    tracker: &PromotionTracker,
) -> (usize, usize) {
    let aida = Disambiguator::new(kb.clone(), MilneWitten::new(kb.clone()), AidaConfig::sim_only());
    let mut linked = 0;
    let mut total = 0;
    for doc in eval_docs {
        let mentions = doc.bare_mentions();
        let result = aida.disambiguate(&doc.tokens, &mentions);
        for (labeled, assignment) in doc.mentions.iter().zip(&result.assignments) {
            if labeled.label.is_some() {
                continue; // in-KB mention; not part of the EE metric
            }
            total += 1;
            let Some(promoted_name) = tracker.promoted_as(&labeled.mention.surface) else {
                continue;
            };
            if let Some(entity) = assignment.entity {
                if kb.entity(entity).canonical_name == promoted_name {
                    linked += 1;
                }
            }
        }
    }
    (linked, total)
}

/// Disambiguates the evaluation set and returns the flat assignment list
/// (entity + score bits) — the payload compared for compaction
/// equivalence.
fn assignments_fingerprint<K: KbView + Clone>(
    kb: K,
    eval_docs: &[GoldDoc],
) -> Vec<(usize, Option<u32>, u64)> {
    let aida = Disambiguator::new(kb.clone(), MilneWitten::new(kb), AidaConfig::sim_only());
    let mut out = Vec::new();
    for (d, doc) in eval_docs.iter().enumerate() {
        let mentions = doc.bare_mentions();
        let result = aida.disambiguate(&doc.tokens, &mentions);
        for a in &result.assignments {
            out.push((d, a.entity.map(|e| e.0), a.score.to_bits()));
        }
    }
    out
}

/// One full benchmark run over the stream. Pure over its inputs plus the
/// WAL file at `wal_path` (created fresh; caller cleans up).
fn run_once(env: &Env, stream_docs: &[GoldDoc], n_days: u32, wal_path: &std::path::Path) -> RunOutput {
    let _ = std::fs::remove_file(wal_path);
    let metrics = Metrics::new();
    let (mut wal, _replay) = Wal::open_observed(wal_path, &metrics)
        .unwrap_or_else(|e| panic!("fresh WAL opens: {e}"));

    let handle = Arc::new(KbHandle::observed(
        KbEpoch::Frozen(Arc::clone(&env.frozen)),
        &metrics,
    ));
    let policy = PromotionPolicy::default();
    let mut tracker = PromotionTracker::new();
    let mut accumulated: Vec<KbMutation> = Vec::new();

    // Fixed evaluation set: every stream document containing a gold
    // emerging mention.
    let eval_docs: Vec<GoldDoc> =
        stream_docs.iter().filter(|d| d.out_of_kb_count() > 0).cloned().collect();

    let mut rows = Vec::new();
    for day in 0..n_days {
        let day_docs: Vec<&GoldDoc> =
            stream_docs.iter().filter(|d| d.day == day).collect();
        let (_, epoch) = handle.current();

        // --- discover over the current epoch -----------------------------
        let from = day.saturating_sub(WINDOW_DAYS - 1);
        let window: Vec<&GoldDoc> =
            stream_docs.iter().filter(|d| d.day >= from && d.day <= day).collect();
        let models = NameModels::build(&epoch, &window, 2, &EeModelConfig::default());
        let aida =
            Disambiguator::new(&epoch, MilneWitten::new(&epoch), AidaConfig::sim_only());
        let config = EeConfig {
            gamma: GAMMA,
            assessor: ConfAssessor::new(ConfidenceMethod::Normalized),
            ..EeConfig::default()
        };
        let discovery = EeDiscovery::new(&aida, &models, config);
        let mut discovered_ee = 0;
        for doc in &day_docs {
            let mentions = doc.bare_mentions();
            let (labels, _) = discovery.discover(&doc.tokens, &mentions);
            for (mention, label) in mentions.iter().zip(&labels) {
                if label.is_none() {
                    discovered_ee += 1;
                    // Discovery already thresholded by CONF; each EE label
                    // is one fully-confident support observation.
                    tracker.observe_ee(&mention.surface, 1.0);
                }
            }
        }

        // --- promote: WAL append + overlay rebuild + epoch swap ----------
        let promotions = tracker.drain_promotions(&policy, &models, &epoch, &metrics);
        for promotion in &promotions {
            for mutation in &promotion.mutations {
                wal.append(mutation).unwrap_or_else(|e| panic!("WAL append: {e}"));
                accumulated.push(mutation.clone());
            }
        }
        if !promotions.is_empty() {
            let delta = DeltaKb::build_observed(
                Arc::clone(&env.frozen),
                accumulated.clone(),
                &metrics,
            )
            .unwrap_or_else(|e| panic!("promotion mutations apply: {e}"));
            handle.swap(KbEpoch::Delta(Arc::new(delta)));
        }

        // --- re-annotate the fixed evaluation set under the new epoch ----
        let (_, epoch_now) = handle.current();
        let (eval_linked, eval_total) = eval_linked(&epoch_now, &eval_docs, &tracker);
        rows.push(RoundRow {
            day,
            docs: day_docs.len(),
            gold_ee_mentions: day_docs.iter().map(|d| d.out_of_kb_count()).sum(),
            discovered_ee,
            promotions: promotions.len(),
            promoted_total: tracker.promoted_count(),
            delta_entities: epoch_now.delta_entity_count(),
            generation: handle.generation(),
            eval_linked,
            eval_total,
            ee_linked_accuracy: if eval_total == 0 {
                0.0
            } else {
                eval_linked as f64 / eval_total as f64
            },
        });
    }

    // --- integrity: WAL replay reproduces the mutation list -------------
    let bytes = std::fs::read(wal_path).unwrap_or_else(|e| panic!("read WAL back: {e}"));
    let replay =
        ned_kb::wal::replay(&bytes).unwrap_or_else(|e| panic!("clean WAL replays: {e}"));
    let wal_replay_consistent = replay.mutations == accumulated;

    // --- integrity: compaction is observationally equivalent -------------
    let (_, final_epoch) = handle.current();
    let compaction_equivalent = match final_epoch.as_ref() {
        KbEpoch::Frozen(_) => accumulated.is_empty(),
        KbEpoch::Delta(delta) => {
            let compacted: Arc<FrozenKb> = Arc::new(
                delta.compact().unwrap_or_else(|e| panic!("compaction succeeds: {e}")),
            );
            assignments_fingerprint(&final_epoch, &eval_docs)
                == assignments_fingerprint(&compacted, &eval_docs)
        }
    };

    RunOutput { rows, wal_replay_consistent, compaction_equivalent, snapshot: metrics.snapshot() }
}

fn render_json(output: &RunOutput, virtual_deterministic: bool) -> String {
    let mut out = String::from("{\n");
    let accuracy_monotone = output
        .rows
        .windows(2)
        .all(|w| w[1].ee_linked_accuracy >= w[0].ee_linked_accuracy);
    let improved = match (output.rows.first(), output.rows.last()) {
        (Some(first), Some(last)) => last.ee_linked_accuracy > first.ee_linked_accuracy
            || (first.promotions > 0 && last.ee_linked_accuracy > 0.0),
        _ => false,
    };
    out.push_str(&format!("  \"virtual_deterministic\": {virtual_deterministic},\n"));
    out.push_str(&format!("  \"accuracy_monotone\": {accuracy_monotone},\n"));
    out.push_str(&format!("  \"accuracy_improved\": {improved},\n"));
    out.push_str(&format!(
        "  \"wal_replay_consistent\": {},\n",
        output.wal_replay_consistent
    ));
    out.push_str(&format!(
        "  \"compaction_equivalent\": {},\n",
        output.compaction_equivalent
    ));
    out.push_str("  \"rounds\": [\n");
    for (i, r) in output.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"day\": {}, \"docs\": {}, \"gold_ee_mentions\": {}, \"discovered_ee\": {}, \
             \"promotions\": {}, \"promoted_total\": {}, \"delta_entities\": {}, \
             \"generation\": {}, \"eval_linked\": {}, \"eval_total\": {}, \
             \"ee_linked_accuracy\": {:.6}}}{}\n",
            r.day,
            r.docs,
            r.gold_ee_mentions,
            r.discovered_ee,
            r.promotions,
            r.promoted_total,
            r.delta_entities,
            r.generation,
            r.eval_linked,
            r.eval_total,
            r.ee_linked_accuracy,
            if i + 1 < output.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"kb_metrics\": {\n");
    let kb_counters = [
        names::KB_WAL_RECORDS,
        names::KB_WAL_REPLAYS,
        names::KB_EPOCH_SWAPS,
        names::EE_PROMOTED,
    ];
    for name in kb_counters {
        out.push_str(&format!("    \"{name}\": {},\n", output.snapshot.counter(name)));
    }
    out.push_str(&format!(
        "    \"{}\": {}\n",
        names::KB_DELTA_ENTITIES,
        output.snapshot.gauge(names::KB_DELTA_ENTITIES)
    ));
    out.push_str("  }\n}\n");
    out
}

/// Runs the streaming incremental-KB benchmark.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let stream = env.news(scale);
    let tmp = std::env::temp_dir().join("ned-bench-streaming");
    std::fs::create_dir_all(&tmp).unwrap_or_else(|e| panic!("temp dir: {e}"));

    // The benchmark is pure computation over fixed seeds: two runs must
    // agree bitwise (the determinism contract for virtual-time runs).
    let path_a = tmp.join("wal-a.log");
    let path_b = tmp.join("wal-b.log");
    let first = run_once(&env, &stream.docs, stream.n_days, &path_a);
    let second = run_once(&env, &stream.docs, stream.n_days, &path_b);
    let virtual_deterministic = first == second;
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
    assert!(virtual_deterministic, "streaming runs diverged across invocations");
    assert!(first.wal_replay_consistent, "WAL replay must reproduce the mutation list");
    assert!(first.compaction_equivalent, "compaction must be observationally equivalent");

    let mut table = ned_eval::report::Table::new(
        "Streaming — incremental KB over the news stream",
        &[
            "day", "docs", "gold EE", "discovered", "promoted", "total", "delta", "gen",
            "linked", "of", "EE linked acc",
        ],
    );
    for r in &first.rows {
        table.add_row(vec![
            r.day.to_string(),
            r.docs.to_string(),
            r.gold_ee_mentions.to_string(),
            r.discovered_ee.to_string(),
            r.promotions.to_string(),
            r.promoted_total.to_string(),
            r.delta_entities.to_string(),
            r.generation.to_string(),
            r.eval_linked.to_string(),
            r.eval_total.to_string(),
            format!("{:.4}", r.ee_linked_accuracy),
        ]);
    }
    print!("{}", table.render());
    println!("two runs bit-identical: {virtual_deterministic}");

    let json = render_json(&first, virtual_deterministic);
    let path = "BENCH_streaming.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_output() -> RunOutput {
        RunOutput {
            rows: vec![
                RoundRow {
                    day: 0,
                    docs: 10,
                    gold_ee_mentions: 5,
                    discovered_ee: 4,
                    promotions: 0,
                    promoted_total: 0,
                    delta_entities: 0,
                    generation: 0,
                    eval_linked: 0,
                    eval_total: 20,
                    ee_linked_accuracy: 0.0,
                },
                RoundRow {
                    day: 1,
                    docs: 10,
                    gold_ee_mentions: 6,
                    discovered_ee: 5,
                    promotions: 2,
                    promoted_total: 2,
                    delta_entities: 2,
                    generation: 1,
                    eval_linked: 8,
                    eval_total: 20,
                    ee_linked_accuracy: 0.4,
                },
            ],
            wal_replay_consistent: true,
            compaction_equivalent: true,
            snapshot: Metrics::new().snapshot(),
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = render_json(&sample_output(), true);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"virtual_deterministic\": true"));
        assert!(json.contains("\"accuracy_monotone\": true"));
        assert!(json.contains("\"accuracy_improved\": true"));
        assert!(json.contains("\"ee_linked_accuracy\": 0.400000"));
        assert!(json.contains("\"kb_wal_records\": 0"));
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn non_improving_run_is_flagged() {
        let mut output = sample_output();
        output.rows[1].eval_linked = 0;
        output.rows[1].ee_linked_accuracy = 0.0;
        output.rows[1].promotions = 0;
        let json = render_json(&output, true);
        assert!(json.contains("\"accuracy_improved\": false"));
    }

    #[test]
    fn accuracy_regression_breaks_monotone_flag() {
        let mut output = sample_output();
        output.rows.push(RoundRow {
            day: 2,
            ee_linked_accuracy: 0.2,
            eval_linked: 4,
            ..output.rows[1].clone()
        });
        let json = render_json(&output, true);
        assert!(json.contains("\"accuracy_monotone\": false"));
    }
}
