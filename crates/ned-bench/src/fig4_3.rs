//! Figure 4.3: cumulative disambiguation accuracy over gold-entity in-link
//! counts (MW vs the KORE variants) on the KORE50-like corpus.
//!
//! The point of the figure: KORE dominates for link-poor entities, with the
//! gap narrowing as entities gain links.

use ned_aida::{AidaConfig, Disambiguator, NedMethod};
use ned_eval::report::{num, Table};
use ned_kb::EntityId;
use ned_relatedness::{Kore, KoreLsh, MilneWitten, Relatedness, TwoStageConfig};

use crate::runner::{run_method, run_per_doc, DocOutcome, DocStatus, Evaluation};
use crate::setup::{Env, Scale};

/// Per-mention (gold inlink count, correct) pairs of an evaluation.
fn mention_points(env: &Env, eval: &Evaluation) -> Vec<(usize, bool)> {
    let links = env.frozen.links();
    let mut points = Vec::new();
    for d in &eval.docs {
        for (g, p) in d.gold.iter().zip(&d.predicted) {
            if let Some(gold) = g {
                points.push((links.inlink_count(*gold), g == p));
            }
        }
    }
    points
}

/// Cumulative accuracy at `max_links`: accuracy over all mentions whose
/// gold entity has at most that many in-links.
fn cumulative_accuracy(points: &[(usize, bool)], max_links: usize) -> Option<f64> {
    let selected: Vec<bool> =
        points.iter().filter(|&&(l, _)| l <= max_links).map(|&(_, c)| c).collect();
    if selected.is_empty() {
        return None;
    }
    Some(selected.iter().filter(|&&c| c).count() as f64 / selected.len() as f64)
}

/// Runs the figure.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let kb = &env.frozen;
    let corpus = env.kore50(scale);
    let docs = &corpus.docs; // the figure uses the full KORE50 set

    let mw = MilneWitten::new(kb);
    let kore = Kore::new(kb);
    let lsh_g = KoreLsh::new(kb, TwoStageConfig::lsh_g());

    let eval_of = |measure: &(dyn Relatedness + Sync)| {
        let aida = Disambiguator::new(kb, measure, AidaConfig::full());
        run_method(&aida, docs)
    };
    let mw_points = mention_points(&env, &eval_of(&mw));
    let kore_points = mention_points(&env, &eval_of(&kore));
    let lsh_eval = run_per_doc(docs, |doc| {
        let mentions = doc.bare_mentions();
        let mut scope: Vec<EntityId> = mentions
            .iter()
            .flat_map(|m| kb.candidates(&m.surface).iter().map(|c| c.entity))
            .collect();
        scope.sort_unstable();
        scope.dedup();
        let scoped = lsh_g.scoped(&scope);
        let aida = Disambiguator::new(kb, &scoped, AidaConfig::full());
        let result = aida.disambiguate(&doc.tokens, &mentions);
        DocOutcome {
            gold: doc.gold_labels(),
            predicted: result.labels(),
            confidence: vec![0.0; mentions.len()],
            status: DocStatus::from_degradation(result.degradation),
        }
    });
    let lsh_points = mention_points(&env, &lsh_eval);

    let max_inlinks = mw_points.iter().map(|&(l, _)| l).max().unwrap_or(0);
    let cutoffs: Vec<usize> =
        [1usize, 2, 3, 5, 8, 12, 20, 35, 60, 100, 200].into_iter().filter(|&c| c <= max_inlinks.max(1)).collect();

    let mut table = Table::new(
        "Figure 4.3 — cumulative accuracy over gold-entity in-link count (KORE50-like)",
        &["≤ in-links", "#mentions", "MW", "KORE", "KORE-LSH-G"],
    );
    for &cutoff in &cutoffs {
        let n = mw_points.iter().filter(|&&(l, _)| l <= cutoff).count();
        let fmt = |points: &[(usize, bool)]| {
            cumulative_accuracy(points, cutoff).map_or("-".to_string(), |a| num(a, 3))
        };
        table.add_row(vec![
            cutoff.to_string(),
            n.to_string(),
            fmt(&mw_points),
            fmt(&kore_points),
            fmt(&lsh_points),
        ]);
    }
    print!("{}", table.render());
}
