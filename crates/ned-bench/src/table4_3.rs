//! Table 4.3 / Figure 4.2: disambiguation accuracy with each relatedness
//! measure as the AIDA coherence, on the three corpora (CoNLL-like,
//! WP-like, KORE50-like).

use ned_aida::{AidaConfig, Disambiguator, NedMethod};
use ned_eval::gold::GoldDoc;
use ned_eval::report::{pct, Table};
use ned_kb::EntityId;
use ned_relatedness::{
    KeyphraseCosine, KeywordCosine, Kore, KoreLsh, MilneWitten, Relatedness, TwoStageConfig,
};

use crate::runner::{run_per_doc, DocOutcome, DocStatus, Evaluation};
use crate::setup::{Env, Scale};

/// Inlink cutoff for the "link-poor micro accuracy" column (the thesis
/// reports ≤ 500 / ≤ 50 / ≤ 5 at Wikipedia scale).
const LINK_POOR_MAX_INLINKS: usize = 5;

/// Evaluates AIDA with a fixed relatedness measure.
fn eval_fixed<M: Relatedness + Sync>(env: &Env, measure: &M, docs: &[GoldDoc]) -> Evaluation {
    let aida = Disambiguator::new(env.frozen.clone(), measure, wp_safe_config(docs));
    crate::runner::run_method(&aida, docs)
}

/// The WP stress test disables the popularity prior (§4.6.1); detect it by
/// corpus shape is overkill — all three corpora run fine with the standard
/// full configuration, which is what we use.
fn wp_safe_config(_docs: &[GoldDoc]) -> AidaConfig {
    AidaConfig::full()
}

/// Evaluates AIDA with a per-document LSH-scoped KORE measure.
fn eval_lsh(env: &Env, lsh: &KoreLsh, docs: &[GoldDoc]) -> Evaluation {
    let kb = &env.frozen;
    run_per_doc(docs, |doc| {
        let mentions = doc.bare_mentions();
        // The LSH scope: all candidate entities of the document.
        let mut scope: Vec<EntityId> = mentions
            .iter()
            .flat_map(|m| kb.candidates(&m.surface).iter().map(|c| c.entity))
            .collect();
        scope.sort_unstable();
        scope.dedup();
        let scoped = lsh.scoped(&scope);
        let aida = Disambiguator::new(kb, &scoped, AidaConfig::full());
        let result = aida.disambiguate(&doc.tokens, &mentions);
        DocOutcome {
            gold: doc.gold_labels(),
            predicted: result.labels(),
            confidence: result.assignments.iter().map(|a| a.normalized_score()).collect(),
            status: DocStatus::from_degradation(result.degradation),
        }
    })
}

/// Micro accuracy restricted to mentions whose gold entity has at most
/// `max_inlinks` in-links.
fn link_poor_micro(env: &Env, eval: &Evaluation, max_inlinks: usize) -> f64 {
    let links = env.frozen.links();
    let mut correct = 0usize;
    let mut total = 0usize;
    for d in &eval.docs {
        for (g, p) in d.gold.iter().zip(&d.predicted) {
            let Some(gold) = g else { continue };
            if links.inlink_count(*gold) > max_inlinks {
                continue;
            }
            total += 1;
            if g == p {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Runs the three-corpus comparison.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let kb = &env.frozen;
    let kwcs = KeywordCosine::new(kb);
    let kpcs = KeyphraseCosine::new(kb);
    let mw = MilneWitten::new(kb);
    let kore = Kore::new(kb);
    let lsh_g = KoreLsh::new(kb, TwoStageConfig::lsh_g());
    let lsh_f = KoreLsh::new(kb, TwoStageConfig::lsh_f());

    let corpora =
        [("CoNLL", env.conll(scale)), ("WP", env.wp(scale)), ("KORE50", env.kore50(scale))];

    for (cname, corpus) in &corpora {
        let docs = corpus.test();
        let mut table = Table::new(
            format!("Table 4.3 — NED accuracy on {cname}-like test split"),
            &["Measure", "MicA", "MacA", "MicA(link-poor)"],
        );
        let evals: Vec<(&str, Evaluation)> = vec![
            ("KWCS", eval_fixed(&env, &kwcs, docs)),
            ("KPCS", eval_fixed(&env, &kpcs, docs)),
            ("MW", eval_fixed(&env, &mw, docs)),
            ("KORE", eval_fixed(&env, &kore, docs)),
            ("KORE-LSH-G", eval_lsh(&env, &lsh_g, docs)),
            ("KORE-LSH-F", eval_lsh(&env, &lsh_f, docs)),
        ];
        for (name, eval) in &evals {
            table.add_row(vec![
                name.to_string(),
                pct(eval.micro(false)),
                pct(eval.macro_(false)),
                pct(link_poor_micro(&env, eval, LINK_POOR_MAX_INLINKS)),
            ]);
        }
        print!("{}", table.render());
    }
    println!("(link-poor = gold entities with ≤ {LINK_POOR_MAX_INLINKS} in-links)");
}
