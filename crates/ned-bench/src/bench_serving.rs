//! Load benchmark of the overload-robust annotation service (`ned-serve`).
//!
//! Drives the real AIDA pipeline through the serving layer in three modes
//! and writes every offered-load step to `BENCH_serving.json`:
//!
//! - **Open-loop, virtual time** — requests arrive at a fixed rate on the
//!   deterministic discrete-event model ([`ned_serve::run_open_loop`]),
//!   with service cost given by an integer cost model. The sweep covers
//!   0.5×, 1×, 2×, and 4× of nominal capacity; each step runs twice and
//!   must be bit-identical (the determinism contract for virtual-time load
//!   runs). Overload behavior is *asserted*: at ≥ 2× capacity the queue
//!   peak never exceeds its bound, excess arrivals are rejected at
//!   admission, and deadline burn-down shows up as degraded completions.
//! - **Open-loop, real time** — the threaded [`ned_serve::Service`] under
//!   wall-clock arrival pacing (figures are machine-dependent; only the
//!   accounting invariants are asserted).
//! - **Closed-loop** — N concurrent users in submit→wait loops against the
//!   threaded service.
//!
//! Every step row satisfies `offered == accepted + rejected` and
//! `accepted == ok + degraded + failed` exactly (sheds count as a flavor
//! of failed; the `shedded` column is the sub-count). The `serving_check`
//! binary re-validates the JSON in CI.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ned_aida::{AidaConfig, DeadlinePlan, JointConfig};
use ned_obs::{names, Clock, Metrics, MetricsSnapshot};
use ned_relatedness::{CachedRelatedness, MilneWitten};
use ned_serve::{
    run_open_loop, AidaHandler, OpenLoopConfig, ServeObs, ServeRequest, ServeStats, Service,
    ServiceConfig, SimReport, SimStatus,
};

use crate::setup::{Env, Scale};

/// Simulated/threaded worker slots.
const WORKERS: usize = 2;
/// Bounded queue capacity.
const QUEUE_CAPACITY: usize = 32;
/// Per-request deadline (ms); burned-down deadlines drive degradation.
const DEADLINE_MS: u64 = 10;
/// Virtual cost model: base cost of a full-fidelity annotation.
const COST_BASE_NS: u64 = 800_000;
/// Virtual cost model: per-request jitter step (id-dependent).
const COST_JITTER_NS: u64 = 100_000;

/// The deterministic virtual cost model: how long one annotation occupies
/// a worker slot, as a pure function of the request and its deadline plan.
/// Degraded plans are mildly cheaper (no graph, or prior-only), mirroring
/// the real pipeline's shape — mildly, so that a fully degraded service at
/// 2× offered load still cannot keep up and the overload assertions below
/// are not sitting on a marginal equilibrium. Average full-fidelity cost
/// is 1 ms, so nominal capacity is `WORKERS` requests per millisecond.
fn virtual_cost_ns(request: &ServeRequest, plan: &DeadlinePlan) -> u64 {
    let base = COST_BASE_NS + (request.id.0 % 5) * COST_JITTER_NS;
    match plan {
        DeadlinePlan::Full | DeadlinePlan::Budgeted { .. } => base,
        DeadlinePlan::NoCoherence { .. } => base * 7 / 8,
        DeadlinePlan::PriorOnly => base * 3 / 4,
    }
}

/// Nominal mean service cost of the virtual model (for load-step sizing).
const COST_MEAN_NS: u64 = COST_BASE_NS + 2 * COST_JITTER_NS;

/// One offered-load step of any mode.
#[derive(Debug, Clone, PartialEq)]
struct StepRow {
    mode: &'static str,
    load: String,
    offered: u64,
    accepted: u64,
    rejected: u64,
    ok: u64,
    degraded: u64,
    failed: u64,
    shedded: u64,
    queue_depth_peak: u64,
    throughput_rps: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

impl StepRow {
    /// The exact conservation laws every row must satisfy.
    fn check(&self) -> Result<(), String> {
        if self.offered != self.accepted + self.rejected {
            return Err(format!(
                "{} {}: offered ({}) != accepted ({}) + rejected ({})",
                self.mode, self.load, self.offered, self.accepted, self.rejected
            ));
        }
        if self.accepted != self.ok + self.degraded + self.failed {
            return Err(format!(
                "{} {}: accepted ({}) != ok ({}) + degraded ({}) + failed ({})",
                self.mode, self.load, self.accepted, self.ok, self.degraded, self.failed
            ));
        }
        if self.shedded > self.failed {
            return Err(format!(
                "{} {}: shedded ({}) > failed ({})",
                self.mode, self.load, self.shedded, self.failed
            ));
        }
        Ok(())
    }
}

/// Nearest-rank percentile over a sorted slice (integer arithmetic, so the
/// virtual-time rows are deterministic).
fn percentile_ns(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (num * n).div_ceil(den).max(1);
    let idx = (rank - 1).min(n - 1) as usize;
    sorted[idx]
}

fn percentiles(latencies: &mut [u64]) -> (u64, u64, u64, u64) {
    latencies.sort_unstable();
    (
        percentile_ns(latencies, 50, 100),
        percentile_ns(latencies, 95, 100),
        percentile_ns(latencies, 99, 100),
        percentile_ns(latencies, 999, 1000),
    )
}

fn row_from_sim(load: String, report: &SimReport) -> StepRow {
    let ok = report.count(SimStatus::Ok);
    let degraded = report.count(SimStatus::Degraded);
    let shedded = report.count(SimStatus::Shed);
    let failed = shedded + report.count(SimStatus::Failed);
    let mut latencies = report.answered_latencies_ns();
    let (p50, p95, p99, p999) = percentiles(&mut latencies);
    let completed = ok + degraded;
    let throughput_rps = if report.makespan_ns == 0 {
        0.0
    } else {
        completed as f64 * 1e9 / report.makespan_ns as f64
    };
    StepRow {
        mode: "open-virtual",
        load,
        offered: report.offered(),
        accepted: report.accepted(),
        rejected: report.count(SimStatus::Rejected),
        ok,
        degraded,
        failed,
        shedded,
        queue_depth_peak: report.queue_depth_peak,
        throughput_rps,
        p50_ns: p50,
        p95_ns: p95,
        p99_ns: p99,
        p999_ns: p999,
    }
}

fn row_from_stats(
    mode: &'static str,
    load: String,
    stats: &ServeStats,
    mut latencies: Vec<u64>,
    elapsed_s: f64,
) -> StepRow {
    let (p50, p95, p99, p999) = percentiles(&mut latencies);
    let completed = stats.completed_ok + stats.completed_degraded;
    let throughput_rps = if elapsed_s > 0.0 { completed as f64 / elapsed_s } else { 0.0 };
    StepRow {
        mode,
        load,
        offered: stats.offered(),
        accepted: stats.accepted,
        rejected: stats.rejected(),
        ok: stats.completed_ok,
        degraded: stats.completed_degraded,
        failed: stats.failed(),
        shedded: stats.shedded(),
        queue_depth_peak: stats.queue_depth_peak,
        throughput_rps,
        p50_ns: p50,
        p95_ns: p95,
        p99_ns: p99,
        p999_ns: p999,
    }
}

/// Builds the request list: corpus documents cycled, ids sequential, every
/// request carrying the benchmark deadline.
fn build_requests(texts: &[String], n: usize) -> Vec<ServeRequest> {
    (0..n)
        .map(|i| {
            ServeRequest::new(i as u64, texts[i % texts.len()].clone())
                .with_deadline_ms(DEADLINE_MS)
        })
        .collect()
}

/// The benchmark's concrete handler: the real pipeline over the shared
/// frozen KB with a metrics-instrumented relatedness cache.
type BenchHandler =
    AidaHandler<Arc<ned_kb::FrozenKb>, Arc<CachedRelatedness<MilneWitten<Arc<ned_kb::FrozenKb>>>>>;

fn new_handler(env: &Env, metrics: &Metrics, clock: Clock) -> BenchHandler {
    let cached =
        Arc::new(CachedRelatedness::with_metrics(MilneWitten::new(env.frozen.clone()), metrics));
    AidaHandler::try_new(env.frozen.clone(), cached, AidaConfig::full(), JointConfig::default())
        .unwrap_or_else(|e| panic!("full config is valid: {e}"))
        .with_metrics(metrics)
        .with_clock(clock)
}

/// One virtual-time open-loop step. Returns the report and the serving
/// counters, after cross-checking the two against each other.
fn virtual_step(env: &Env, texts: &[String], load_x: f64, n: usize) -> (SimReport, MetricsSnapshot) {
    let interval_ns =
        ((COST_MEAN_NS as f64) / (WORKERS as f64 * load_x)).round().max(1.0) as u64;
    let metrics = Metrics::new();
    let (clock, hand) = Clock::manual();
    let handler = new_handler(env, &metrics, clock);
    let obs = ServeObs::new(&metrics);
    let config = OpenLoopConfig {
        workers: WORKERS,
        queue_capacity: QUEUE_CAPACITY,
        arrival_interval_ns: interval_ns,
        default_deadline_ms: None,
        policy: ned_serve::DeadlinePolicy::default(),
        shed_expired: false,
    };
    let requests = build_requests(texts, n);
    let report = run_open_loop(&handler, &hand, &requests, &config, &virtual_cost_ns, &obs)
        .unwrap_or_else(|e| panic!("valid open-loop config: {e}"));
    report.check_conservation().unwrap_or_else(|e| panic!("sim books balance: {e}"));
    let snapshot = metrics.snapshot();
    // The ned-obs surface must tell the same story as the report.
    assert_eq!(snapshot.counter(names::SERVE_SUBMITTED), report.offered());
    assert_eq!(snapshot.counter(names::SERVE_ACCEPTED), report.accepted());
    assert_eq!(
        snapshot.counter(names::SERVE_REJECTED_QUEUE_FULL),
        report.count(SimStatus::Rejected)
    );
    assert_eq!(snapshot.counter(names::SERVE_COMPLETED_OK), report.count(SimStatus::Ok));
    assert_eq!(
        snapshot.counter(names::SERVE_COMPLETED_DEGRADED),
        report.count(SimStatus::Degraded)
    );
    (report, snapshot)
}

/// One real-time open-loop step: wall-clock arrival pacing against the
/// threaded service.
fn realtime_step(env: &Env, texts: &[String], load_label: &str, interval: Duration, n: usize) -> StepRow {
    let metrics = Metrics::new();
    let handler = new_handler(env, &metrics, Clock::system());
    let service = Service::start(
        handler,
        ServiceConfig {
            workers: WORKERS,
            queue_capacity: QUEUE_CAPACITY,
            default_deadline_ms: None,
            clock: Clock::system(),
            ..ServiceConfig::default()
        },
        &metrics,
    )
    .unwrap_or_else(|e| panic!("service starts: {e}"));
    let requests = build_requests(texts, n);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(n);
    for (i, request) in requests.into_iter().enumerate() {
        let target = interval * i as u32;
        let now = start.elapsed();
        if now < target {
            std::thread::sleep(target - now);
        }
        // Open loop: offer and move on; rejections are the service's answer.
        if let Ok(ticket) = service.submit(request) {
            tickets.push(ticket);
        }
    }
    let latencies: Vec<u64> = tickets
        .into_iter()
        .map(|t| t.wait())
        .filter(|r| r.is_ok())
        .map(|r| r.latency_ns)
        .collect();
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = service.shutdown();
    stats.check_conservation().unwrap_or_else(|e| panic!("service books balance: {e}"));
    row_from_stats("open-realtime", load_label.to_string(), &stats, latencies, elapsed_s)
}

/// One closed-loop step: `users` concurrent submit→wait loops.
fn closed_step(env: &Env, texts: &[String], users: usize, per_user: usize) -> StepRow {
    let metrics = Metrics::new();
    let handler = new_handler(env, &metrics, Clock::system());
    let service = Service::start(
        handler,
        ServiceConfig {
            workers: WORKERS,
            queue_capacity: QUEUE_CAPACITY,
            default_deadline_ms: Some(DEADLINE_MS),
            clock: Clock::system(),
            ..ServiceConfig::default()
        },
        &metrics,
    )
    .unwrap_or_else(|e| panic!("service starts: {e}"));
    let latencies = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for user in 0..users {
            let service = &service;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(per_user);
                for k in 0..per_user {
                    let id = (user * per_user + k) as u64;
                    let text = texts[id as usize % texts.len()].clone();
                    let response = service.submit_wait(ServeRequest::new(id, text));
                    if response.is_ok() {
                        local.push(response.latency_ns);
                    }
                }
                latencies.lock().unwrap_or_else(|e| e.into_inner()).append(&mut local);
            });
        }
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let stats = service.shutdown();
    stats.check_conservation().unwrap_or_else(|e| panic!("service books balance: {e}"));
    let latencies = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    row_from_stats("closed", format!("users={users}"), &stats, latencies, elapsed_s)
}

/// Runs the serving load benchmark.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let corpus = env.conll(scale);
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text()).collect();
    assert!(!texts.is_empty(), "corpus provides request texts");
    let n_virtual = corpus.docs.len().max(100);

    // --- open-loop, virtual time: deterministic sweep, each step twice ---
    let virtual_loads = [0.5f64, 1.0, 2.0, 4.0];
    let mut rows: Vec<StepRow> = Vec::new();
    let mut virtual_deterministic = true;
    let mut overload_snapshot: Option<MetricsSnapshot> = None;
    for &load_x in &virtual_loads {
        let (first, snap_a) = virtual_step(&env, &texts, load_x, n_virtual);
        let (second, snap_b) = virtual_step(&env, &texts, load_x, n_virtual);
        if first != second || snap_a != snap_b {
            virtual_deterministic = false;
        }
        if load_x >= 2.0 {
            // Overload contract: bounded queue, typed rejections, degraded
            // (not dropped) completions.
            assert!(
                first.queue_depth_peak <= QUEUE_CAPACITY as u64,
                "queue exceeded capacity at {load_x}x"
            );
            assert!(
                first.count(SimStatus::Rejected) > 0,
                "sustained {load_x}x overload must shed at admission"
            );
            assert!(
                first.count(SimStatus::Degraded) > 0,
                "burned-down deadlines must degrade at {load_x}x"
            );
        }
        if (load_x - 2.0).abs() < f64::EPSILON {
            overload_snapshot = Some(snap_a);
        }
        rows.push(row_from_sim(format!("{load_x}x"), &first));
    }
    assert!(virtual_deterministic, "virtual-time runs diverged across invocations");

    // --- open-loop, real time -------------------------------------------
    let n_realtime = (n_virtual / 2).max(50);
    let realtime_steps = [
        ("0.5x", Duration::from_micros(1_000)),
        ("2x", Duration::from_micros(250)),
        ("4x", Duration::from_micros(125)),
    ];
    for (label, interval) in realtime_steps {
        rows.push(realtime_step(&env, &texts, label, interval, n_realtime));
    }

    // --- closed-loop -----------------------------------------------------
    let per_user = (n_virtual / 5).max(20);
    for users in [1usize, 2, 4, 8] {
        rows.push(closed_step(&env, &texts, users, per_user));
    }

    for row in &rows {
        row.check().unwrap_or_else(|e| panic!("step row conservation: {e}"));
    }

    // --- report ----------------------------------------------------------
    let mut table = ned_eval::report::Table::new(
        "Serving — offered-load sweep (open + closed loop)",
        &[
            "mode", "load", "offered", "accepted", "rejected", "ok", "degraded", "failed",
            "shed", "q-peak", "rps", "p50 ms", "p95 ms", "p99 ms", "p999 ms",
        ],
    );
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    for r in &rows {
        table.add_row(vec![
            r.mode.to_string(),
            r.load.clone(),
            r.offered.to_string(),
            r.accepted.to_string(),
            r.rejected.to_string(),
            r.ok.to_string(),
            r.degraded.to_string(),
            r.failed.to_string(),
            r.shedded.to_string(),
            r.queue_depth_peak.to_string(),
            format!("{:.1}", r.throughput_rps),
            ms(r.p50_ns),
            ms(r.p95_ns),
            ms(r.p99_ns),
            ms(r.p999_ns),
        ]);
    }
    print!("{}", table.render());
    println!("virtual-time sweep bit-identical across two invocations: {virtual_deterministic}");

    let json = render_json(&rows, virtual_deterministic, overload_snapshot.as_ref());
    let path = "BENCH_serving.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn render_json(
    rows: &[StepRow],
    virtual_deterministic: bool,
    overload_snapshot: Option<&MetricsSnapshot>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"corpus\": \"conll-like\",\n");
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"queue_capacity\": {QUEUE_CAPACITY},\n"));
    out.push_str(&format!("  \"deadline_ms\": {DEADLINE_MS},\n"));
    out.push_str(&format!(
        "  \"virtual_cost_model\": {{\"base_ns\": {COST_BASE_NS}, \"jitter_step_ns\": \
         {COST_JITTER_NS}, \"no_coherence_fraction\": \"7/8\", \"prior_only_fraction\": \
         \"3/4\"}},\n"
    ));
    out.push_str(&format!("  \"virtual_deterministic\": {virtual_deterministic},\n"));
    out.push_str("  \"steps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"load\": \"{}\", \"offered\": {}, \"accepted\": {}, \
             \"rejected\": {}, \"ok\": {}, \"degraded\": {}, \"failed\": {}, \"shedded\": {}, \
             \"queue_depth_peak\": {}, \"throughput_rps\": {:.3}, \"p50_ns\": {}, \
             \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{}\n",
            r.mode,
            r.load,
            r.offered,
            r.accepted,
            r.rejected,
            r.ok,
            r.degraded,
            r.failed,
            r.shedded,
            r.queue_depth_peak,
            r.throughput_rps,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.p999_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"serve_metrics_at_2x\": {\n");
    if let Some(snapshot) = overload_snapshot {
        let serve: Vec<(String, u64)> = snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("serve_"))
            .cloned()
            .collect();
        for (i, (name, value)) in serve.iter().enumerate() {
            let sep = if i + 1 < serve.len() { "," } else { "" };
            out.push_str(&format!("    \"{name}\": {value}{sep}\n"));
        }
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> StepRow {
        StepRow {
            mode: "open-virtual",
            load: "2x".to_string(),
            offered: 100,
            accepted: 80,
            rejected: 20,
            ok: 50,
            degraded: 25,
            failed: 5,
            shedded: 3,
            queue_depth_peak: 32,
            throughput_rps: 1500.0,
            p50_ns: 1_000_000,
            p95_ns: 5_000_000,
            p99_ns: 9_000_000,
            p999_ns: 12_000_000,
        }
    }

    #[test]
    fn row_conservation_checks() {
        sample_row().check().expect("books balance");
        let broken = StepRow { accepted: 81, ..sample_row() };
        assert!(broken.check().is_err());
        let over_shed = StepRow { shedded: 6, ..sample_row() };
        assert!(over_shed.check().is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 50, 100), 50);
        assert_eq!(percentile_ns(&sorted, 95, 100), 95);
        assert_eq!(percentile_ns(&sorted, 99, 100), 99);
        assert_eq!(percentile_ns(&sorted, 999, 1000), 100);
        assert_eq!(percentile_ns(&[], 50, 100), 0);
        assert_eq!(percentile_ns(&[7], 999, 1000), 7);
    }

    #[test]
    fn cost_model_is_deterministic_and_plan_sensitive() {
        let req = ServeRequest::new(3, "doc");
        let full = virtual_cost_ns(&req, &DeadlinePlan::Full);
        assert_eq!(full, virtual_cost_ns(&req, &DeadlinePlan::Full));
        assert_eq!(full, COST_BASE_NS + 3 * COST_JITTER_NS);
        assert!(virtual_cost_ns(&req, &DeadlinePlan::NoCoherence { wall_ms: 1 }) < full);
        assert!(
            virtual_cost_ns(&req, &DeadlinePlan::PriorOnly)
                < virtual_cost_ns(&req, &DeadlinePlan::NoCoherence { wall_ms: 1 })
        );
        // The discount must be mild enough that a fully degraded service at
        // 2x offered load still falls behind (overload persists).
        let prior_rate_per_ms = 1_000_000 * WORKERS as u64 / (COST_MEAN_NS * 3 / 4);
        let offered_2x_per_ms = 2 * WORKERS as u64 * 1_000_000 / COST_MEAN_NS;
        assert!(prior_rate_per_ms < offered_2x_per_ms, "2x overload must persist");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![
            sample_row(),
            StepRow {
                mode: "closed",
                load: "users=4".to_string(),
                offered: 40,
                accepted: 40,
                rejected: 0,
                ok: 40,
                degraded: 0,
                failed: 0,
                shedded: 0,
                queue_depth_peak: 4,
                throughput_rps: 900.0,
                p50_ns: 700_000,
                p95_ns: 2_000_000,
                p99_ns: 2_500_000,
                p999_ns: 3_000_000,
            },
        ];
        let metrics = Metrics::new();
        metrics.counter(names::SERVE_SUBMITTED).add(100);
        metrics.counter(names::SERVE_ACCEPTED).add(80);
        metrics.counter("aida_docs").add(80); // non-serve counter filtered out
        let snapshot = metrics.snapshot();
        let json = render_json(&rows, true, Some(&snapshot));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"mode\": \"open-virtual\""));
        assert!(json.contains("\"load\": \"users=4\""));
        assert!(json.contains("\"virtual_deterministic\": true"));
        assert!(json.contains("\"p999_ns\": 12000000"));
        assert!(json.contains("\"serve_submitted\": 100"));
        assert!(!json.contains("\"aida_docs\""));
        // No trailing comma before a closing brace.
        assert!(!json.contains(",\n  }"));
    }
}
