//! Table 4.2: Spearman correlation of relatedness measures with the
//! (simulated crowdsourced) gold ranking, per domain, overall, and for
//! link-poor seeds.

use ned_eval::report::{num, Table};
use ned_eval::spearman::spearman;
use ned_kb::EntityId;
use ned_relatedness::{
    InlinkJaccard, KeyphraseCosine, KeywordCosine, Kore, KoreLsh, MilneWitten, Relatedness,
    TwoStageConfig,
};
use ned_wikigen::relbench::{generate_gold, RelatednessGold, RelbenchConfig, SeedEntry};

use crate::setup::{Env, Scale};

/// The "link-poor" bucket holds the seeds at or below the median in-link
/// count of all seeds (the thesis used a fixed ≤ 500 at Wikipedia scale;
/// the median adapts to the world's link density).
fn link_poor_threshold(env: &Env, gold: &RelatednessGold) -> usize {
    let mut counts: Vec<usize> = gold
        .seeds
        .iter()
        .filter_map(|e| env.exported.label_of(e.seed))
        .map(|id| env.exported.kb.links().inlink_count(id))
        .collect();
    counts.sort_unstable();
    counts.get(counts.len() / 2).copied().unwrap_or(0)
}

/// Scores one seed entry under a measure and returns the Spearman
/// correlation against the gold ranking.
fn score_seed<M: Relatedness>(env: &Env, measure: &M, entry: &SeedEntry) -> Option<f64> {
    let seed_id = env.exported.label_of(entry.seed)?;
    let scores: Vec<f64> = entry
        .candidates
        .iter()
        .map(|&c| {
            env.exported
                .label_of(c)
                .map_or(0.0, |id| measure.relatedness(seed_id, id))
        })
        .collect();
    Some(spearman(&scores, &entry.gold_scores))
}

/// Scores one seed under an LSH-accelerated measure: the scope is the seed
/// plus its candidates, as it would be inside one disambiguation problem.
fn score_seed_lsh(env: &Env, lsh: &KoreLsh, entry: &SeedEntry) -> Option<f64> {
    let seed_id = env.exported.label_of(entry.seed)?;
    let mut scope: Vec<EntityId> = entry
        .candidates
        .iter()
        .filter_map(|&c| env.exported.label_of(c))
        .collect();
    scope.push(seed_id);
    let scoped = lsh.scoped(&scope);
    let scores: Vec<f64> = entry
        .candidates
        .iter()
        .map(|&c| {
            env.exported
                .label_of(c)
                .map_or(0.0, |id| scoped.relatedness(seed_id, id))
        })
        .collect();
    Some(spearman(&scores, &entry.gold_scores))
}

/// A boxed per-seed scorer.
type SeedScorer<'a> = Box<dyn Fn(&SeedEntry) -> Option<f64> + 'a>;

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Runs the relatedness quality comparison.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let gold: RelatednessGold =
        generate_gold(&env.world, &env.exported, 11, &RelbenchConfig::default());
    eprintln!("gold standard: {} seeds", gold.seeds.len());

    let kb = &env.exported.kb;
    let kwcs = KeywordCosine::new(kb);
    let kpcs = KeyphraseCosine::new(kb);
    let mw = MilneWitten::new(kb);
    let jaccard = InlinkJaccard::new(kb);
    let kore = Kore::new(kb);
    let lsh_g = KoreLsh::new(kb, TwoStageConfig::lsh_g());
    let lsh_f = KoreLsh::new(kb, TwoStageConfig::lsh_f());
    let link_poor_max = link_poor_threshold(&env, &gold);

    let measures: Vec<(&str, SeedScorer<'_>)> = vec![
        ("KWCS", Box::new(|e: &SeedEntry| score_seed(&env, &kwcs, e))),
        ("KPCS", Box::new(|e: &SeedEntry| score_seed(&env, &kpcs, e))),
        ("MW", Box::new(|e: &SeedEntry| score_seed(&env, &mw, e))),
        ("Jaccard", Box::new(|e: &SeedEntry| score_seed(&env, &jaccard, e))),
        ("KORE", Box::new(|e: &SeedEntry| score_seed(&env, &kore, e))),
        ("KORE-LSH-G", Box::new(|e: &SeedEntry| score_seed_lsh(&env, &lsh_g, e))),
        ("KORE-LSH-F", Box::new(|e: &SeedEntry| score_seed_lsh(&env, &lsh_f, e))),
    ];

    let n_domains = env.world.config.n_topics;
    let mut header: Vec<String> = vec!["Measure".into()];
    header.extend((0..n_domains).map(|d| format!("dom{d}")));
    header.push("avg(link-poor)".into());
    header.push("avg(all)".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Table 4.2 — Spearman correlation with the gold relatedness ranking",
        &header_refs,
    );

    for (name, score) in &measures {
        let mut by_domain: Vec<Vec<f64>> = vec![Vec::new(); n_domains];
        let mut link_poor = Vec::new();
        let mut all = Vec::new();
        for entry in &gold.seeds {
            let Some(rho) = score(entry) else { continue };
            by_domain[entry.domain].push(rho);
            all.push(rho);
            let Some(seed_id) = env.exported.label_of(entry.seed) else { continue };
            if kb.links().inlink_count(seed_id) <= link_poor_max {
                link_poor.push(rho);
            }
        }
        let mut row = vec![name.to_string()];
        row.extend(by_domain.iter().map(|v| num(mean(v), 3)));
        row.push(num(mean(&link_poor), 3));
        row.push(num(mean(&all), 3));
        table.add_row(row);
    }
    print!("{}", table.render());
    println!(
        "(link-poor = seed entities with ≤ {link_poor_max} in-links, the seed median; \
         the thesis used ≤ 500 at Wikipedia scale)"
    );
}
