//! Ablations beyond the paper's tables: sensitivity of the design choices
//! DESIGN.md calls out — the robustness thresholds ρ and λ, the graph
//! pre-pruning factor, and the LSH banding configuration.

use ned_aida::{AidaConfig, Disambiguator};
use ned_eval::report::{num, pct, Table};
use ned_relatedness::lsh::Banding;
use ned_relatedness::{KoreLsh, MilneWitten, TwoStageConfig};

use crate::runner::run_method;
use crate::setup::{Env, Scale};

/// Runs all ablations.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let kb = &env.frozen;
    let corpus = env.conll(scale);
    let docs = corpus.test();

    // ρ sweep (§3.5.1): the paper reports accuracy changes within 1% for λ
    // in [0.5, 1.3]; we verify the same flatness.
    let mut rho = Table::new("Ablation — prior threshold ρ", &["rho", "MicA"]);
    for r in [0.5, 0.7, 0.8, 0.9, 0.95, 1.0] {
        let config = AidaConfig { prior_threshold: r, ..AidaConfig::full() };
        let aida = Disambiguator::new(kb, MilneWitten::new(kb), config);
        rho.add_row(vec![num(r, 2), pct(run_method(&aida, docs).micro(false))]);
    }
    print!("{}", rho.render());

    // λ sweep (§3.5.2).
    let mut lambda = Table::new("Ablation — coherence threshold λ", &["lambda", "MicA"]);
    for l in [0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 2.0] {
        let config = AidaConfig { coherence_threshold: l, ..AidaConfig::full() };
        let aida = Disambiguator::new(kb, MilneWitten::new(kb), config);
        lambda.add_row(vec![num(l, 2), pct(run_method(&aida, docs).micro(false))]);
    }
    print!("{}", lambda.render());

    // Graph pre-pruning factor (§3.4.2: 5 × #mentions found best).
    let mut factor = Table::new("Ablation — graph size factor", &["factor", "MicA"]);
    for f in [1usize, 2, 5, 10, 50] {
        let config = AidaConfig { graph_size_factor: f, ..AidaConfig::full() };
        let aida = Disambiguator::new(kb, MilneWitten::new(kb), config);
        factor.add_row(vec![f.to_string(), pct(run_method(&aida, docs).micro(false))]);
    }
    print!("{}", factor.render());

    // LSH banding sweep: surviving pair fraction over band/row settings.
    let sample: Vec<_> = kb.entity_ids().take(300).collect();
    let all_pairs = sample.len() * (sample.len() - 1) / 2;
    let mut lsh = Table::new(
        "Ablation — LSH banding (surviving pair fraction over a 300-entity scope)",
        &["bands", "rows", "surviving", "fraction"],
    );
    for (bands, rows) in [(50, 1), (200, 1), (500, 2), (1000, 2), (500, 3)] {
        let config = TwoStageConfig {
            entity_banding: Banding { bands, rows },
            ..TwoStageConfig::lsh_g()
        };
        let accel = KoreLsh::new(kb, config);
        let surviving = accel.scoped(&sample).surviving_pairs();
        lsh.add_row(vec![
            bands.to_string(),
            rows.to_string(),
            surviving.to_string(),
            num(surviving as f64 / all_pairs as f64, 4),
        ]);
    }
    print!("{}", lsh.render());
}
