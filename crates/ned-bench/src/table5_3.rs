//! Tables 5.3 and 5.4: emerging-entity discovery quality on the news
//! stream — explicit EE modeling (EEsim / EEcoh) against the
//! score-thresholding baselines, plus NED-EE as a preprocessing stage.

use ned_aida::baselines::LocalLinker;
use ned_aida::{AidaConfig, Disambiguator, NedMethod};
use ned_eval::ee_measures::ee_averages;
use ned_eval::gold::{GoldDoc, Label};
use ned_eval::report::{pct, Table};
use ned_emerging::confidence::{ConfAssessor, ConfidenceMethod};
use ned_emerging::discover::{EeConfig, EeDiscovery, ThresholdEe};
use ned_emerging::ee_model::{EeModelConfig, NameModels};
use ned_relatedness::MilneWitten;

use crate::runner::{run_per_doc, DocOutcome, Evaluation};
use crate::setup::{Env, Scale};

/// Days of news preceding the evaluation day used to harvest EE models.
pub const HARVEST_DAYS: u32 = 2;

/// A labeling strategy for the EE experiments.
pub type Labeler<'a> = Box<dyn Fn(&GoldDoc) -> Vec<Label> + Sync + 'a>;

/// Drops mentions whose surface has no dictionary candidates — they are
/// trivially out-of-KB and §5.7.2 removes them from the evaluation ("as
/// they can be resolved trivially").
pub fn drop_trivial_mentions<K: ned_kb::KbView + ?Sized>(
    kb: &K,
    docs: &[GoldDoc],
) -> Vec<GoldDoc> {
    docs.iter()
        .map(|d| {
            let mentions = d
                .mentions
                .iter()
                .filter(|lm| !kb.candidates(&lm.mention.surface).is_empty())
                .cloned()
                .collect();
            GoldDoc::new(d.id.clone(), d.tokens.clone(), mentions, d.day)
        })
        .collect()
}

/// Builds EE name models from the days `[eval_day − days, eval_day)`.
pub fn build_models(env: &Env, stream: &[GoldDoc], eval_day: u32, days: u32) -> NameModels {
    build_models_against(&env.frozen, stream, eval_day, days)
}

/// Builds EE name models against an explicit (possibly enriched) KB.
pub fn build_models_against<K: ned_kb::KbView + ?Sized>(
    kb: &K,
    stream: &[GoldDoc],
    eval_day: u32,
    days: u32,
) -> NameModels {
    let from = eval_day.saturating_sub(days);
    let window: Vec<&GoldDoc> =
        stream.iter().filter(|d| d.day >= from && d.day < eval_day).collect();
    NameModels::build(kb, &window, 2, &EeModelConfig::default())
}

/// Evaluates a labeler over the documents of one day.
pub fn eval_day(docs: &[GoldDoc], labeler: &Labeler<'_>) -> Evaluation {
    run_per_doc(docs, |doc| {
        DocOutcome::ok(doc.gold_labels(), labeler(doc), vec![0.0; doc.mentions.len()])
    })
}

/// Tunes a scalar parameter by EE F1 on a validation day.
fn tune<'a>(
    docs: &[GoldDoc],
    grid: &[f64],
    make: impl Fn(f64) -> Labeler<'a>,
) -> f64 {
    let mut best = grid[0];
    let mut best_f1 = -1.0;
    for &v in grid {
        let labeler = make(v);
        let eval = eval_day(docs, &labeler);
        let pairs: Vec<(&[Label], &[Label])> = eval
            .docs
            .iter()
            .map(|d| (d.gold.as_slice(), d.predicted.as_slice()))
            .collect();
        let f1 = ee_averages(pairs.iter().copied()).f1;
        if f1 > best_f1 {
            best_f1 = f1;
            best = v;
        }
    }
    best
}

/// Runs Tables 5.3 and 5.4.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let kb = &env.frozen;
    let stream = env.news(scale);
    let eval_day_idx = stream.n_days - 1;
    let validation_day = stream.n_days - 2;
    let test_docs: Vec<GoldDoc> =
        drop_trivial_mentions(kb, &stream.day(eval_day_idx).cloned().collect::<Vec<_>>());
    let val_docs: Vec<GoldDoc> =
        drop_trivial_mentions(kb, &stream.day(validation_day).cloned().collect::<Vec<_>>());
    let ee_gold: usize = test_docs.iter().map(|d| d.out_of_kb_count()).sum();
    eprintln!(
        "news stream: {} days × {} docs; eval day {} with {} docs, {} EE mentions",
        stream.n_days,
        scale.news_docs_per_day,
        eval_day_idx,
        test_docs.len(),
        ee_gold
    );

    let aida_sim = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::sim_only());
    let aida_coh = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());
    let linker = LocalLinker::new(kb);
    let conf_assessor = ConfAssessor::new(ConfidenceMethod::Conf);
    let norm_assessor = ConfAssessor::new(ConfidenceMethod::Normalized);

    // §5.7.2: the EE methods include *harvested keyphrases for existing
    // entities* — enrich the KB from each target day's harvest window, then
    // build the EE models against the enriched KB (which subtracts more).
    let enrich_for = |target_day: u32| -> ned_kb::KnowledgeBase {
        let window: Vec<&GoldDoc> = stream
            .docs
            .iter()
            .filter(|d| d.day + HARVEST_DAYS >= target_day && d.day < target_day)
            .collect();
        let base = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::r_prior_sim());
        let report = ned_emerging::enrich::harvest_confident(
            &base,
            &ConfAssessor::new(ConfidenceMethod::Normalized),
            &window,
            0.95,
        );
        eprintln!(
            "in-KB enrichment for day {target_day}: {} confident mentions, {} phrases",
            report.confident_mentions,
            report.phrase_observations()
        );
        ned_emerging::enrich::enrich_kb(kb, &report)
    };
    let enriched_val = enrich_for(validation_day);
    let enriched_test = enrich_for(eval_day_idx);
    let ee_sim_val = Disambiguator::new(
        &enriched_val,
        MilneWitten::new(&enriched_val),
        AidaConfig::sim_only(),
    );
    let ee_sim_base = Disambiguator::new(
        &enriched_test,
        MilneWitten::new(&enriched_test),
        AidaConfig::sim_only(),
    );

    let models_val =
        build_models_against(&enriched_val, &stream.docs, validation_day, HARVEST_DAYS);
    let models_test =
        build_models_against(&enriched_test, &stream.docs, eval_day_idx, HARVEST_DAYS);
    eprintln!(
        "EE models: {} names (validation), {} names (test)",
        models_val.len(),
        models_test.len()
    );

    // --- Thresholding baselines, tuned on the validation day. ---
    fn threshold_labeler<'a, K, R>(
        aida: &'a Disambiguator<K, R>,
        assessor: ConfAssessor,
        t: f64,
    ) -> Labeler<'a>
    where
        K: ned_kb::KbView + 'a,
        R: ned_relatedness::Relatedness + 'a,
    {
        Box::new(move |doc: &GoldDoc| {
            let mentions = doc.bare_mentions();
            let features = aida.features(&doc.tokens, &mentions);
            let result = aida.disambiguate_features(&features);
            let conf = assessor.assess(aida, &features, &result);
            ThresholdEe::new(t).apply(&result, &conf)
        })
    }
    fn iw_labeler<'a, K: ned_kb::KbView + 'a>(linker: &'a LocalLinker<K>, t: f64) -> Labeler<'a> {
        Box::new(move |doc: &GoldDoc| {
            let mentions = doc.bare_mentions();
            let result = linker.disambiguate(&doc.tokens, &mentions);
            let conf: Vec<f64> =
                result.assignments.iter().map(|a| a.normalized_score()).collect();
            ThresholdEe::new(t).apply(&result, &conf)
        })
    }
    fn ee_labeler<'a, K, R>(
        aida: &'a Disambiguator<K, R>,
        models: &'a NameModels,
        gamma: f64,
        coherence: bool,
    ) -> Labeler<'a>
    where
        K: ned_kb::KbView + 'a,
        R: ned_relatedness::Relatedness + 'a,
    {
        Box::new(move |doc: &GoldDoc| {
            let config = EeConfig {
                gamma,
                use_coherence: coherence,
                assessor: ConfAssessor::new(ConfidenceMethod::Normalized),
                ..EeConfig::default()
            };
            let discovery = EeDiscovery::new(aida, models, config);
            discovery.discover(&doc.tokens, &doc.bare_mentions()).0
        })
    }

    let grid = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let t_sim =
        tune(&val_docs, &grid, |t| threshold_labeler(&aida_sim, norm_assessor.clone(), t));
    let t_coh =
        tune(&val_docs, &grid, |t| threshold_labeler(&aida_coh, conf_assessor.clone(), t));
    let t_iw = tune(&val_docs, &grid, |t| iw_labeler(&linker, t));
    eprintln!("tuned thresholds: AIDAsim {t_sim}, AIDAcoh {t_coh}, IW {t_iw}");

    // --- Explicit EE modeling, γ tuned on the validation day. ---
    let gamma_grid = [0.1, 0.25, 0.5, 1.0, 2.0];
    // Plain-KB EE models (the primary configuration) and the enriched
    // variant (§5.7.2 adds harvested keyphrases for existing entities; on
    // the synthetic stream the enrichment window overlaps the EE bursts and
    // contaminates the in-KB models, so it is reported as a variant row).
    let models_val_plain = build_models(&env, &stream.docs, validation_day, HARVEST_DAYS);
    let models_test_plain = build_models(&env, &stream.docs, eval_day_idx, HARVEST_DAYS);
    let g_sim =
        tune(&val_docs, &gamma_grid, |g| ee_labeler(&aida_sim, &models_val_plain, g, false));
    let g_coh =
        tune(&val_docs, &gamma_grid, |g| ee_labeler(&aida_coh, &models_val_plain, g, true));
    let g_sim_enriched =
        tune(&val_docs, &gamma_grid, |g| ee_labeler(&ee_sim_val, &models_val, g, false));
    eprintln!("tuned gamma: EEsim {g_sim}, EEcoh {g_coh}, EEsim+enrich {g_sim_enriched}");

    let methods: Vec<(&str, Labeler<'_>)> = vec![
        ("AIDAsim(thr)", threshold_labeler(&aida_sim, norm_assessor.clone(), t_sim)),
        ("AIDAcoh(thr)", threshold_labeler(&aida_coh, conf_assessor.clone(), t_coh)),
        ("IW(thr)", iw_labeler(&linker, t_iw)),
        ("EEsim", ee_labeler(&aida_sim, &models_test_plain, g_sim, false)),
        ("EEcoh", ee_labeler(&aida_coh, &models_test_plain, g_coh, true)),
        (
            "EEsim(+enrich)",
            ee_labeler(&ee_sim_base, &models_test, g_sim_enriched, false),
        ),
    ];

    let mut table = Table::new(
        "Table 5.3 — emerging-entity discovery on the news test day",
        &["Method", "MicA", "MacA", "EE Prec", "EE Rec", "EE F1"],
    );
    let mut labels_by_method: Vec<(&str, Evaluation)> = Vec::new();
    for (name, labeler) in &methods {
        let eval = eval_day(&test_docs, labeler);
        let pairs: Vec<(&[Label], &[Label])> = eval
            .docs
            .iter()
            .map(|d| (d.gold.as_slice(), d.predicted.as_slice()))
            .collect();
        let ee = ee_averages(pairs.iter().copied());
        table.add_row(vec![
            name.to_string(),
            pct(eval.micro(true)),
            pct(eval.macro_(true)),
            pct(ee.precision),
            pct(ee.recall),
            pct(ee.f1),
        ]);
        labels_by_method.push((name, eval));
    }
    print!("{}", table.render());

    // --- Table 5.4: EE stage as preprocessing for a full NED run. ---
    let mut table54 = Table::new(
        "Table 5.4 — NED-EE: EE stage as preprocessing + full AIDA",
        &["Method", "MicA", "MacA", "EE Prec"],
    );
    for (name, pre) in &labels_by_method {
        let eval = run_per_doc(&test_docs, |doc| {
            // Find this document's preprocessed labels.
            let Some(idx) = test_docs.iter().position(|d| d.id == doc.id) else {
                return DocOutcome::failed(
                    doc.gold_labels(),
                    format!("document {} missing from the test set", doc.id),
                );
            };
            let pre_labels = &pre.docs[idx].predicted;
            let mentions = doc.bare_mentions();
            let result = aida_coh.disambiguate(&doc.tokens, &mentions);
            let predicted: Vec<Label> = result
                .labels()
                .into_iter()
                .zip(pre_labels)
                .map(|(ned, &pre)| if pre.is_none() { None } else { ned })
                .collect();
            DocOutcome::ok(doc.gold_labels(), predicted, vec![0.0; doc.mentions.len()])
        });
        let pairs: Vec<(&[Label], &[Label])> = eval
            .docs
            .iter()
            .map(|d| (d.gold.as_slice(), d.predicted.as_slice()))
            .collect();
        let ee = ee_averages(pairs.iter().copied());
        table54.add_row(vec![
            format!("AIDA-EE[{name}]"),
            pct(eval.micro(true)),
            pct(eval.macro_(true)),
            pct(ee.precision),
        ]);
    }
    print!("{}", table54.render());
}
