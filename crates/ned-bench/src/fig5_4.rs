//! Figure 5.4: EE discovery precision/recall over the number of days used
//! to harvest the placeholder models, with and without keyphrase
//! enrichment of the existing entities (§5.7.2).

use ned_aida::{AidaConfig, Disambiguator};
use ned_eval::ee_measures::ee_averages;
use ned_eval::gold::{GoldDoc, Label};
use ned_eval::report::{num, Table};
use ned_emerging::confidence::{ConfAssessor, ConfidenceMethod};
use ned_emerging::discover::{EeConfig, EeDiscovery};
use ned_emerging::ee_model::{EeModelConfig, NameModels};
use ned_emerging::enrich::{enrich_kb, harvest_confident};
use ned_kb::KbView;
use ned_relatedness::MilneWitten;

use crate::runner::{run_per_doc, DocOutcome};
use crate::setup::{Env, Scale};

/// EE gamma for the sweep (a mid-grid value; the day count is the variable
/// under study).
const GAMMA: f64 = 0.5;

fn ee_metrics<K: KbView + ?Sized>(
    kb: &K,
    models: &NameModels,
    test_docs: &[GoldDoc],
) -> (f64, f64) {
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::sim_only());
    let eval = run_per_doc(test_docs, |doc| {
        let config = EeConfig {
            gamma: GAMMA,
            assessor: ConfAssessor::new(ConfidenceMethod::Normalized),
            ..EeConfig::default()
        };
        let discovery = EeDiscovery::new(&aida, models, config);
        let (labels, _) = discovery.discover(&doc.tokens, &doc.bare_mentions());
        DocOutcome::ok(doc.gold_labels(), labels, vec![0.0; doc.mentions.len()])
    });
    let pairs: Vec<(&[Label], &[Label])> =
        eval.docs.iter().map(|d| (d.gold.as_slice(), d.predicted.as_slice())).collect();
    let ee = ee_averages(pairs.iter().copied());
    (ee.precision, ee.recall)
}

/// Runs the day sweep.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let stream = env.news(scale);
    let eval_day = stream.n_days - 1;
    let test_docs: Vec<GoldDoc> = crate::table5_3::drop_trivial_mentions(
        &env.frozen,
        &stream.day(eval_day).cloned().collect::<Vec<_>>(),
    );
    let max_days = eval_day.min(6);

    let mut table = Table::new(
        "Figure 5.4 — EE discovery over harvest-window size (days)",
        &["days", "EE Prec", "EE Rec", "EE Prec (enriched)", "EE Rec (enriched)"],
    );

    for days in 1..=max_days {
        let from = eval_day - days;
        let window: Vec<&GoldDoc> =
            stream.docs.iter().filter(|d| d.day >= from && d.day < eval_day).collect();

        // Plain: models against the original KB.
        let models =
            NameModels::build(&env.frozen, &window, 2, &EeModelConfig::default());
        let (p, r) = ee_metrics(&env.frozen, &models, &test_docs);

        // Enriched: first harvest high-confidence keyphrases for existing
        // entities from the same window, rebuild the KB, then build models
        // against the enriched KB (which subtracts more, keeping the EE
        // models crisp and the existing entities competitive).
        let aida = Disambiguator::new(
            env.frozen.clone(),
            MilneWitten::new(env.frozen.clone()),
            AidaConfig::r_prior_sim(),
        );
        let assessor = ConfAssessor::new(ConfidenceMethod::Normalized);
        let report = harvest_confident(&aida, &assessor, &window, 0.95);
        let enriched = enrich_kb(&env.frozen, &report);
        let models_e = NameModels::build(&enriched, &window, 2, &EeModelConfig::default());
        let (pe, re) = ee_metrics(&enriched, &models_e, &test_docs);

        table.add_row(vec![
            days.to_string(),
            num(p, 4),
            num(r, 4),
            num(pe, 4),
            num(re, 4),
        ]);
    }
    print!("{}", table.render());
}
