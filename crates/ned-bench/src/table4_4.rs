//! Table 4.4 / Figures 4.4–4.5: efficiency of the relatedness measures —
//! comparisons performed and wall-clock time per document over the
//! CoNLL-like corpus.
//!
//! For each document, the candidate entity set is assembled and the
//! coherence pairs (§4.6.4) are computed with each measure: MW and exact
//! KORE compute all pairs; the LSH variants compute only the pairs that
//! survive two-stage pruning (plus the cost of the pruning itself).

use std::time::Instant;

use ned_eval::report::{num, Table};
use ned_kb::EntityId;
use ned_relatedness::pair_selection::coherence_pairs;
use ned_relatedness::{Kore, KoreLsh, MilneWitten, Relatedness, TwoStageConfig};

use crate::setup::{Env, Scale};

/// Per-document measurement.
#[derive(Debug, Clone, Copy)]
struct DocCost {
    comparisons: usize,
    seconds: f64,
    entities: usize,
}

#[derive(Debug, Clone, Copy)]
struct Summary {
    mean_cmp: f64,
    std_cmp: f64,
    q90_cmp: f64,
    mean_s: f64,
    std_s: f64,
    q90_s: f64,
}

fn summarize(costs: &[DocCost]) -> Summary {
    let cmp: Vec<f64> = costs.iter().map(|c| c.comparisons as f64).collect();
    let secs: Vec<f64> = costs.iter().map(|c| c.seconds).collect();
    let stats = |v: &[f64]| -> (f64, f64, f64) {
        let n = v.len().max(1) as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q90 = if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() as f64 * 0.9) as usize).min(sorted.len() - 1)]
        };
        (mean, var.sqrt(), q90)
    };
    let (mean_cmp, std_cmp, q90_cmp) = stats(&cmp);
    let (mean_s, std_s, q90_s) = stats(&secs);
    Summary { mean_cmp, std_cmp, q90_cmp, mean_s, std_s, q90_s }
}

/// Runs the timing experiment.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let kb = &env.exported.kb;
    let corpus = env.conll(scale);
    let docs = &corpus.docs;

    // Candidate entity lists per document.
    let doc_candidates: Vec<Vec<Vec<EntityId>>> = docs
        .iter()
        .map(|d| {
            d.mentions
                .iter()
                .map(|m| {
                    kb.candidates(&m.mention.surface).iter().map(|c| c.entity).collect()
                })
                .collect()
        })
        .collect();

    let mw = MilneWitten::new(kb);
    let kore = Kore::new(kb);
    let lsh_g = KoreLsh::new(kb, TwoStageConfig::lsh_g());
    let lsh_f = KoreLsh::new(kb, TwoStageConfig::lsh_f());

    let exact_cost = |measure: &dyn Relatedness| -> Vec<DocCost> {
        doc_candidates
            .iter()
            .map(|cands| {
                let pairs = coherence_pairs(cands);
                let entities: usize =
                    cands.iter().flatten().collect::<std::collections::HashSet<_>>().len();
                let start = Instant::now();
                let mut acc = 0.0;
                for &(a, b) in &pairs {
                    acc += measure.relatedness(a, b);
                }
                std::hint::black_box(acc);
                DocCost {
                    comparisons: pairs.len(),
                    seconds: start.elapsed().as_secs_f64(),
                    entities,
                }
            })
            .collect()
    };

    let lsh_cost = |lsh: &KoreLsh| -> Vec<DocCost> {
        doc_candidates
            .iter()
            .map(|cands| {
                let pairs = coherence_pairs(cands);
                let mut scope: Vec<EntityId> = cands.iter().flatten().copied().collect();
                scope.sort_unstable();
                scope.dedup();
                let start = Instant::now();
                let scoped = lsh.scoped(&scope);
                let mut acc = 0.0;
                let mut computed = 0usize;
                for &(a, b) in &pairs {
                    if scoped.is_candidate(a, b) {
                        acc += scoped.relatedness(a, b);
                        computed += 1;
                    }
                }
                std::hint::black_box(acc);
                DocCost {
                    comparisons: computed,
                    seconds: start.elapsed().as_secs_f64(),
                    entities: scope.len(),
                }
            })
            .collect()
    };

    let results: Vec<(&str, Vec<DocCost>)> = vec![
        ("MW", exact_cost(&mw)),
        ("KORE", exact_cost(&kore)),
        ("KORE-LSH-G", lsh_cost(&lsh_g)),
        ("KORE-LSH-F", lsh_cost(&lsh_f)),
    ];

    let mut table = Table::new(
        "Table 4.4 — relatedness computations per document",
        &["Method", "cmp mean", "cmp stddev", "cmp q90", "ms mean", "ms stddev", "ms q90"],
    );
    for (name, costs) in &results {
        let s = summarize(costs);
        table.add_row(vec![
            name.to_string(),
            num(s.mean_cmp, 0),
            num(s.std_cmp, 0),
            num(s.q90_cmp, 0),
            num(s.mean_s * 1e3, 3),
            num(s.std_s * 1e3, 3),
            num(s.q90_s * 1e3, 3),
        ]);
    }
    print!("{}", table.render());

    // Figures 4.4/4.5: time and comparison series over documents sorted by
    // candidate-entity count, reported as decile means.
    let mut order: Vec<usize> = (0..docs.len()).collect();
    order.sort_by_key(|&i| results[0].1[i].entities);
    let deciles = 10usize;
    let mut fig = Table::new(
        "Figures 4.4/4.5 — per-decile means over documents sorted by candidate count",
        &["decile", "entities", "MW ms", "KORE ms", "LSH-G ms", "LSH-F ms", "MW cmp", "LSH-F cmp"],
    );
    for d in 0..deciles {
        let from = d * order.len() / deciles;
        let to = ((d + 1) * order.len() / deciles).max(from + 1).min(order.len());
        if from >= to {
            continue;
        }
        let slice = &order[from..to];
        let mean_of = |costs: &[DocCost], f: &dyn Fn(&DocCost) -> f64| -> f64 {
            slice.iter().map(|&i| f(&costs[i])).sum::<f64>() / slice.len() as f64
        };
        fig.add_row(vec![
            format!("{}", d + 1),
            num(mean_of(&results[0].1, &|c| c.entities as f64), 0),
            num(mean_of(&results[0].1, &|c| c.seconds * 1e3), 3),
            num(mean_of(&results[1].1, &|c| c.seconds * 1e3), 3),
            num(mean_of(&results[2].1, &|c| c.seconds * 1e3), 3),
            num(mean_of(&results[3].1, &|c| c.seconds * 1e3), 3),
            num(mean_of(&results[0].1, &|c| c.comparisons as f64), 0),
            num(mean_of(&results[3].1, &|c| c.comparisons as f64), 0),
        ]);
    }
    print!("{}", fig.render());

    // The LSH pruning amortizes its hashtable construction only on large
    // candidate spaces with rich keyphrase profiles (the thesis averages
    // ~900k comparisons per document over entities carrying hundreds of
    // keyphrases; the CoNLL-like documents above have a few hundred pairs
    // over lightweight entities). This section reproduces the "need for
    // speed" regime of §4.4.1: a phrase-heavy world and growing entity
    // scopes.
    let heavy_world = ned_wikigen::World::generate(ned_wikigen::config::WorldConfig {
        entities_per_topic: 350,
        base_phrases: 60,
        max_extra_phrases: 240,
        topic_vocab: 500,
        ..ned_wikigen::config::WorldConfig::default()
    });
    let heavy = ned_wikigen::ExportedKb::build(&heavy_world);
    let kb = &heavy.kb;
    let kore = Kore::new(kb);
    let lsh_g = KoreLsh::new(kb, TwoStageConfig::lsh_g());
    let lsh_f = KoreLsh::new(kb, TwoStageConfig::lsh_f());
    let mut scaling = Table::new(
        "§4.4.1 scaling — all-pairs relatedness over growing entity scopes (phrase-heavy world)",
        &["entities", "pairs", "KORE ms", "LSH-G ms", "LSH-G cmp", "LSH-F ms", "LSH-F cmp"],
    );
    let n = kb.entity_count();
    for scope_size in [200usize, 500, 1000, 2000] {
        if scope_size > n {
            break;
        }
        let scope: Vec<EntityId> = kb.entity_ids().take(scope_size).collect();
        let pairs = scope.len() * (scope.len() - 1) / 2;
        // Exact KORE, all pairs.
        let start = Instant::now();
        let mut acc = 0.0;
        for (i, &a) in scope.iter().enumerate() {
            for &b in &scope[i + 1..] {
                acc += kore.relatedness(a, b);
            }
        }
        std::hint::black_box(acc);
        let exact_ms = start.elapsed().as_secs_f64() * 1e3;
        // LSH variants: build + exact only on surviving pairs.
        let timed = |lsh: &KoreLsh| -> (f64, usize) {
            let start = Instant::now();
            let scoped = lsh.scoped(&scope);
            let mut acc = 0.0;
            for (i, &a) in scope.iter().enumerate() {
                for &b in &scope[i + 1..] {
                    if scoped.is_candidate(a, b) {
                        acc += scoped.relatedness(a, b);
                    }
                }
            }
            std::hint::black_box(acc);
            (start.elapsed().as_secs_f64() * 1e3, scoped.surviving_pairs())
        };
        let (g_ms, g_cmp) = timed(&lsh_g);
        let (f_ms, f_cmp) = timed(&lsh_f);
        scaling.add_row(vec![
            scope_size.to_string(),
            pairs.to_string(),
            num(exact_ms, 1),
            num(g_ms, 1),
            g_cmp.to_string(),
            num(f_ms, 1),
            f_cmp.to_string(),
        ]);
    }
    print!("{}", scaling.render());
}
