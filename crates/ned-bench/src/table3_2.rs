//! Table 3.2 / Figure 3.3: disambiguation accuracy of AIDA configurations
//! against the re-implemented baselines on the CoNLL-like test split.
//!
//! Hyper-parameters (ρ, λ) of the full configuration are line-searched on
//! the development split, exactly as §3.6.1 describes.

use ned_aida::baselines::{Cucerzan, Kulkarni, KulkarniVariant, PriorOnly};
use ned_aida::{AidaConfig, Disambiguator, NedMethod};
use ned_eval::map::interpolated_map;
use ned_eval::report::{pct, Table};
use ned_eval::ttest::paired_ttest;
use ned_relatedness::MilneWitten;

use crate::runner::{run_method, Evaluation};
use crate::setup::{Env, Scale};

/// Line-searches ρ and λ on the dev split (the paper's procedure) and
/// returns the tuned full configuration.
pub fn tune_full_config(env: &Env, dev: &[ned_eval::gold::GoldDoc]) -> AidaConfig {
    let kb = &env.frozen;
    let mut best = AidaConfig::full();
    let mut best_micro = -1.0;
    for rho in [0.8, 0.9, 0.95] {
        for lambda in [0.5, 0.7, 0.9, 1.1, 1.3] {
            let config = AidaConfig {
                prior_threshold: rho,
                coherence_threshold: lambda,
                ..AidaConfig::full()
            };
            let aida = Disambiguator::new(kb, MilneWitten::new(kb), config.clone());
            let eval = run_method(&aida, dev);
            let micro = eval.micro(false);
            if micro > best_micro {
                best_micro = micro;
                best = config;
            }
        }
    }
    eprintln!(
        "tuned on dev: rho = {}, lambda = {} (dev micro {})",
        best.prior_threshold,
        best.coherence_threshold,
        pct(best_micro)
    );
    best
}

/// Runs the full method comparison and prints the table.
pub fn run(scale: &Scale) {
    let env = Env::build(scale);
    let corpus = env.conll(scale);
    let kb = &env.frozen;
    let dev = corpus.dev();
    let test = corpus.test();
    eprintln!(
        "corpus: {} docs ({} dev, {} test), {} mentions",
        corpus.docs.len(),
        dev.len(),
        test.len(),
        corpus.mention_count()
    );

    let tuned = tune_full_config(&env, dev);
    let tuned_no_rcoh =
        AidaConfig { use_coherence_robustness: false, ..tuned.clone() };

    let mw = MilneWitten::new(kb);
    let methods: Vec<(&str, Box<dyn NedMethod + Sync>)> = vec![
        ("prior", Box::new(PriorOnly::new(kb))),
        ("Cuc", Box::new(Cucerzan::new(kb))),
        ("Kul s", Box::new(Kulkarni::new(kb, KulkarniVariant::Similarity))),
        ("Kul sp", Box::new(Kulkarni::new(kb, KulkarniVariant::SimilarityPrior))),
        ("Kul CI", Box::new(Kulkarni::new(kb, KulkarniVariant::Collective))),
        ("sim-k", Box::new(Disambiguator::new(kb, mw, AidaConfig::sim_only()))),
        ("prior sim-k", Box::new(Disambiguator::new(kb, mw, AidaConfig::prior_sim()))),
        ("r-prior sim-k", Box::new(Disambiguator::new(kb, mw, AidaConfig::r_prior_sim()))),
        ("r-prior sim-k coh", Box::new(Disambiguator::new(kb, mw, tuned_no_rcoh))),
        ("r-prior sim-k r-coh", Box::new(Disambiguator::new(kb, mw, tuned))),
    ];

    let mut table = Table::new(
        "Table 3.2 — NED accuracy on the CoNLL-like test split",
        &["Method", "MacA", "MicA", "MAP"],
    );
    let mut evals: Vec<(&str, Evaluation)> = Vec::new();
    for (name, method) in &methods {
        let eval = run_method(method.as_ref(), test);
        table.add_row(vec![
            name.to_string(),
            pct(eval.macro_(false)),
            pct(eval.micro(false)),
            pct(interpolated_map(&eval.ranked_items())),
        ]);
        evals.push((name, eval));
    }
    print!("{}", table.render());

    // Significance: full AIDA vs the strongest collective baseline.
    if let (Some((_, full)), Some((_, kul_ci))) =
        (evals.last(), evals.iter().find(|(n, _)| *n == "Kul CI"))
    {
        if let Some(t) =
            paired_ttest(&full.doc_accuracies(false), &kul_ci.doc_accuracies(false))
        {
            println!(
                "paired t-test, AIDA r-coh vs Kul CI: t = {:.3}, p = {:.4} ({})",
                t.t,
                t.p_value,
                if t.p_value < 0.05 { "significant" } else { "not significant" }
            );
        }
    }
}
