//! Streaming-bench gate: validates `BENCH_streaming.json` (written by
//! `experiments bench_streaming`) and exits non-zero when the report is
//! malformed or the incremental-KB contracts do not hold.
//!
//! Checked per round row, exactly:
//!   - conservation: `discovered_ee >= promotions` (promotion consumes
//!     discovered evidence, never invents it) and
//!     `promoted_total >= promotions`
//!   - `eval_linked <= eval_total`
//!   - `promoted_total` and `generation` are nondecreasing across rounds
//!
//! Checked globally:
//!   - `"virtual_deterministic": true` (two full runs bit-identical)
//!   - `"wal_replay_consistent": true` (WAL replay reproduces mutations)
//!   - `"compaction_equivalent": true` (overlay == compacted snapshot)
//!   - `"accuracy_improved": true` and `"accuracy_monotone": true` — the
//!     EE linked accuracy improves as promotions land, and never regresses
//!   - cumulative promotions across rounds never exceed cumulative
//!     discoveries
//!
//! Usage:
//!   streaming_check <BENCH_streaming.json>

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;

/// One parsed round row (one line per round, as in `serving_check`).
#[derive(Debug, Clone, PartialEq)]
struct Round {
    day: u64,
    discovered_ee: u64,
    promotions: u64,
    promoted_total: u64,
    generation: u64,
    eval_linked: u64,
    eval_total: u64,
    ee_linked_accuracy: f64,
}

/// Extracts an unsigned integer field (`"key": 123`) from a one-line JSON
/// object.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String =
        line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extracts a float field (`"key": 0.123456`) from a one-line JSON object.
fn f64_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let number: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    number.parse().ok()
}

fn parse_round(line: &str) -> Option<Round> {
    Some(Round {
        day: u64_field(line, "day")?,
        discovered_ee: u64_field(line, "discovered_ee")?,
        promotions: u64_field(line, "promotions")?,
        promoted_total: u64_field(line, "promoted_total")?,
        generation: u64_field(line, "generation")?,
        eval_linked: u64_field(line, "eval_linked")?,
        eval_total: u64_field(line, "eval_total")?,
        ee_linked_accuracy: f64_field(line, "ee_linked_accuracy")?,
    })
}

/// The global boolean flags the bench writes.
#[derive(Debug, Clone, Copy)]
struct Flags {
    deterministic: bool,
    wal_consistent: bool,
    compaction_equivalent: bool,
    accuracy_monotone: bool,
    accuracy_improved: bool,
}

fn bool_flag(json: &str, key: &str) -> Result<bool, String> {
    if json.contains(&format!("\"{key}\": true")) {
        Ok(true)
    } else if json.contains(&format!("\"{key}\": false")) {
        Ok(false)
    } else {
        Err(format!("missing \"{key}\" flag"))
    }
}

fn parse_report(json: &str) -> Result<(Vec<Round>, Flags), String> {
    let flags = Flags {
        deterministic: bool_flag(json, "virtual_deterministic")?,
        wal_consistent: bool_flag(json, "wal_replay_consistent")?,
        compaction_equivalent: bool_flag(json, "compaction_equivalent")?,
        accuracy_monotone: bool_flag(json, "accuracy_monotone")?,
        accuracy_improved: bool_flag(json, "accuracy_improved")?,
    };
    let mut rounds = Vec::new();
    let mut in_rounds = false;
    for line in json.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"rounds\"") {
            in_rounds = true;
            continue;
        }
        if in_rounds {
            if trimmed.starts_with(']') {
                break;
            }
            let round = parse_round(trimmed)
                .ok_or_else(|| format!("malformed round row: {trimmed}"))?;
            rounds.push(round);
        }
    }
    if rounds.is_empty() {
        return Err("no round rows found".to_string());
    }
    Ok((rounds, flags))
}

/// All validation failures for a parsed report.
fn validate(rounds: &[Round], flags: Flags) -> Vec<String> {
    let mut errors = Vec::new();
    if !flags.deterministic {
        errors.push("streaming runs were not bit-identical across invocations".to_string());
    }
    if !flags.wal_consistent {
        errors.push("WAL replay did not reproduce the accumulated mutations".to_string());
    }
    if !flags.compaction_equivalent {
        errors.push("compacted snapshot diverged from the delta overlay".to_string());
    }
    if !flags.accuracy_monotone {
        errors.push("EE linked accuracy regressed between rounds".to_string());
    }
    if !flags.accuracy_improved {
        errors.push("EE linked accuracy did not improve over the stream".to_string());
    }
    let mut cumulative_discovered = 0u64;
    let mut cumulative_promoted = 0u64;
    let mut prev_total = 0u64;
    let mut prev_generation = 0u64;
    for r in rounds {
        let ctx = format!("day {}", r.day);
        if r.promotions > r.discovered_ee + (cumulative_discovered - cumulative_promoted) {
            errors.push(format!(
                "{ctx}: promotions ({}) exceed available discovered evidence",
                r.promotions
            ));
        }
        cumulative_discovered += r.discovered_ee;
        cumulative_promoted += r.promotions;
        if cumulative_promoted > cumulative_discovered {
            errors.push(format!(
                "{ctx}: cumulative promotions ({cumulative_promoted}) > cumulative \
                 discoveries ({cumulative_discovered})"
            ));
        }
        if r.promoted_total < prev_total {
            errors.push(format!(
                "{ctx}: promoted_total ({}) shrank from {prev_total}",
                r.promoted_total
            ));
        }
        if r.promoted_total < r.promotions {
            errors.push(format!(
                "{ctx}: promoted_total ({}) < promotions this round ({})",
                r.promoted_total, r.promotions
            ));
        }
        if r.generation < prev_generation {
            errors.push(format!(
                "{ctx}: generation ({}) went backwards from {prev_generation}",
                r.generation
            ));
        }
        if r.eval_linked > r.eval_total {
            errors.push(format!(
                "{ctx}: eval_linked ({}) > eval_total ({})",
                r.eval_linked, r.eval_total
            ));
        }
        if !(0.0..=1.0).contains(&r.ee_linked_accuracy) {
            errors.push(format!(
                "{ctx}: ee_linked_accuracy ({}) outside [0, 1]",
                r.ee_linked_accuracy
            ));
        }
        prev_total = r.promoted_total;
        prev_generation = r.generation;
    }
    errors
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: streaming_check <BENCH_streaming.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (rounds, flags) = match parse_report(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let errors = validate(&rounds, flags);
    if errors.is_empty() {
        let last = rounds.last().map_or(0.0, |r| r.ee_linked_accuracy);
        println!(
            "streaming_check: {} rounds hold (final EE linked accuracy {last:.4}, \
             deterministic, WAL-consistent, compaction-equivalent)",
            rounds.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{e}");
        }
        eprintln!("streaming_check: {} violation(s) in {path}", errors.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn row(
        day: u64,
        discovered: u64,
        promotions: u64,
        total: u64,
        generation: u64,
        linked: u64,
        of: u64,
        accuracy: f64,
    ) -> String {
        format!(
            "    {{\"day\": {day}, \"docs\": 20, \"gold_ee_mentions\": 30, \
             \"discovered_ee\": {discovered}, \"promotions\": {promotions}, \
             \"promoted_total\": {total}, \"delta_entities\": {total}, \
             \"generation\": {generation}, \"eval_linked\": {linked}, \
             \"eval_total\": {of}, \"ee_linked_accuracy\": {accuracy:.6}}}"
        )
    }

    fn report(rows: &[String], flag_overrides: &[(&str, bool)]) -> String {
        let mut flags = vec![
            ("virtual_deterministic", true),
            ("accuracy_monotone", true),
            ("accuracy_improved", true),
            ("wal_replay_consistent", true),
            ("compaction_equivalent", true),
        ];
        for (key, value) in flag_overrides {
            for f in &mut flags {
                if f.0 == *key {
                    f.1 = *value;
                }
            }
        }
        let mut out = String::from("{\n");
        for (key, value) in flags {
            out.push_str(&format!("  \"{key}\": {value},\n"));
        }
        out.push_str("  \"rounds\": [\n");
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n  \"kb_metrics\": {\n    \"kb_wal_records\": 5\n  }\n}\n");
        out
    }

    fn good_rows() -> Vec<String> {
        vec![
            row(0, 40, 5, 5, 1, 10, 100, 0.10),
            row(1, 35, 8, 13, 2, 30, 100, 0.30),
            row(2, 20, 0, 13, 2, 30, 100, 0.30),
        ]
    }

    #[test]
    fn clean_report_passes() {
        let (rounds, flags) = parse_report(&report(&good_rows(), &[])).unwrap();
        assert_eq!(rounds.len(), 3);
        assert!(validate(&rounds, flags).is_empty());
    }

    #[test]
    fn false_flags_are_violations() {
        for key in [
            "virtual_deterministic",
            "accuracy_monotone",
            "accuracy_improved",
            "wal_replay_consistent",
            "compaction_equivalent",
        ] {
            let (rounds, flags) =
                parse_report(&report(&good_rows(), &[(key, false)])).unwrap();
            assert_eq!(validate(&rounds, flags).len(), 1, "{key} must be checked");
        }
    }

    #[test]
    fn promotion_conservation_is_enforced() {
        let rows = vec![row(0, 3, 10, 10, 1, 5, 100, 0.05)];
        let (rounds, flags) = parse_report(&report(&rows, &[])).unwrap();
        let errors = validate(&rounds, flags);
        assert!(
            errors.iter().any(|e| e.contains("exceed available discovered evidence")),
            "{errors:?}"
        );
    }

    #[test]
    fn shrinking_totals_and_backwards_generations_fail() {
        let rows = vec![
            row(0, 40, 5, 5, 2, 10, 100, 0.10),
            row(1, 40, 2, 4, 1, 10, 100, 0.10),
        ];
        let (rounds, flags) = parse_report(&report(&rows, &[])).unwrap();
        let errors = validate(&rounds, flags);
        assert!(errors.iter().any(|e| e.contains("shrank")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("went backwards")), "{errors:?}");
    }

    #[test]
    fn linked_beyond_total_fails() {
        let rows = vec![row(0, 40, 5, 5, 1, 101, 100, 1.0)];
        let (rounds, flags) = parse_report(&report(&rows, &[])).unwrap();
        assert!(validate(&rounds, flags)
            .iter()
            .any(|e| e.contains("eval_linked")));
    }

    #[test]
    fn malformed_rows_and_missing_flags_are_errors() {
        assert!(parse_report("{\n  \"rounds\": [\n    {\"day\": }\n  ]\n}").is_err());
        let no_flags = format!(
            "{{\n  \"rounds\": [\n{}\n  ]\n}}\n",
            good_rows().join(",\n")
        );
        assert!(parse_report(&no_flags).unwrap_err().contains("virtual_deterministic"));
    }

    #[test]
    fn real_bench_shape_parses() {
        // The exact row shape `bench_streaming` writes.
        let line = "    {\"day\": 0, \"docs\": 20, \"gold_ee_mentions\": 32, \
                    \"discovered_ee\": 121, \"promotions\": 20, \"promoted_total\": 20, \
                    \"delta_entities\": 20, \"generation\": 1, \"eval_linked\": 53, \
                    \"eval_total\": 229, \"ee_linked_accuracy\": 0.231441}";
        let round = parse_round(line).unwrap();
        assert_eq!(round.discovered_ee, 121);
        assert!((round.ee_linked_accuracy - 0.231441).abs() < 1e-9);
    }
}
