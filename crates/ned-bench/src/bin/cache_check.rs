//! Cache-sweep gate: validates the `"cache_sweep"` section of
//! `BENCH_throughput.json` (written by `experiments bench_throughput`) and
//! exits non-zero when the report is malformed or the cache accounting
//! does not balance.
//!
//! Checked per row, exactly:
//!   - `lookups == hits + misses`
//!   - `misses == inserts + admit_rejected + stale_discards`
//!   - `inserts == evictions + live_entries`
//!   - `bytes == live_entries * entry_bytes` and `bytes <= peak_bytes`
//!   - bounded rows: `peak_bytes <= cap_bytes` (the cap is a hard bound at
//!     every observation point, including the peak)
//!   - `rerun_deterministic` and `outcomes_match_unbounded` both true (the
//!     run was executed twice with bit-identical snapshots, and bounding
//!     the cache never changed an annotation outcome)
//!
//! Checked per policy:
//!   - at least 3 bounded rows and an unbounded reference row
//!   - bounded caps strictly ascending, unbounded rows last
//!   - hit rate monotone non-decreasing in the cap (deterministic
//!     single-threaded replay of a fixed workload: a larger cap can only
//!     keep more, for segmented LRU by the per-shard stack property and
//!     for the frequency gate empirically on this corpus)
//!
//! Usage:
//!   cache_check <BENCH_throughput.json>

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;

/// One parsed sweep row. Rows are written one per line by the bench, so a
/// line-oriented scan is sufficient (as in `metrics_check` and
/// `serving_check`).
#[derive(Debug, Clone, PartialEq)]
struct Row {
    policy: String,
    cap_bytes: Option<u64>,
    lookups: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    admit_rejected: u64,
    stale_discards: u64,
    live_entries: u64,
    bytes: u64,
    peak_bytes: u64,
    hit_rate: f64,
    rerun_deterministic: bool,
    outcomes_match_unbounded: bool,
}

/// Extracts a string field (`"key": "value"`) from a one-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = start + line[start..].find('"')?;
    Some(line[start..end].to_string())
}

/// Extracts an unsigned integer field (`"key": 123`) from a one-line JSON
/// object.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extracts a nullable unsigned integer field (`"key": 123` or
/// `"key": null`).
fn opt_u64_field(line: &str, key: &str) -> Option<Option<u64>> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    if line[start..].starts_with("null") {
        return Some(None);
    }
    u64_field(line, key).map(Some)
}

/// Extracts a float field (`"key": 0.5`) from a one-line JSON object.
fn f64_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let number: String =
        line[start..].chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    number.parse().ok()
}

/// Extracts a boolean field (`"key": true`).
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    if line[start..].starts_with("true") {
        Some(true)
    } else if line[start..].starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn parse_row(line: &str) -> Option<Row> {
    Some(Row {
        policy: str_field(line, "policy")?,
        cap_bytes: opt_u64_field(line, "cap_bytes")?,
        lookups: u64_field(line, "lookups")?,
        hits: u64_field(line, "hits")?,
        misses: u64_field(line, "misses")?,
        inserts: u64_field(line, "inserts")?,
        evictions: u64_field(line, "evictions")?,
        admit_rejected: u64_field(line, "admit_rejected")?,
        stale_discards: u64_field(line, "stale_discards")?,
        live_entries: u64_field(line, "live_entries")?,
        bytes: u64_field(line, "bytes")?,
        peak_bytes: u64_field(line, "peak_bytes")?,
        hit_rate: f64_field(line, "hit_rate")?,
        rerun_deterministic: bool_field(line, "rerun_deterministic")?,
        outcomes_match_unbounded: bool_field(line, "outcomes_match_unbounded")?,
    })
}

/// Parses the `"cache_sweep"` section: its `entry_bytes` and the `rows`
/// array (one row object per line).
fn parse_report(json: &str) -> Result<(u64, Vec<Row>), String> {
    let mut entry_bytes = None;
    let mut rows = Vec::new();
    let mut in_sweep = false;
    let mut in_rows = false;
    for line in json.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"cache_sweep\"") {
            in_sweep = true;
            continue;
        }
        if !in_sweep {
            continue;
        }
        if entry_bytes.is_none() {
            if let Some(v) = u64_field(trimmed, "entry_bytes") {
                entry_bytes = Some(v);
                continue;
            }
        }
        if trimmed.starts_with("\"rows\"") {
            in_rows = true;
            continue;
        }
        if in_rows {
            if trimmed.starts_with(']') {
                break;
            }
            let row =
                parse_row(trimmed).ok_or_else(|| format!("malformed sweep row: {trimmed}"))?;
            rows.push(row);
        }
    }
    let entry_bytes =
        entry_bytes.ok_or_else(|| "missing \"cache_sweep\".\"entry_bytes\"".to_string())?;
    if rows.is_empty() {
        return Err("no cache sweep rows found".to_string());
    }
    Ok((entry_bytes, rows))
}

/// All validation failures for a parsed sweep.
fn validate(entry_bytes: u64, rows: &[Row]) -> Vec<String> {
    let mut errors = Vec::new();
    for r in rows {
        let ctx = format!(
            "{} cap {}",
            r.policy,
            r.cap_bytes.map_or_else(|| "unbounded".to_string(), |c| c.to_string())
        );
        if r.lookups != r.hits + r.misses {
            errors.push(format!(
                "{ctx}: lookups ({}) != hits ({}) + misses ({})",
                r.lookups, r.hits, r.misses
            ));
        }
        if r.misses != r.inserts + r.admit_rejected + r.stale_discards {
            errors.push(format!(
                "{ctx}: misses ({}) != inserts ({}) + admit_rejected ({}) + stale_discards ({})",
                r.misses, r.inserts, r.admit_rejected, r.stale_discards
            ));
        }
        if r.inserts != r.evictions + r.live_entries {
            errors.push(format!(
                "{ctx}: inserts ({}) != evictions ({}) + live_entries ({})",
                r.inserts, r.evictions, r.live_entries
            ));
        }
        if r.bytes != r.live_entries * entry_bytes {
            errors.push(format!(
                "{ctx}: bytes ({}) != live_entries ({}) * entry_bytes ({entry_bytes})",
                r.bytes, r.live_entries
            ));
        }
        if r.bytes > r.peak_bytes {
            errors.push(format!("{ctx}: bytes ({}) > peak_bytes ({})", r.bytes, r.peak_bytes));
        }
        if let Some(cap) = r.cap_bytes {
            if r.peak_bytes > cap {
                errors.push(format!(
                    "{ctx}: peak_bytes ({}) exceeds the cap — the byte bound is not hard",
                    r.peak_bytes
                ));
            }
        }
        if !r.rerun_deterministic {
            errors.push(format!("{ctx}: rerun was not bit-identical"));
        }
        if !r.outcomes_match_unbounded {
            errors.push(format!("{ctx}: bounding the cache changed annotation outcomes"));
        }
    }
    // Per-policy shape and monotonicity, in file order.
    let mut policies: Vec<&str> = Vec::new();
    for r in rows {
        if !policies.contains(&r.policy.as_str()) {
            policies.push(&r.policy);
        }
    }
    for policy in policies {
        let of_policy: Vec<&Row> = rows.iter().filter(|r| r.policy == policy).collect();
        let bounded = of_policy.iter().filter(|r| r.cap_bytes.is_some()).count();
        let unbounded = of_policy.len() - bounded;
        if bounded < 3 {
            errors.push(format!("{policy}: need >= 3 bounded rows, found {bounded}"));
        }
        if unbounded < 1 {
            errors.push(format!("{policy}: missing the unbounded reference row"));
        }
        for pair in of_policy.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            match (a.cap_bytes, b.cap_bytes) {
                (Some(ca), Some(cb)) if ca >= cb => {
                    errors.push(format!("{policy}: caps not strictly ascending ({ca} -> {cb})"));
                }
                (None, Some(cb)) => {
                    errors.push(format!(
                        "{policy}: bounded row (cap {cb}) after the unbounded row"
                    ));
                }
                _ => {}
            }
            if a.hit_rate > b.hit_rate {
                errors.push(format!(
                    "{policy}: hit rate not monotone in the cap ({:.6} -> {:.6} at cap {})",
                    a.hit_rate,
                    b.hit_rate,
                    b.cap_bytes.map_or_else(|| "unbounded".to_string(), |c| c.to_string())
                ));
            }
        }
    }
    errors
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: cache_check <BENCH_throughput.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (entry_bytes, rows) = match parse_report(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let errors = validate(entry_bytes, &rows);
    if errors.is_empty() {
        println!(
            "cache_check: {} sweep rows balance exactly (hit rate monotone in cap, \
             peak bytes under cap, reruns bit-identical)",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{e}");
        }
        eprintln!("cache_check: {} violation(s) in {path}", errors.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A row whose accounting balances by construction: the cache fills to
    /// its cap (or holds every insert when unbounded) and the remainder of
    /// the inserts were evicted.
    fn row(policy: &str, cap: Option<u64>, hits: u64, rejected: u64) -> String {
        let lookups = 1000u64;
        let misses = lookups - hits;
        let inserts = misses - rejected;
        let live = cap.map_or(inserts, |c| inserts.min(c / 96));
        let evictions = inserts - live;
        let bytes = live * 96;
        let peak = bytes;
        format!(
            "      {{\"policy\": \"{policy}\", \"cap_bytes\": {}, \"bounded\": {}, \
             \"lookups\": {lookups}, \"hits\": {hits}, \"misses\": {misses}, \
             \"inserts\": {inserts}, \"evictions\": {evictions}, \
             \"admit_rejected\": {rejected}, \"stale_discards\": 0, \
             \"live_entries\": {live}, \"bytes\": {bytes}, \"peak_bytes\": {peak}, \
             \"hit_rate\": {:.6}, \"rerun_deterministic\": true, \
             \"outcomes_match_unbounded\": true}}",
            cap.map_or_else(|| "null".to_string(), |c| c.to_string()),
            cap.is_some(),
            hits as f64 / lookups as f64,
        )
    }

    fn report(rows: &[String]) -> String {
        format!(
            "{{\n  \"metrics\": {{\n    \"aida_docs\": 20\n  }},\n  \"cache_sweep\": {{\n    \
             \"entry_bytes\": 96,\n    \"rows\": [\n{}\n    ]\n  }},\n  \
             \"deterministic_across_thread_counts\": true\n}}\n",
            rows.join(",\n")
        )
    }

    fn good_rows() -> Vec<String> {
        vec![
            row("lru", Some(960), 500, 0),
            row("lru", Some(1920), 550, 0),
            row("lru", Some(3840), 600, 0),
            row("lru", None, 700, 0),
            row("tinylfu_slru", Some(960), 400, 480),
            row("tinylfu_slru", Some(1920), 450, 400),
            row("tinylfu_slru", Some(3840), 520, 300),
            row("tinylfu_slru", None, 700, 0),
        ]
    }

    #[test]
    fn accepts_a_balanced_sweep() {
        let (entry_bytes, rows) = parse_report(&report(&good_rows())).unwrap();
        assert_eq!(entry_bytes, 96);
        assert_eq!(rows.len(), 8);
        assert_eq!(validate(entry_bytes, &rows), Vec::<String>::new());
    }

    #[test]
    fn rejects_broken_conservation() {
        let mut rows = good_rows();
        // Corrupt one row's inserts so misses != inserts + rejected.
        rows[1] = rows[1].replace("\"inserts\": 450", "\"inserts\": 449");
        let (eb, parsed) = parse_report(&report(&rows)).unwrap();
        let errors = validate(eb, &parsed);
        assert!(errors.iter().any(|e| e.contains("misses (450)")), "{errors:?}");
    }

    #[test]
    fn rejects_peak_over_cap() {
        let mut rows = good_rows();
        rows[0] = rows[0].replace("\"peak_bytes\": 960", "\"peak_bytes\": 961");
        let (eb, parsed) = parse_report(&report(&rows)).unwrap();
        let errors = validate(eb, &parsed);
        assert!(errors.iter().any(|e| e.contains("exceeds the cap")), "{errors:?}");
    }

    #[test]
    fn rejects_non_monotone_hit_rate() {
        let mut rows = good_rows();
        rows[2] = row("lru", Some(3840), 540, 0); // below the cap-1920 rate
        let (eb, parsed) = parse_report(&report(&rows)).unwrap();
        let errors = validate(eb, &parsed);
        assert!(errors.iter().any(|e| e.contains("not monotone")), "{errors:?}");
    }

    #[test]
    fn rejects_descending_caps_and_missing_reference_row() {
        let rows = vec![
            row("lru", Some(1920), 500, 0),
            row("lru", Some(960), 500, 0),
            row("lru", Some(3840), 600, 0),
        ];
        let (eb, parsed) = parse_report(&report(&rows)).unwrap();
        let errors = validate(eb, &parsed);
        assert!(errors.iter().any(|e| e.contains("not strictly ascending")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("unbounded reference row")), "{errors:?}");
    }

    #[test]
    fn rejects_false_determinism_flags() {
        let mut rows = good_rows();
        rows[5] = rows[5].replace("\"rerun_deterministic\": true", "\"rerun_deterministic\": false");
        rows[6] = rows[6]
            .replace("\"outcomes_match_unbounded\": true", "\"outcomes_match_unbounded\": false");
        let (eb, parsed) = parse_report(&report(&rows)).unwrap();
        let errors = validate(eb, &parsed);
        assert!(errors.iter().any(|e| e.contains("not bit-identical")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("changed annotation outcomes")), "{errors:?}");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"cache_sweep\": {\n  \"rows\": [\n  ]\n}\n}").is_err());
        let bad = "{\"cache_sweep\": {\n  \"entry_bytes\": 96,\n  \"rows\": [\n    \
                   {\"policy\": 3}\n  ]\n}\n}";
        assert!(parse_report(bad).is_err());
    }
}
