//! Experiment runner: regenerates every table and figure of the thesis'
//! evaluation on the synthetic world.
//!
//! Usage:
//!   experiments <id|all> [--full]
//!
//! Ids: table3_1 table3_2 table4_2 table4_3 fig4_3 table4_4 table5_1
//!      table5_3 fig5_4 ablations bench_throughput
//!
//! `--full` runs at a scale approaching the thesis' corpus sizes; the
//! default scale finishes in seconds per experiment.

use std::time::Instant;

use ned_bench::setup::Scale;
use ned_bench::EXPERIMENTS;

// ned-lint: entry
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let ids: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.as_str()).collect();

    if ids.is_empty() || ids.contains(&"help") {
        eprintln!("usage: experiments <id|all> [--full]");
        eprintln!("available experiments:");
        for (id, _) in EXPERIMENTS {
            eprintln!("  {id}");
        }
        std::process::exit(if ids.is_empty() { 2 } else { 0 });
    }

    let run_all = ids.contains(&"all");
    let mut ran = 0;
    for (id, f) in EXPERIMENTS {
        if run_all || ids.contains(id) {
            println!("\n##### {id} #####");
            let start = Instant::now();
            f(&scale);
            println!("({id} finished in {:.1?})", start.elapsed());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s): {ids:?}");
        std::process::exit(2);
    }
}
