//! Interactive demo CLI: builds a synthetic world, then annotates text from
//! the command line (or a built-in demo document) end to end — joint
//! recognition, disambiguation, and type classification.
//!
//! Annotation runs through the `ned-serve` service (the same bounded-queue,
//! deadline-planned code path a long-running deployment uses), so the demo
//! doubles as a smoke test of the serving layer.
//!
//! Usage:
//!   annotate                      # annotate a generated demo document
//!   annotate "some text ..."      # annotate the given text
//!   annotate --seed 7 "text"      # different world
//!   annotate --metrics "text"     # also dump the pipeline metrics snapshot
//!   annotate --deadline-ms 5 "…"  # per-request deadline (tight deadlines
//!                                 # degrade joint → no-coherence → prior)
//!   annotate --threads 4 "text"   # service worker threads
//!   annotate --cache-mb 2 "text"  # bound the relatedness cache to N MiB
//!                                 # (segmented-LRU with frequency
//!                                 # admission; 0 disables caching,
//!                                 # omitted = unbounded)
//!   annotate --wal live.wal "…"   # replay an incremental-KB WAL over the
//!                                 # frozen base and annotate against the
//!                                 # resulting delta overlay (promoted
//!                                 # emerging entities become linkable)

use std::sync::Arc;

use ned_aida::classification::TypeClassifier;
use ned_aida::{AidaConfig, JointConfig};
use ned_kb::{DeltaKb, FrozenKb, KbEpoch, KbView, Wal};
use ned_obs::Metrics;
use ned_relatedness::{CacheConfig, CachedRelatedness, MilneWitten};
use ned_serve::{AidaHandler, ServeRequest, Service, ServiceConfig};
use ned_text::tokenize;
use ned_wikigen::config::WorldConfig;
use ned_wikigen::corpus::conll_like;
use ned_wikigen::{ExportedKb, World};

/// Removes `--flag <value>` from `args` and parses the value.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<u64> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} expects a number");
        std::process::exit(2);
    }
    let value = args[pos + 1].parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number");
        std::process::exit(2);
    });
    args.drain(pos..=pos + 1);
    Some(value)
}

/// Removes `--flag <value>` from `args` and returns the raw value.
fn take_string_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    let Some(value) = args.get(pos + 1).cloned() else {
        eprintln!("{flag} expects a path");
        std::process::exit(2);
    };
    args.drain(pos..=pos + 1);
    Some(value)
}

// ned-lint: entry
fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let seed = take_value_flag(&mut args, "--seed").unwrap_or(2024);
    let deadline_ms = take_value_flag(&mut args, "--deadline-ms");
    let threads = take_value_flag(&mut args, "--threads").unwrap_or(2).max(1) as usize;
    let cache_mb = take_value_flag(&mut args, "--cache-mb");
    let wal_path = take_string_flag(&mut args, "--wal");
    let show_metrics = if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        true
    } else {
        false
    };

    let world = World::generate(WorldConfig::tiny(seed));
    let exported = ExportedKb::build(&world);
    // The service configuration: one frozen KB behind a shared Arc handle,
    // optionally with a WAL-replayed delta overlay on top.
    let frozen = Arc::new(FrozenKb::freeze(&exported.kb));
    let kb = match &wal_path {
        Some(path) => {
            let (_, replay) = Wal::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open WAL {path}: {e}");
                std::process::exit(2);
            });
            if replay.recovered_torn_tail() {
                eprintln!(
                    "WAL {path}: recovered from a torn tail ({} bytes discarded)",
                    replay.torn_tail_bytes
                );
            }
            eprintln!(
                "WAL {path}: replayed {} mutations ({} duplicates skipped)",
                replay.mutations.len(),
                replay.duplicates_skipped
            );
            if replay.mutations.is_empty() {
                Arc::new(KbEpoch::Frozen(frozen.clone()))
            } else {
                let delta = DeltaKb::build(frozen.clone(), replay.mutations)
                    .unwrap_or_else(|e| {
                        eprintln!("WAL {path} does not apply to this world: {e}");
                        std::process::exit(2);
                    });
                eprintln!("delta overlay: +{} entities", delta.delta_entity_count());
                Arc::new(KbEpoch::Delta(Arc::new(delta)))
            }
        }
        None => Arc::new(KbEpoch::Frozen(frozen.clone())),
    };
    eprintln!(
        "world: {} entities, {} names, {} keyphrases",
        kb.entity_count(),
        kb.dictionary().name_count(),
        kb.phrase_count()
    );

    let metrics = Metrics::new();
    let cache_config = match cache_mb {
        Some(mb) => CacheConfig::bounded(mb.saturating_mul(1024 * 1024)),
        None => CacheConfig::unbounded(),
    };
    let relatedness = Arc::new(CachedRelatedness::with_config(
        MilneWitten::new(kb.clone()),
        &metrics,
        cache_config,
    ));
    let handler =
        AidaHandler::try_new(kb.clone(), relatedness, AidaConfig::full(), JointConfig::default())
            .unwrap_or_else(|e| {
                eprintln!("invalid pipeline configuration: {e}");
                std::process::exit(2);
            })
            .with_metrics(&metrics);
    let service = Service::start(
        handler,
        ServiceConfig {
            workers: threads,
            default_deadline_ms: deadline_ms,
            ..ServiceConfig::default()
        },
        &metrics,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start service: {e}");
        std::process::exit(2);
    });
    let classifier = TypeClassifier::new(kb.clone(), &exported.taxonomy);

    let text = if args.is_empty() {
        // No input: annotate a freshly generated document so the demo works
        // out of the box (the synthetic vocabulary is the world's own).
        let corpus = conll_like(&world, &exported, 42, 1);
        corpus.docs[0].text()
    } else {
        args.join(" ")
    };

    println!("text:\n  {text}\n");
    let response = service.submit_wait(ServeRequest::new(0, text.clone()));
    let annotations = match &response.result {
        Ok(annotations) => annotations.clone(),
        Err(e) => {
            eprintln!("annotation failed: {e}");
            std::process::exit(1);
        }
    };
    if response.degradation.is_degraded() {
        println!(
            "(deadline pressure: answered at degradation level `{}`)\n",
            response.degradation.as_str()
        );
    }
    let tokens = tokenize(&text);
    if annotations.is_empty() {
        println!("no linkable mentions found (unknown names are out-of-KB).");
    } else {
        println!("{} annotations:", annotations.len());
        for a in &annotations {
            let ty = classifier
                .best_type(&tokens, &a.mention)
                .map(|t| exported.taxonomy.name(t).to_string())
                .unwrap_or_else(|| "?".into());
            println!(
                "  {:<20} → {:<26} [{:<18}] conf {:.2}",
                a.mention.surface,
                kb.entity(a.entity).canonical_name,
                ty,
                a.confidence
            );
        }
    }
    let stats = service.shutdown();
    if let Err(e) = stats.check_conservation() {
        eprintln!("service accounting imbalance: {e}");
        std::process::exit(1);
    }
    if show_metrics {
        println!("\npipeline metrics:\n{}", metrics.snapshot().render());
    }
}
