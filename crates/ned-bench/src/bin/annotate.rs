//! Interactive demo CLI: builds a synthetic world, then annotates text from
//! the command line (or a built-in demo document) end to end — joint
//! recognition, disambiguation, and type classification.
//!
//! Usage:
//!   annotate                      # annotate a generated demo document
//!   annotate "some text ..."      # annotate the given text
//!   annotate --seed 7 "text"      # different world
//!   annotate --metrics "text"     # also dump the pipeline metrics snapshot

use std::sync::Arc;

use ned_aida::classification::TypeClassifier;
use ned_aida::{AidaConfig, Disambiguator, JointAnnotator, JointConfig};
use ned_kb::FrozenKb;
use ned_obs::Metrics;
use ned_relatedness::{CachedRelatedness, MilneWitten};
use ned_wikigen::config::WorldConfig;
use ned_wikigen::corpus::conll_like;
use ned_wikigen::{ExportedKb, World};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 2024u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if pos + 1 < args.len() {
            seed = args[pos + 1].parse().unwrap_or_else(|_| {
                eprintln!("--seed expects a number");
                std::process::exit(2);
            });
            args.drain(pos..=pos + 1);
        }
    }
    let show_metrics = if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        true
    } else {
        false
    };

    let world = World::generate(WorldConfig::tiny(seed));
    let exported = ExportedKb::build(&world);
    // The service configuration: one frozen KB behind a shared Arc handle.
    let kb = Arc::new(FrozenKb::freeze(&exported.kb));
    eprintln!(
        "world: {} entities, {} names, {} keyphrases",
        kb.entity_count(),
        kb.dictionary().name_count(),
        kb.phrase_count()
    );

    let metrics = Metrics::new();
    let relatedness = CachedRelatedness::with_metrics(MilneWitten::new(kb.clone()), &metrics);
    let aida =
        Disambiguator::new(kb.clone(), relatedness, AidaConfig::full()).with_metrics(&metrics);
    let annotator = JointAnnotator::new(&aida, JointConfig::default());
    let classifier = TypeClassifier::new(kb.clone(), &exported.taxonomy);

    let text = if args.is_empty() {
        // No input: annotate a freshly generated document so the demo works
        // out of the box (the synthetic vocabulary is the world's own).
        let corpus = conll_like(&world, &exported, 42, 1);
        corpus.docs[0].text()
    } else {
        args.join(" ")
    };

    println!("text:\n  {text}\n");
    let (tokens, annotations) = annotator.annotate(&text);
    if annotations.is_empty() {
        println!("no linkable mentions found (unknown names are out-of-KB).");
    } else {
        println!("{} annotations:", annotations.len());
        for a in &annotations {
            let ty = classifier
                .best_type(&tokens, &a.mention)
                .map(|t| exported.taxonomy.name(t).to_string())
                .unwrap_or_else(|| "?".into());
            println!(
                "  {:<20} → {:<26} [{:<18}] conf {:.2}",
                a.mention.surface,
                kb.entity(a.entity).canonical_name,
                ty,
                a.confidence
            );
        }
    }
    if show_metrics {
        println!("\npipeline metrics:\n{}", metrics.snapshot().render());
    }
}
