//! Allocation-ratchet gate: compares the per-stage allocation figures of a
//! freshly produced `BENCH_throughput.json` (written by `experiments
//! bench_throughput`, whose binary installs the counting allocator) against
//! the shrink-only budgets in `alloc.toml` and exits non-zero on a
//! violation.
//!
//! Semantics mirror `lint.toml` (DESIGN.md §9):
//!
//! - **exceeded** — a stage's measured per-unit allocation events are above
//!   its budget: the hot path regressed; always fails.
//! - **absorb** — a measured stage with no budget line fails until a budget
//!   is written down (run `--write-budgets` and review the diff); nothing
//!   is absorbed silently.
//! - **stale** — with `--ratchet`, a budget more than twice the measured
//!   value (and above the `STALE_FLOOR` noise floor) fails: headroom that
//!   loose would hide a real regression, so the budget must shrink.
//!
//! `--write-budgets` regenerates `alloc.toml` at `measured × 1.25`
//! headroom, but never *raises* an existing budget — the ratchet only
//! tightens; loosening is a hand edit that shows up in review.
//!
//! Budgets are calibrated on the quick-scale CI run. Only single-threaded
//! stages are budgeted: multi-thread allocation counts depend on how the
//! scheduler splits doc chunks across workers (each worker grows its own
//! scratch arena), so they are reported in the JSON but not gated.
//!
//! Usage:
//!   alloc_check <BENCH_throughput.json> <alloc.toml> [--ratchet | --write-budgets]

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Budgets at or below this per-unit value are never stale: near-zero
/// stages (the whole point of the ratchet) would otherwise thrash between
/// "shrink it" and "0.0 forbids everything".
const STALE_FLOOR: f64 = 1.0;

/// Headroom factor applied by `--write-budgets` over the measured value,
/// absorbing run-to-run jitter (thread spawn bookkeeping, map resize
/// boundaries) without hiding a real regression.
const HEADROOM: f64 = 1.25;

/// Extracts `(stage, per_unit)` pairs from the `"stages"` array of the
/// bench report. Stage objects are one-per-line by construction (see
/// `bench_throughput::render_json`), so a line-oriented scan is sufficient.
/// Returns `None` when no well-formed stage line exists.
fn parse_stages(json: &str) -> Option<Vec<(String, f64)>> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"stage\": \"") else {
            continue;
        };
        let (stage, rest) = rest.split_once('"')?;
        let per_unit = rest
            .split_once("\"per_unit\":")
            .and_then(|(_, v)| v.trim().trim_end_matches(['}', ',']).trim().parse::<f64>().ok())?;
        out.push((stage.to_string(), per_unit));
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Parses the `[budgets]` table of `alloc.toml`: lines of the form
/// `"stage" = 12.34`. Comments and blank lines are skipped. Returns `None`
/// on any malformed entry.
fn parse_budgets(toml: &str) -> Option<BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    for line in toml.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
            continue;
        }
        let (key, value) = line.split_once('=')?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value.trim().parse().ok()?;
        out.insert(key, value);
    }
    Some(out)
}

/// Applies the ratchet rules; returns one message per violation.
fn check(
    stages: &[(String, f64)],
    budgets: &BTreeMap<String, f64>,
    ratchet: bool,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (stage, measured) in stages {
        match budgets.get(stage) {
            None => violations.push(format!(
                "stage {stage}: measured {measured:.4} allocs/unit but no budget in \
                 alloc.toml (new stage? run alloc_check --write-budgets and review)"
            )),
            Some(budget) if measured > budget => violations.push(format!(
                "stage {stage}: exceeded — measured {measured:.4} allocs/unit over \
                 budget {budget:.4} (the hot path regressed, or the budget needs a \
                 reviewed hand edit)"
            )),
            Some(budget) if ratchet && *budget > STALE_FLOOR && *budget > 2.0 * measured => {
                violations.push(format!(
                    "stage {stage}: stale — budget {budget:.4} is more than twice the \
                     measured {measured:.4}; shrink it (alloc_check --write-budgets)"
                ));
            }
            Some(_) => {}
        }
    }
    for stage in budgets.keys() {
        if !stages.iter().any(|(s, _)| s == stage) {
            violations.push(format!(
                "budget {stage}: no such stage in the bench report (renamed or removed? \
                 drop the budget line)"
            ));
        }
    }
    violations
}

/// Renders a fresh `alloc.toml`: `measured × HEADROOM`, capped at the old
/// budget when one exists (tighten-only), with a small positive floor so a
/// zero-allocation stage still has a budget the gate can enforce.
fn render_budgets(stages: &[(String, f64)], old: &BTreeMap<String, f64>) -> String {
    let mut out = String::from(
        "# Allocation ratchet — shrink-only per-stage budgets on allocation events\n\
         # per unit of work, measured by the counting allocator installed in the\n\
         # ned-bench harness (see ned_obs::alloc and DESIGN.md \u{a7}12).\n\
         #\n\
         # Checked in CI by `alloc_check BENCH_throughput.json alloc.toml --ratchet`\n\
         # against the quick-scale bench report. Semantics mirror lint.toml:\n\
         #   exceeded  measured > budget                          -> fail\n\
         #   absorb    measured stage without a budget line       -> fail (write it down)\n\
         #   stale     budget > 2 x measured (and > 1.0)          -> fail under --ratchet\n\
         # Regenerate with `cargo run -p ned-bench --bin alloc_check --\n\
         #   BENCH_throughput.json alloc.toml --write-budgets` — regeneration never\n\
         # raises an existing budget; loosening is a reviewed hand edit.\n\
         \n\
         [budgets]\n",
    );
    let mut entries: BTreeMap<&str, f64> = BTreeMap::new();
    for (stage, measured) in stages {
        let fresh = ((measured * HEADROOM * 100.0).ceil() / 100.0).max(0.01);
        let budget = old.get(stage).map_or(fresh, |&b| fresh.min(b));
        entries.insert(stage, budget);
    }
    for (stage, budget) in entries {
        out.push_str(&format!("\"{stage}\" = {budget:.2}\n"));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> =
        args.iter().filter(|a| a.starts_with("--")).map(|a| a.as_str()).collect();
    let paths: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.as_str()).collect();
    let [bench_path, budget_path] = paths.as_slice() else {
        eprintln!("usage: alloc_check <BENCH_throughput.json> <alloc.toml> [--ratchet | --write-budgets]");
        return ExitCode::from(2);
    };
    let bench = match std::fs::read_to_string(bench_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {bench_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(stages) = parse_stages(&bench) else {
        eprintln!("{bench_path}: no well-formed \"stages\" entries (old bench format?)");
        return ExitCode::from(2);
    };
    let budgets = match std::fs::read_to_string(budget_path) {
        Ok(text) => match parse_budgets(&text) {
            Some(b) => b,
            None => {
                eprintln!("{budget_path}: malformed budget entry");
                return ExitCode::from(2);
            }
        },
        // A missing budget file is an empty baseline: every stage then
        // fails as unbudgeted until --write-budgets creates it.
        Err(_) => BTreeMap::new(),
    };

    if flags.contains(&"--write-budgets") {
        let rendered = render_budgets(&stages, &budgets);
        if let Err(e) = std::fs::write(budget_path, &rendered) {
            eprintln!("cannot write {budget_path}: {e}");
            return ExitCode::from(2);
        }
        println!("alloc_check: wrote {budget_path} ({} budget(s))", stages.len());
        return ExitCode::SUCCESS;
    }

    let violations = check(&stages, &budgets, flags.contains(&"--ratchet"));
    if violations.is_empty() {
        println!(
            "alloc_check: {} stage(s) within {} budget(s)",
            stages.len(),
            budgets.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("alloc_check: {} violation(s) against {budget_path}", violations.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "allocations": {
    "stages": [
      {"stage": "pipeline_1_thread", "alloc_events": 4000, "unit": "doc", "per_unit": 200.0000},
      {"stage": "sim_batched_steady", "alloc_events": 0, "unit": "mention", "per_unit": 0.0000}
    ],
    "steady_state_sim_allocs_per_mention": 0.0000
  }
}
"#;

    fn budgets(text: &str) -> BTreeMap<String, f64> {
        parse_budgets(text).unwrap()
    }

    #[test]
    fn parses_the_bench_report_stages() {
        let stages = parse_stages(REPORT).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "pipeline_1_thread");
        assert_eq!(stages[0].1, 200.0);
        assert_eq!(stages[1], ("sim_batched_steady".to_string(), 0.0));
    }

    #[test]
    fn rejects_reports_without_stages() {
        assert!(parse_stages("{\"runs\": []}").is_none());
    }

    #[test]
    fn parses_budget_tables_and_rejects_malformed_lines() {
        let b = budgets("# comment\n[budgets]\n\"a\" = 1.5\n\"b\" = 0.01\n");
        assert_eq!(b.get("a"), Some(&1.5));
        assert_eq!(b.get("b"), Some(&0.01));
        assert!(parse_budgets("\"a\" = not-a-number\n").is_none());
    }

    #[test]
    fn in_budget_stages_pass() {
        let stages = parse_stages(REPORT).unwrap();
        let b = budgets("\"pipeline_1_thread\" = 250.0\n\"sim_batched_steady\" = 0.01\n");
        assert!(check(&stages, &b, true).is_empty());
    }

    /// The seeded violation: a regressed stage must trip the gate.
    #[test]
    fn seeded_exceeded_stage_fires_the_gate() {
        let stages = vec![
            ("pipeline_1_thread".to_string(), 300.0),
            ("sim_batched_steady".to_string(), 2.5),
        ];
        let b = budgets("\"pipeline_1_thread\" = 250.0\n\"sim_batched_steady\" = 0.01\n");
        let violations = check(&stages, &b, false);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().all(|v| v.contains("exceeded")), "{violations:?}");
    }

    #[test]
    fn unbudgeted_and_orphaned_stages_fail() {
        let stages = vec![("brand_new_stage".to_string(), 1.0)];
        let b = budgets("\"removed_stage\" = 5.0\n");
        let violations = check(&stages, &b, false);
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("no budget"));
        assert!(violations[1].contains("no such stage"));
    }

    #[test]
    fn stale_budgets_fail_only_under_ratchet() {
        let stages = vec![("pipeline_1_thread".to_string(), 10.0)];
        let b = budgets("\"pipeline_1_thread\" = 100.0\n");
        assert!(check(&stages, &b, false).is_empty());
        let violations = check(&stages, &b, true);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("stale"));
    }

    #[test]
    fn near_zero_budgets_are_never_stale() {
        let stages = vec![("sim_batched_steady".to_string(), 0.0)];
        let b = budgets("\"sim_batched_steady\" = 0.01\n");
        assert!(check(&stages, &b, true).is_empty());
    }

    #[test]
    fn write_budgets_tightens_but_never_loosens() {
        let stages = vec![
            ("pipeline_1_thread".to_string(), 100.0),
            ("sim_batched_steady".to_string(), 0.0),
        ];
        // Old budgets: one too loose (shrinks to measured × 1.25), one
        // already tighter than measured × 1.25 (kept).
        let old = budgets("\"pipeline_1_thread\" = 400.0\n\"sim_batched_steady\" = 0.01\n");
        let rendered = render_budgets(&stages, &old);
        let fresh = budgets(&rendered);
        assert_eq!(fresh.get("pipeline_1_thread"), Some(&125.0));
        assert_eq!(fresh.get("sim_batched_steady"), Some(&0.01));
        // Round-trips through the parser, and the header documents the rules.
        assert!(rendered.contains("[budgets]"));
        assert!(rendered.contains("shrink-only"));
    }
}
