//! Allocation-ratchet gate: compares the per-stage allocation figures of a
//! freshly produced `BENCH_throughput.json` (written by `experiments
//! bench_throughput`, whose binary installs the counting allocator) against
//! the shrink-only budgets in `alloc.toml` and exits non-zero on a
//! violation.
//!
//! Semantics mirror `lint.toml` (DESIGN.md §9):
//!
//! - **exceeded** — a stage's measured per-unit allocation events are above
//!   its budget: the hot path regressed; always fails.
//! - **absorb** — a measured stage with no budget line fails until a budget
//!   is written down (run `--write-budgets` and review the diff); nothing
//!   is absorbed silently.
//! - **stale** — with `--ratchet`, a budget more than twice the measured
//!   value (and above the `STALE_FLOOR` noise floor) fails: headroom that
//!   loose would hide a real regression, so the budget must shrink. The
//!   measured side is floored at `STALE_EPSILON` so a near-zero
//!   measurement (a stage pre-warmed by earlier bench stages) cannot mark
//!   every small hand-set budget stale. A budget annotated
//!   `# ned-alloc: pinned` (same line, or the comment block directly
//!   above) is exempt from the stale check entirely — reviewed cold-start
//!   headroom stays put — but still fails when *exceeded*.
//!
//! `--write-budgets` regenerates `alloc.toml` at `measured × 1.25`
//! headroom, but never *raises* an existing budget — the ratchet only
//! tightens; loosening is a hand edit that shows up in review. Pinned
//! budgets are carried through regeneration unchanged, marker included.
//!
//! Budgets are calibrated on the quick-scale CI run. Only single-threaded
//! stages are budgeted: multi-thread allocation counts depend on how the
//! scheduler splits doc chunks across workers (each worker grows its own
//! scratch arena), so they are reported in the JSON but not gated.
//!
//! Usage:
//!   alloc_check <BENCH_throughput.json> <alloc.toml> [--ratchet | --write-budgets]

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Budgets at or below this per-unit value are never stale: near-zero
/// stages (the whole point of the ratchet) would otherwise thrash between
/// "shrink it" and "0.0 forbids everything".
const STALE_FLOOR: f64 = 1.0;

/// Floor applied to the *measured* side of the stale comparison. A stage
/// that measures ~0 on CI only because earlier stages pre-warmed the
/// thread would otherwise flag any budget above `STALE_FLOOR` as stale —
/// the misfire the hand-edited `sim_batched_warmup = 1.00` entry
/// documented before this floor existed.
const STALE_EPSILON: f64 = 0.5;

/// The comment marker exempting a budget from the stale check.
const PIN_MARKER: &str = "ned-alloc: pinned";

/// Headroom factor applied by `--write-budgets` over the measured value,
/// absorbing run-to-run jitter (thread spawn bookkeeping, map resize
/// boundaries) without hiding a real regression.
const HEADROOM: f64 = 1.25;

/// Extracts `(stage, per_unit)` pairs from the `"stages"` array of the
/// bench report. Stage objects are one-per-line by construction (see
/// `bench_throughput::render_json`), so a line-oriented scan is sufficient.
/// Returns `None` when no well-formed stage line exists.
fn parse_stages(json: &str) -> Option<Vec<(String, f64)>> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"stage\": \"") else {
            continue;
        };
        let (stage, rest) = rest.split_once('"')?;
        let per_unit = rest
            .split_once("\"per_unit\":")
            .and_then(|(_, v)| v.trim().trim_end_matches(['}', ',']).trim().parse::<f64>().ok())?;
        out.push((stage.to_string(), per_unit));
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// One parsed budget line.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Budget {
    /// Allowed allocation events per unit of work.
    value: f64,
    /// `# ned-alloc: pinned` — reviewed headroom exempt from the stale
    /// check (but not from the exceeded check).
    pinned: bool,
}

/// Parses the `[budgets]` table of `alloc.toml`: lines of the form
/// `"stage" = 12.34`, optionally trailed by a comment. A
/// `# ned-alloc: pinned` marker on the budget line, or anywhere in the
/// comment block directly above it (no blank line between), pins the
/// budget. Returns `None` on any malformed entry.
fn parse_budgets(toml: &str) -> Option<BTreeMap<String, Budget>> {
    let mut out = BTreeMap::new();
    let mut pending_pin = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('[') {
            pending_pin = false;
            continue;
        }
        if line.starts_with('#') {
            pending_pin = pending_pin || line.contains(PIN_MARKER);
            continue;
        }
        let (key, value) = line.split_once('=')?;
        let key = key.trim().trim_matches('"').to_string();
        let (value, trailing) = match value.split_once('#') {
            Some((v, c)) => (v, c),
            None => (value, ""),
        };
        let value: f64 = value.trim().parse().ok()?;
        let pinned = pending_pin || trailing.contains(PIN_MARKER);
        pending_pin = false;
        out.insert(key, Budget { value, pinned });
    }
    Some(out)
}

/// Applies the ratchet rules; returns one message per violation.
fn check(
    stages: &[(String, f64)],
    budgets: &BTreeMap<String, Budget>,
    ratchet: bool,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (stage, measured) in stages {
        match budgets.get(stage) {
            None => violations.push(format!(
                "stage {stage}: measured {measured:.4} allocs/unit but no budget in \
                 alloc.toml (new stage? run alloc_check --write-budgets and review)"
            )),
            Some(b) if *measured > b.value => violations.push(format!(
                "stage {stage}: exceeded — measured {measured:.4} allocs/unit over \
                 budget {budget:.4} (the hot path regressed, or the budget needs a \
                 reviewed hand edit)",
                budget = b.value,
            )),
            Some(b)
                if ratchet
                    && !b.pinned
                    && b.value > STALE_FLOOR
                    && b.value > 2.0 * measured.max(STALE_EPSILON) =>
            {
                violations.push(format!(
                    "stage {stage}: stale — budget {budget:.4} is more than twice the \
                     measured {measured:.4}; shrink it (alloc_check --write-budgets) or \
                     pin it (# ned-alloc: pinned)",
                    budget = b.value,
                ));
            }
            Some(_) => {}
        }
    }
    for stage in budgets.keys() {
        if !stages.iter().any(|(s, _)| s == stage) {
            violations.push(format!(
                "budget {stage}: no such stage in the bench report (renamed or removed? \
                 drop the budget line)"
            ));
        }
    }
    violations
}

/// Renders a fresh `alloc.toml`: `measured × HEADROOM`, capped at the old
/// budget when one exists (tighten-only), with a small positive floor so a
/// zero-allocation stage still has a budget the gate can enforce. Pinned
/// budgets pass through unchanged, marker included — regeneration must not
/// silently unpin reviewed headroom.
fn render_budgets(stages: &[(String, f64)], old: &BTreeMap<String, Budget>) -> String {
    let mut out = String::from(
        "# Allocation ratchet — shrink-only per-stage budgets on allocation events\n\
         # per unit of work, measured by the counting allocator installed in the\n\
         # ned-bench harness (see ned_obs::alloc and DESIGN.md \u{a7}12).\n\
         #\n\
         # Checked in CI by `alloc_check BENCH_throughput.json alloc.toml --ratchet`\n\
         # against the quick-scale bench report. Semantics mirror lint.toml:\n\
         #   exceeded  measured > budget                          -> fail\n\
         #   absorb    measured stage without a budget line       -> fail (write it down)\n\
         #   stale     budget > 2 x max(measured, 0.5), budget > 1 -> fail under --ratchet\n\
         # A `# ned-alloc: pinned` marker on (or directly above) a budget line\n\
         # exempts it from the stale check only — reviewed cold-start headroom.\n\
         # Regenerate with `cargo run -p ned-bench --bin alloc_check --\n\
         #   BENCH_throughput.json alloc.toml --write-budgets` — regeneration never\n\
         # raises an existing budget; loosening is a reviewed hand edit.\n\
         \n\
         [budgets]\n",
    );
    let mut entries: BTreeMap<&str, Budget> = BTreeMap::new();
    for (stage, measured) in stages {
        let budget = match old.get(stage) {
            Some(b) if b.pinned => *b,
            other => {
                let fresh = ((measured * HEADROOM * 100.0).ceil() / 100.0).max(0.01);
                Budget { value: other.map_or(fresh, |b| fresh.min(b.value)), pinned: false }
            }
        };
        entries.insert(stage, budget);
    }
    for (stage, budget) in entries {
        if budget.pinned {
            out.push_str(&format!("\"{stage}\" = {:.2} # {PIN_MARKER}\n", budget.value));
        } else {
            out.push_str(&format!("\"{stage}\" = {:.2}\n", budget.value));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> =
        args.iter().filter(|a| a.starts_with("--")).map(|a| a.as_str()).collect();
    let paths: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|a| a.as_str()).collect();
    let [bench_path, budget_path] = paths.as_slice() else {
        eprintln!("usage: alloc_check <BENCH_throughput.json> <alloc.toml> [--ratchet | --write-budgets]");
        return ExitCode::from(2);
    };
    let bench = match std::fs::read_to_string(bench_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {bench_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(stages) = parse_stages(&bench) else {
        eprintln!("{bench_path}: no well-formed \"stages\" entries (old bench format?)");
        return ExitCode::from(2);
    };
    let budgets = match std::fs::read_to_string(budget_path) {
        Ok(text) => match parse_budgets(&text) {
            Some(b) => b,
            None => {
                eprintln!("{budget_path}: malformed budget entry");
                return ExitCode::from(2);
            }
        },
        // A missing budget file is an empty baseline: every stage then
        // fails as unbudgeted until --write-budgets creates it.
        Err(_) => BTreeMap::new(),
    };

    if flags.contains(&"--write-budgets") {
        let rendered = render_budgets(&stages, &budgets);
        if let Err(e) = std::fs::write(budget_path, &rendered) {
            eprintln!("cannot write {budget_path}: {e}");
            return ExitCode::from(2);
        }
        println!("alloc_check: wrote {budget_path} ({} budget(s))", stages.len());
        return ExitCode::SUCCESS;
    }

    let violations = check(&stages, &budgets, flags.contains(&"--ratchet"));
    if violations.is_empty() {
        println!(
            "alloc_check: {} stage(s) within {} budget(s)",
            stages.len(),
            budgets.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("alloc_check: {} violation(s) against {budget_path}", violations.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "allocations": {
    "stages": [
      {"stage": "pipeline_1_thread", "alloc_events": 4000, "unit": "doc", "per_unit": 200.0000},
      {"stage": "sim_batched_steady", "alloc_events": 0, "unit": "mention", "per_unit": 0.0000}
    ],
    "steady_state_sim_allocs_per_mention": 0.0000
  }
}
"#;

    fn budgets(text: &str) -> BTreeMap<String, Budget> {
        parse_budgets(text).unwrap()
    }

    fn value_of(b: &BTreeMap<String, Budget>, key: &str) -> Option<f64> {
        b.get(key).map(|b| b.value)
    }

    #[test]
    fn parses_the_bench_report_stages() {
        let stages = parse_stages(REPORT).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "pipeline_1_thread");
        assert_eq!(stages[0].1, 200.0);
        assert_eq!(stages[1], ("sim_batched_steady".to_string(), 0.0));
    }

    #[test]
    fn rejects_reports_without_stages() {
        assert!(parse_stages("{\"runs\": []}").is_none());
    }

    #[test]
    fn parses_budget_tables_and_rejects_malformed_lines() {
        let b = budgets("# comment\n[budgets]\n\"a\" = 1.5\n\"b\" = 0.01\n");
        assert_eq!(value_of(&b, "a"), Some(1.5));
        assert_eq!(value_of(&b, "b"), Some(0.01));
        assert!(!b["a"].pinned && !b["b"].pinned);
        assert!(parse_budgets("\"a\" = not-a-number\n").is_none());
    }

    #[test]
    fn pin_markers_parse_from_trailing_and_preceding_comments() {
        let b = budgets(
            "[budgets]\n\
             \"inline\" = 2.0 # ned-alloc: pinned — reviewed headroom\n\
             # cold-start growth, see bench notes\n\
             # ned-alloc: pinned\n\
             \"above\" = 3.0\n\
             # an ordinary comment\n\
             \"plain\" = 4.0\n",
        );
        assert!(b["inline"].pinned);
        assert!(b["above"].pinned);
        assert!(!b["plain"].pinned);
    }

    #[test]
    fn blank_lines_detach_pin_markers() {
        let b = budgets("# ned-alloc: pinned\n\n\"a\" = 2.0\n");
        assert!(!b["a"].pinned, "a blank line ends the comment block");
    }

    #[test]
    fn in_budget_stages_pass() {
        let stages = parse_stages(REPORT).unwrap();
        let b = budgets("\"pipeline_1_thread\" = 250.0\n\"sim_batched_steady\" = 0.01\n");
        assert!(check(&stages, &b, true).is_empty());
    }

    /// The seeded violation: a regressed stage must trip the gate.
    #[test]
    fn seeded_exceeded_stage_fires_the_gate() {
        let stages = vec![
            ("pipeline_1_thread".to_string(), 300.0),
            ("sim_batched_steady".to_string(), 2.5),
        ];
        let b = budgets("\"pipeline_1_thread\" = 250.0\n\"sim_batched_steady\" = 0.01\n");
        let violations = check(&stages, &b, false);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().all(|v| v.contains("exceeded")), "{violations:?}");
    }

    #[test]
    fn unbudgeted_and_orphaned_stages_fail() {
        let stages = vec![("brand_new_stage".to_string(), 1.0)];
        let b = budgets("\"removed_stage\" = 5.0\n");
        let violations = check(&stages, &b, false);
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("no budget"));
        assert!(violations[1].contains("no such stage"));
    }

    #[test]
    fn stale_budgets_fail_only_under_ratchet() {
        let stages = vec![("pipeline_1_thread".to_string(), 10.0)];
        let b = budgets("\"pipeline_1_thread\" = 100.0\n");
        assert!(check(&stages, &b, false).is_empty());
        let violations = check(&stages, &b, true);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("stale"));
    }

    #[test]
    fn near_zero_budgets_are_never_stale() {
        let stages = vec![("sim_batched_steady".to_string(), 0.0)];
        let b = budgets("\"sim_batched_steady\" = 0.01\n");
        assert!(check(&stages, &b, true).is_empty());
    }

    /// The seeded misfire: a stage measuring ~0 on CI (pre-warmed by
    /// earlier stages) with a small hand-set cold-start budget must not be
    /// stale — the epsilon floor keeps `2 × measured` from collapsing to 0.
    #[test]
    fn stale_epsilon_floors_near_zero_measurements() {
        let stages = vec![("sim_batched_warmup".to_string(), 0.0)];
        let b = budgets("\"sim_batched_warmup\" = 1.00\n");
        assert!(check(&stages, &b, true).is_empty(), "budget 1.0 vs 2×max(0, 0.5)");
        // Without the pin, noticeably more headroom is still stale.
        let loose = budgets("\"sim_batched_warmup\" = 1.01\n");
        let violations = check(&stages, &loose, true);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("stale"), "{violations:?}");
    }

    /// The seeded escape: a pinned budget is exempt from the stale check
    /// no matter how loose, but an exceeded pinned budget still fails.
    #[test]
    fn pinned_budgets_skip_stale_but_not_exceeded() {
        let stages = vec![("sim_batched_warmup".to_string(), 1.0)];
        let pinned = budgets("\"sim_batched_warmup\" = 50.0 # ned-alloc: pinned\n");
        assert!(check(&stages, &pinned, true).is_empty());
        let unpinned = budgets("\"sim_batched_warmup\" = 50.0\n");
        assert_eq!(check(&stages, &unpinned, true).len(), 1);
        let regressed = vec![("sim_batched_warmup".to_string(), 60.0)];
        let violations = check(&regressed, &pinned, true);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("exceeded"), "{violations:?}");
    }

    #[test]
    fn write_budgets_tightens_but_never_loosens() {
        let stages = vec![
            ("pipeline_1_thread".to_string(), 100.0),
            ("sim_batched_steady".to_string(), 0.0),
        ];
        // Old budgets: one too loose (shrinks to measured × 1.25), one
        // already tighter than measured × 1.25 (kept).
        let old = budgets("\"pipeline_1_thread\" = 400.0\n\"sim_batched_steady\" = 0.01\n");
        let rendered = render_budgets(&stages, &old);
        let fresh = budgets(&rendered);
        assert_eq!(value_of(&fresh, "pipeline_1_thread"), Some(125.0));
        assert_eq!(value_of(&fresh, "sim_batched_steady"), Some(0.01));
        // Round-trips through the parser, and the header documents the rules.
        assert!(rendered.contains("[budgets]"));
        assert!(rendered.contains("shrink-only"));
    }

    #[test]
    fn write_budgets_carries_pinned_entries_through() {
        let stages = vec![("sim_batched_warmup".to_string(), 0.0)];
        let old = budgets("\"sim_batched_warmup\" = 1.00 # ned-alloc: pinned\n");
        let rendered = render_budgets(&stages, &old);
        let fresh = budgets(&rendered);
        assert_eq!(value_of(&fresh, "sim_batched_warmup"), Some(1.0), "not tightened to 0.01");
        assert!(fresh["sim_batched_warmup"].pinned, "marker survives: {rendered}");
    }
}
