//! Snapshot migration tool: v2 (monolithic) → v3 (sectioned, per-frame
//! checksummed), plus the self-check CI runs as the migration smoke.
//!
//! Usage:
//!
//! ```text
//! kb_migrate               # self-check: fixture -> v2 -> freeze-on-load ->
//!                          # v3 -> re-load, verifying stats and checksums
//! kb_migrate <in> <out>    # migrate a v2 (or v3) snapshot file to v3
//! ```
//!
//! Both modes exit non-zero on any validation failure, so the smoke can
//! gate CI directly.

use std::process::ExitCode;

use ned_core::{NedError, SnapshotError};
use ned_kb::snapshot::{read_frozen_snapshot, write_frozen_snapshot, write_snapshot};
use ned_kb::{EntityKind, KbBuilder};

fn fail(context: &str, err: impl std::fmt::Display) -> ExitCode {
    eprintln!("kb_migrate: {context}: {err}");
    ExitCode::FAILURE
}

/// The fixture world for the self-check: ambiguity, links, keyphrases.
fn fixture() -> ned_kb::KnowledgeBase {
    let mut builder = KbBuilder::new();
    let song = builder.add_entity("Kashmir (song)", EntityKind::Work);
    let region = builder.add_entity("Kashmir (region)", EntityKind::Location);
    let band = builder.add_entity("Led Zeppelin", EntityKind::Organization);
    builder.add_name(song, "Kashmir", 30);
    builder.add_name(region, "Kashmir", 70);
    builder.add_name(band, "Led Zeppelin", 40);
    builder.add_keyphrase(song, "hard rock", 2);
    builder.add_keyphrase(region, "Himalaya mountains", 4);
    builder.add_keyphrase(band, "english rock band", 3);
    builder.add_link(song, band);
    builder.add_link(band, song);
    builder.build()
}

/// Fixture → v2 bytes → freeze-on-load → v3 bytes → re-load; verifies the
/// round-trip preserves every section and that the per-section checksums
/// actually reject corruption.
fn self_check() -> ExitCode {
    let kb = fixture();
    let mut v2 = Vec::new();
    if let Err(e) = write_snapshot(&kb, &mut v2) {
        return fail("writing v2 fixture", e);
    }

    // The migration path under test: a legacy v2 stream loads straight into
    // the frozen form.
    let frozen = match read_frozen_snapshot(&v2[..]) {
        Ok(f) => f,
        Err(e) => return fail("freeze-on-load of the v2 fixture", e),
    };

    let mut v3 = Vec::new();
    if let Err(e) = write_frozen_snapshot(&frozen, &mut v3) {
        return fail("writing v3", e);
    }
    let reloaded = match read_frozen_snapshot(&v3[..]) {
        Ok(f) => f,
        Err(e) => return fail("re-reading v3", e),
    };

    if reloaded.stats() != frozen.stats() {
        eprintln!(
            "kb_migrate: v3 round-trip changed section stats:\n  wrote {:?}\n  read  {:?}",
            frozen.stats(),
            reloaded.stats()
        );
        return ExitCode::FAILURE;
    }
    if reloaded.entity_by_name("Led Zeppelin") != kb.entity_by_name("Led Zeppelin") {
        eprintln!("kb_migrate: transient by-name index missing after v3 load");
        return ExitCode::FAILURE;
    }

    // Per-section checksum verification: flipping one body bit must be
    // rejected with the *named* section, not decoded into garbage.
    let mut corrupt = v3.clone();
    let last = corrupt.len() - 1; // final weights-frame body byte
    corrupt[last] ^= 0x01;
    match read_frozen_snapshot(&corrupt[..]) {
        Err(NedError::Snapshot(SnapshotError::SectionChecksumMismatch { section, .. })) => {
            println!("checksum probe: bit flip rejected in section {section:?}");
        }
        Err(e) => return fail("checksum probe: wrong error for corrupt section", e),
        Ok(_) => {
            eprintln!("kb_migrate: checksum probe: corrupt v3 snapshot decoded successfully");
            return ExitCode::FAILURE;
        }
    }

    let s = frozen.stats();
    println!(
        "migration smoke ok: {} entities, {} name pairs, {} link edges, {} keyphrase entries; \
         v2 {} bytes -> v3 {} bytes",
        s.entity_count,
        s.dictionary_pairs,
        s.link_edges,
        s.keyphrase_entries,
        v2.len(),
        v3.len()
    );
    ExitCode::SUCCESS
}

/// Migrates a snapshot file (v2 or v3) to v3.
fn migrate(input: &str, output: &str) -> ExitCode {
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => return fail(input, e),
    };
    let frozen = match read_frozen_snapshot(&bytes[..]) {
        Ok(f) => f,
        Err(e) => return fail(input, e),
    };
    let mut out = Vec::new();
    if let Err(e) = write_frozen_snapshot(&frozen, &mut out) {
        return fail(output, e);
    }
    if let Err(e) = std::fs::write(output, &out) {
        return fail(output, e);
    }
    let s = frozen.stats();
    println!(
        "{input} ({} bytes) -> {output} ({} bytes, v3): {} entities, {} total section bytes",
        bytes.len(),
        out.len(),
        s.entity_count,
        s.total_bytes
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => self_check(),
        [input, output] => migrate(input, output),
        _ => {
            eprintln!("usage: kb_migrate [<in-snapshot> <out-snapshot>]");
            ExitCode::FAILURE
        }
    }
}
