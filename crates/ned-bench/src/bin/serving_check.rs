//! Serving-bench gate: validates `BENCH_serving.json` (written by
//! `experiments bench_serving`) and exits non-zero when the report is
//! malformed or its accounting does not balance.
//!
//! Checked per step row, exactly:
//!   - `offered == accepted + rejected`
//!   - `accepted == ok + degraded + failed`
//!   - `shedded <= failed` (sheds are a flavor of failed)
//!   - `p50_ns <= p95_ns <= p99_ns <= p999_ns`
//!
//! Checked globally:
//!   - at least 3 open-loop steps and at least 3 closed-loop steps
//!   - `"virtual_deterministic": true` (the bit-identical virtual sweep)
//!
//! Usage:
//!   serving_check <BENCH_serving.json>

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;

/// One parsed step row. Rows are written one per line by the bench, so a
/// line-oriented scan is sufficient (as in `metrics_check`).
#[derive(Debug, Clone, PartialEq)]
struct Step {
    mode: String,
    load: String,
    offered: u64,
    accepted: u64,
    rejected: u64,
    ok: u64,
    degraded: u64,
    failed: u64,
    shedded: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

/// Extracts a string field (`"key": "value"`) from a one-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = start + line[start..].find('"')?;
    Some(line[start..end].to_string())
}

/// Extracts an unsigned integer field (`"key": 123`) from a one-line JSON
/// object.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String =
        line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn parse_step(line: &str) -> Option<Step> {
    Some(Step {
        mode: str_field(line, "mode")?,
        load: str_field(line, "load")?,
        offered: u64_field(line, "offered")?,
        accepted: u64_field(line, "accepted")?,
        rejected: u64_field(line, "rejected")?,
        ok: u64_field(line, "ok")?,
        degraded: u64_field(line, "degraded")?,
        failed: u64_field(line, "failed")?,
        shedded: u64_field(line, "shedded")?,
        p50_ns: u64_field(line, "p50_ns")?,
        p95_ns: u64_field(line, "p95_ns")?,
        p99_ns: u64_field(line, "p99_ns")?,
        p999_ns: u64_field(line, "p999_ns")?,
    })
}

/// Parses the `"steps"` array (one row object per line) plus the
/// `virtual_deterministic` flag.
fn parse_report(json: &str) -> Result<(Vec<Step>, bool), String> {
    let deterministic = json.contains("\"virtual_deterministic\": true");
    if !deterministic && !json.contains("\"virtual_deterministic\": false") {
        return Err("missing \"virtual_deterministic\" flag".to_string());
    }
    let mut steps = Vec::new();
    let mut in_steps = false;
    for line in json.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"steps\"") {
            in_steps = true;
            continue;
        }
        if in_steps {
            if trimmed.starts_with(']') {
                break;
            }
            let step = parse_step(trimmed)
                .ok_or_else(|| format!("malformed step row: {trimmed}"))?;
            steps.push(step);
        }
    }
    if steps.is_empty() {
        return Err("no step rows found".to_string());
    }
    Ok((steps, deterministic))
}

/// All validation failures for a parsed report.
fn validate(steps: &[Step], deterministic: bool) -> Vec<String> {
    let mut errors = Vec::new();
    if !deterministic {
        errors.push("virtual-time sweep was not bit-identical across invocations".to_string());
    }
    let open = steps.iter().filter(|s| s.mode.starts_with("open")).count();
    let closed = steps.iter().filter(|s| s.mode == "closed").count();
    if open < 3 {
        errors.push(format!("need >= 3 open-loop steps, found {open}"));
    }
    if closed < 3 {
        errors.push(format!("need >= 3 closed-loop steps, found {closed}"));
    }
    for s in steps {
        let ctx = format!("{} {}", s.mode, s.load);
        if s.offered != s.accepted + s.rejected {
            errors.push(format!(
                "{ctx}: offered ({}) != accepted ({}) + rejected ({})",
                s.offered, s.accepted, s.rejected
            ));
        }
        if s.accepted != s.ok + s.degraded + s.failed {
            errors.push(format!(
                "{ctx}: accepted ({}) != ok ({}) + degraded ({}) + failed ({})",
                s.accepted, s.ok, s.degraded, s.failed
            ));
        }
        if s.shedded > s.failed {
            errors.push(format!("{ctx}: shedded ({}) > failed ({})", s.shedded, s.failed));
        }
        if !(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.p999_ns) {
            errors.push(format!(
                "{ctx}: percentiles not monotone: {} {} {} {}",
                s.p50_ns, s.p95_ns, s.p99_ns, s.p999_ns
            ));
        }
    }
    errors
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: serving_check <BENCH_serving.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (steps, deterministic) = match parse_report(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let errors = validate(&steps, deterministic);
    if errors.is_empty() {
        println!(
            "serving_check: {} step rows balance exactly (virtual sweep deterministic)",
            steps.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{e}");
        }
        eprintln!("serving_check: {} violation(s) in {path}", errors.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mode: &str, load: &str, counts: (u64, u64, u64, u64, u64, u64, u64)) -> String {
        let (offered, accepted, rejected, ok, degraded, failed, shedded) = counts;
        format!(
            "    {{\"mode\": \"{mode}\", \"load\": \"{load}\", \"offered\": {offered}, \
             \"accepted\": {accepted}, \"rejected\": {rejected}, \"ok\": {ok}, \
             \"degraded\": {degraded}, \"failed\": {failed}, \"shedded\": {shedded}, \
             \"queue_depth_peak\": 4, \"throughput_rps\": 1000.5, \"p50_ns\": 1, \
             \"p95_ns\": 2, \"p99_ns\": 3, \"p999_ns\": 4}}"
        )
    }

    fn report(rows: &[String], deterministic: bool) -> String {
        format!(
            "{{\n  \"virtual_deterministic\": {deterministic},\n  \"steps\": [\n{}\n  ],\n  \
             \"serve_metrics_at_2x\": {{\n  }}\n}}\n",
            rows.join(",\n")
        )
    }

    fn good_rows() -> Vec<String> {
        vec![
            row("open-virtual", "0.5x", (100, 100, 0, 100, 0, 0, 0)),
            row("open-virtual", "2x", (100, 80, 20, 50, 25, 5, 3)),
            row("open-realtime", "2x", (100, 90, 10, 80, 10, 0, 0)),
            row("closed", "users=1", (40, 40, 0, 40, 0, 0, 0)),
            row("closed", "users=2", (80, 80, 0, 75, 5, 0, 0)),
            row("closed", "users=4", (160, 160, 0, 150, 10, 0, 0)),
        ]
    }

    #[test]
    fn accepts_a_balanced_report() {
        let (steps, det) = parse_report(&report(&good_rows(), true)).unwrap();
        assert_eq!(steps.len(), 6);
        assert!(validate(&steps, det).is_empty());
    }

    #[test]
    fn rejects_broken_conservation() {
        let mut rows = good_rows();
        rows[1] = row("open-virtual", "2x", (100, 80, 20, 50, 25, 4, 3));
        let (steps, det) = parse_report(&report(&rows, true)).unwrap();
        let errors = validate(&steps, det);
        assert!(errors.iter().any(|e| e.contains("accepted (80) != ok (50)")), "{errors:?}");
    }

    #[test]
    fn rejects_offered_mismatch_and_over_shed() {
        let mut rows = good_rows();
        rows[2] = row("open-realtime", "2x", (100, 90, 11, 80, 10, 0, 0));
        rows[3] = row("closed", "users=1", (40, 40, 0, 30, 5, 5, 6));
        let (steps, det) = parse_report(&report(&rows, true)).unwrap();
        let errors = validate(&steps, det);
        assert!(errors.iter().any(|e| e.contains("offered (100)")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("shedded (6) > failed (5)")), "{errors:?}");
    }

    #[test]
    fn requires_three_steps_per_mode_and_determinism() {
        let rows = vec![
            row("open-virtual", "1x", (10, 10, 0, 10, 0, 0, 0)),
            row("closed", "users=1", (10, 10, 0, 10, 0, 0, 0)),
        ];
        let (steps, det) = parse_report(&report(&rows, false)).unwrap();
        let errors = validate(&steps, det);
        assert!(errors.iter().any(|e| e.contains(">= 3 open-loop")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains(">= 3 closed-loop")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("not bit-identical")), "{errors:?}");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"virtual_deterministic\": true, \"steps\": [\n  ]\n}").is_err());
        let bad = "{\"virtual_deterministic\": true,\n  \"steps\": [\n    {\"mode\": 3}\n  ]\n}";
        assert!(parse_report(bad).is_err());
    }

    #[test]
    fn non_monotone_percentiles_are_flagged() {
        let line = "    {\"mode\": \"closed\", \"load\": \"users=8\", \"offered\": 10, \
                    \"accepted\": 10, \"rejected\": 0, \"ok\": 10, \"degraded\": 0, \
                    \"failed\": 0, \"shedded\": 0, \"queue_depth_peak\": 1, \
                    \"throughput_rps\": 5.0, \"p50_ns\": 9, \"p95_ns\": 2, \"p99_ns\": 3, \
                    \"p999_ns\": 4}";
        let mut rows = good_rows();
        rows.push(line.to_string());
        let (steps, det) = parse_report(&report(&rows, true)).unwrap();
        let errors = validate(&steps, det);
        assert!(errors.iter().any(|e| e.contains("percentiles not monotone")), "{errors:?}");
    }
}
