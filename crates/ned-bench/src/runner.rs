//! Shared evaluation plumbing: run a method over a document set (in
//! parallel) and compute the standard measures.
//!
//! Documents fan out over rayon's pool; results come back in input order
//! regardless of the thread count, so parallel and sequential runs produce
//! byte-identical [`Evaluation`]s. The throughput benchmark uses
//! [`run_method_with_threads`] to pin the pool size explicitly.

use rayon::prelude::*;

use ned_aida::NedMethod;
use ned_eval::gold::{GoldDoc, Label};
use ned_eval::map::RankedItem;
use ned_eval::{macro_accuracy, micro_accuracy};

/// Per-document outcome: gold labels, predicted labels, and per-mention
/// confidences (method-specific; used for MAP).
#[derive(Debug, Clone, Default)]
pub struct DocOutcome {
    /// Gold labels.
    pub gold: Vec<Label>,
    /// Predicted labels.
    pub predicted: Vec<Label>,
    /// Per-mention confidence (normalized score by default).
    pub confidence: Vec<f64>,
}

/// Aggregated evaluation of a method over a corpus.
#[derive(Debug, Clone, Default)]
pub struct Evaluation {
    /// Per-document outcomes.
    pub docs: Vec<DocOutcome>,
}

impl Evaluation {
    /// Micro average accuracy (§3.6.1).
    pub fn micro(&self, count_out_of_kb: bool) -> f64 {
        micro_accuracy(
            self.docs.iter().map(|d| (d.gold.as_slice(), d.predicted.as_slice())),
            count_out_of_kb,
        )
    }

    /// Macro average accuracy (§3.6.1).
    pub fn macro_(&self, count_out_of_kb: bool) -> f64 {
        macro_accuracy(
            self.docs.iter().map(|d| (d.gold.as_slice(), d.predicted.as_slice())),
            count_out_of_kb,
        )
    }

    /// Ranked items for MAP: one per in-KB-gold mention.
    pub fn ranked_items(&self) -> Vec<RankedItem> {
        let mut items = Vec::new();
        for d in &self.docs {
            for i in 0..d.gold.len() {
                if d.gold[i].is_none() {
                    continue;
                }
                items.push(RankedItem {
                    confidence: d.confidence.get(i).copied().unwrap_or(0.0),
                    correct: d.gold[i] == d.predicted[i],
                });
            }
        }
        items
    }

    /// Per-document macro accuracies (for paired t-tests), skipping
    /// documents with no counted mentions.
    pub fn doc_accuracies(&self, count_out_of_kb: bool) -> Vec<f64> {
        self.docs
            .iter()
            .map(|d| {
                ned_eval::document_accuracy(&d.gold, &d.predicted, count_out_of_kb)
                    .unwrap_or(1.0)
            })
            .collect()
    }
}

/// Runs `method` over `docs` on rayon's current pool.
pub fn run_method<M: NedMethod + Sync + ?Sized>(method: &M, docs: &[GoldDoc]) -> Evaluation {
    run_per_doc(docs, |doc| outcome_for(method, doc))
}

/// Runs `method` over `docs` on a dedicated pool of `threads` workers
/// (0 = machine default). Output is byte-identical for any thread count.
pub fn run_method_with_threads<M: NedMethod + Sync + ?Sized>(
    method: &M,
    docs: &[GoldDoc],
    threads: usize,
) -> Evaluation {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool");
    pool.install(|| run_method(method, docs))
}

fn outcome_for<M: NedMethod + Sync + ?Sized>(method: &M, doc: &GoldDoc) -> DocOutcome {
    let mentions = doc.bare_mentions();
    let result = method.disambiguate(&doc.tokens, &mentions);
    let confidence = result.assignments.iter().map(|a| a.normalized_score()).collect();
    DocOutcome { gold: doc.gold_labels(), predicted: result.labels(), confidence }
}

/// Runs an arbitrary per-document labeling function over `docs`, fanning
/// out over rayon's current pool (documents are independent; results come
/// back in input order).
pub fn run_per_doc<F>(docs: &[GoldDoc], f: F) -> Evaluation
where
    F: Fn(&GoldDoc) -> DocOutcome + Sync,
{
    Evaluation { docs: docs.par_iter().map(f).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_eval::gold::LabeledMention;
    use ned_kb::EntityId;
    use ned_text::{tokenize, Mention};

    fn doc(id: &str, label: Option<EntityId>) -> GoldDoc {
        let tokens = tokenize("Alpha spoke");
        GoldDoc::new(
            id,
            tokens,
            vec![LabeledMention { mention: Mention::new("Alpha", 0, 1), label }],
            0,
        )
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let docs: Vec<GoldDoc> =
            (0..20).map(|i| doc(&format!("d{i}"), Some(EntityId(i)))).collect();
        let eval = run_per_doc(&docs, |d| DocOutcome {
            gold: d.gold_labels(),
            predicted: d.gold_labels(),
            confidence: vec![1.0; d.mentions.len()],
        });
        assert_eq!(eval.docs.len(), 20);
        assert_eq!(eval.micro(false), 1.0);
        for (i, o) in eval.docs.iter().enumerate() {
            assert_eq!(o.gold, vec![Some(EntityId(i as u32))]);
        }
    }

    #[test]
    fn thread_counts_agree() {
        let docs: Vec<GoldDoc> =
            (0..13).map(|i| doc(&format!("d{i}"), Some(EntityId(i)))).collect();
        let run = |threads: usize| {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                run_per_doc(&docs, |d| DocOutcome {
                    gold: d.gold_labels(),
                    predicted: d.gold_labels(),
                    confidence: vec![0.5; d.mentions.len()],
                })
            })
        };
        let one = run(1);
        for threads in [2, 4, 7] {
            let n = run(threads);
            for (a, b) in one.docs.iter().zip(&n.docs) {
                assert_eq!(a.gold, b.gold);
                assert_eq!(a.predicted, b.predicted);
                assert_eq!(a.confidence, b.confidence);
            }
        }
    }

    #[test]
    fn evaluation_measures() {
        let docs = vec![doc("a", Some(EntityId(1))), doc("b", Some(EntityId(2)))];
        let eval = run_per_doc(&docs, |d| DocOutcome {
            gold: d.gold_labels(),
            predicted: vec![Some(EntityId(1))],
            confidence: vec![0.9],
        });
        assert_eq!(eval.micro(false), 0.5);
        assert_eq!(eval.macro_(false), 0.5);
        assert_eq!(eval.ranked_items().len(), 2);
        assert_eq!(eval.doc_accuracies(false), vec![1.0, 0.0]);
    }
}
