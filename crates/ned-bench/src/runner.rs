//! Shared evaluation plumbing: run a method over a document set (in
//! parallel) and compute the standard measures.
//!
//! Documents fan out over rayon's pool; results come back in input order
//! regardless of the thread count, so parallel and sequential runs produce
//! byte-identical [`Evaluation`]s. The throughput benchmark uses
//! [`run_method_with_threads`] to pin the pool size explicitly.
//!
//! Each work item is additionally isolated with `catch_unwind`: a document
//! that panics its worker (a poisoned input, a faulty feature source)
//! yields a [`DocStatus::Failed`] placeholder outcome instead of aborting
//! the whole batch, and the failure is surfaced through
//! [`Evaluation::failed_count`] rather than silently skewing accuracy.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ned_core::{panic_message, DegradationLevel, NedError};
use rayon::prelude::*;

use ned_aida::NedMethod;
use ned_eval::gold::{GoldDoc, Label};
use ned_eval::map::RankedItem;
use ned_eval::{macro_accuracy, micro_accuracy};

/// Health of one document's run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DocStatus {
    /// Full-fidelity success.
    #[default]
    Ok,
    /// The method succeeded but stepped down the degradation ladder
    /// (solver budget exhausted, poisoned similarity feature, …).
    Degraded(DegradationLevel),
    /// The document's worker panicked; its labels are all-`None`
    /// placeholders and it is excluded from the accuracy measures.
    Failed {
        /// Human-readable cause (the captured panic payload).
        reason: String,
    },
}

impl DocStatus {
    /// Status for a successful run at the given degradation level.
    pub fn from_degradation(level: DegradationLevel) -> Self {
        if level.is_degraded() {
            DocStatus::Degraded(level)
        } else {
            DocStatus::Ok
        }
    }

    /// True for [`DocStatus::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, DocStatus::Failed { .. })
    }

    /// True for [`DocStatus::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, DocStatus::Degraded(_))
    }
}

/// Per-document outcome: gold labels, predicted labels, per-mention
/// confidences (method-specific; used for MAP), and the run's health.
#[derive(Debug, Clone, Default)]
pub struct DocOutcome {
    /// Gold labels.
    pub gold: Vec<Label>,
    /// Predicted labels.
    pub predicted: Vec<Label>,
    /// Per-mention confidence (normalized score by default).
    pub confidence: Vec<f64>,
    /// Health of this document's run.
    pub status: DocStatus,
}

impl DocOutcome {
    /// A healthy full-fidelity outcome.
    pub fn ok(gold: Vec<Label>, predicted: Vec<Label>, confidence: Vec<f64>) -> Self {
        DocOutcome { gold, predicted, confidence, status: DocStatus::Ok }
    }

    /// The placeholder outcome for a document whose worker faulted: gold
    /// labels are kept (for failure accounting), predictions are all
    /// `None`, confidences zero.
    pub fn failed(gold: Vec<Label>, reason: String) -> Self {
        let n = gold.len();
        DocOutcome {
            gold,
            predicted: vec![None; n],
            confidence: vec![0.0; n],
            status: DocStatus::Failed { reason },
        }
    }
}

/// Aggregated evaluation of a method over a corpus.
#[derive(Debug, Clone, Default)]
pub struct Evaluation {
    /// Per-document outcomes.
    pub docs: Vec<DocOutcome>,
}

impl Evaluation {
    /// Documents that completed (possibly degraded); failed documents are
    /// excluded from all accuracy measures so a crashed worker reads as a
    /// reported failure, not as a run of wrong answers.
    fn counted(&self) -> impl Iterator<Item = &DocOutcome> {
        self.docs.iter().filter(|d| !d.status.is_failed())
    }

    /// Number of documents whose worker faulted.
    pub fn failed_count(&self) -> usize {
        self.docs.iter().filter(|d| d.status.is_failed()).count()
    }

    /// Number of documents that completed below full fidelity.
    pub fn degraded_count(&self) -> usize {
        self.docs.iter().filter(|d| d.status.is_degraded()).count()
    }

    /// Micro average accuracy (§3.6.1) over completed documents.
    pub fn micro(&self, count_out_of_kb: bool) -> f64 {
        micro_accuracy(
            self.counted().map(|d| (d.gold.as_slice(), d.predicted.as_slice())),
            count_out_of_kb,
        )
    }

    /// Macro average accuracy (§3.6.1) over completed documents.
    pub fn macro_(&self, count_out_of_kb: bool) -> f64 {
        macro_accuracy(
            self.counted().map(|d| (d.gold.as_slice(), d.predicted.as_slice())),
            count_out_of_kb,
        )
    }

    /// Ranked items for MAP: one per in-KB-gold mention of a completed
    /// document.
    pub fn ranked_items(&self) -> Vec<RankedItem> {
        let mut items = Vec::new();
        for d in self.counted() {
            for i in 0..d.gold.len() {
                if d.gold[i].is_none() {
                    continue;
                }
                items.push(RankedItem {
                    confidence: d.confidence.get(i).copied().unwrap_or(0.0),
                    correct: d.gold[i] == d.predicted[i],
                });
            }
        }
        items
    }

    /// Per-document macro accuracies (for paired t-tests) over completed
    /// documents, skipping documents with no counted mentions.
    pub fn doc_accuracies(&self, count_out_of_kb: bool) -> Vec<f64> {
        self.counted()
            .map(|d| {
                ned_eval::document_accuracy(&d.gold, &d.predicted, count_out_of_kb)
                    .unwrap_or(1.0)
            })
            .collect()
    }

    /// Records per-document health into `metrics`: `doc_status_*` counts
    /// every outcome once, `degradation_level_*` classifies the completed
    /// ones by the ladder rung they finished on. Accounting is a sequential
    /// walk over the already-collected outcomes, so totals are independent
    /// of the thread count that produced them.
    pub fn record_metrics(&self, metrics: &ned_obs::Metrics) {
        use ned_obs::names;
        let ok = metrics.counter(names::DOC_STATUS_OK);
        let degraded = metrics.counter(names::DOC_STATUS_DEGRADED);
        let failed = metrics.counter(names::DOC_STATUS_FAILED);
        let joint = metrics.counter(names::DEGRADATION_LEVEL_JOINT);
        let no_coherence = metrics.counter(names::DEGRADATION_LEVEL_NO_COHERENCE);
        let prior_only = metrics.counter(names::DEGRADATION_LEVEL_PRIOR_ONLY);
        for d in &self.docs {
            match &d.status {
                DocStatus::Ok => {
                    ok.inc();
                    joint.inc();
                }
                DocStatus::Degraded(level) => {
                    degraded.inc();
                    match level {
                        DegradationLevel::NoCoherence => no_coherence.inc(),
                        DegradationLevel::PriorOnly => prior_only.inc(),
                        // Unreachable by construction (from_degradation
                        // maps the undegraded level to Ok), but a full
                        // joint completion is what it would mean.
                        DegradationLevel::None => joint.inc(),
                    }
                }
                DocStatus::Failed { .. } => failed.inc(),
            }
        }
    }
}

/// Runs `method` over `docs` on rayon's current pool.
pub fn run_method<M: NedMethod + Sync + ?Sized>(method: &M, docs: &[GoldDoc]) -> Evaluation {
    run_per_doc(docs, |doc| outcome_for(method, doc))
}

/// Runs `method` over `docs` on a dedicated pool of `threads` workers
/// (0 = machine default). Output is byte-identical for any thread count.
///
/// # Errors
/// Returns [`NedError::Config`] when the thread pool cannot be built.
pub fn run_method_with_threads<M: NedMethod + Sync + ?Sized>(
    method: &M,
    docs: &[GoldDoc],
    threads: usize,
) -> Result<Evaluation, NedError> {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().map_err(|e| {
        NedError::Config { what: "rayon thread pool", message: e.to_string() }
    })?;
    Ok(pool.install(|| run_method(method, docs)))
}

fn outcome_for<M: NedMethod + Sync + ?Sized>(method: &M, doc: &GoldDoc) -> DocOutcome {
    let mentions = doc.bare_mentions();
    let result = method.disambiguate(&doc.tokens, &mentions);
    let confidence = result.assignments.iter().map(|a| a.normalized_score()).collect();
    DocOutcome {
        gold: doc.gold_labels(),
        predicted: result.labels(),
        confidence,
        status: DocStatus::from_degradation(result.degradation),
    }
}

/// Runs an arbitrary per-document labeling function over `docs`, fanning
/// out over rayon's current pool (documents are independent; results come
/// back in input order).
///
/// Each call to `f` runs under `catch_unwind`: a panicking document
/// produces a [`DocOutcome::failed`] placeholder and the remaining
/// documents are unaffected.
pub fn run_per_doc<F>(docs: &[GoldDoc], f: F) -> Evaluation
where
    F: Fn(&GoldDoc) -> DocOutcome + Sync,
{
    let isolated = |doc: &GoldDoc| {
        catch_unwind(AssertUnwindSafe(|| f(doc))).unwrap_or_else(|payload| {
            DocOutcome::failed(doc.gold_labels(), panic_message(payload.as_ref()))
        })
    };
    Evaluation { docs: docs.par_iter().map(isolated).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_eval::gold::LabeledMention;
    use ned_kb::EntityId;
    use ned_text::{tokenize, Mention};

    fn doc(id: &str, label: Option<EntityId>) -> GoldDoc {
        let tokens = tokenize("Alpha spoke");
        GoldDoc::new(
            id,
            tokens,
            vec![LabeledMention { mention: Mention::new("Alpha", 0, 1), label }],
            0,
        )
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let docs: Vec<GoldDoc> =
            (0..20).map(|i| doc(&format!("d{i}"), Some(EntityId(i)))).collect();
        let eval = run_per_doc(&docs, |d| {
            DocOutcome::ok(d.gold_labels(), d.gold_labels(), vec![1.0; d.mentions.len()])
        });
        assert_eq!(eval.docs.len(), 20);
        assert_eq!(eval.micro(false), 1.0);
        for (i, o) in eval.docs.iter().enumerate() {
            assert_eq!(o.gold, vec![Some(EntityId(i as u32))]);
        }
    }

    #[test]
    fn thread_counts_agree() {
        let docs: Vec<GoldDoc> =
            (0..13).map(|i| doc(&format!("d{i}"), Some(EntityId(i)))).collect();
        let run = |threads: usize| {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                run_per_doc(&docs, |d| {
                    DocOutcome::ok(d.gold_labels(), d.gold_labels(), vec![0.5; d.mentions.len()])
                })
            })
        };
        let one = run(1);
        for threads in [2, 4, 7] {
            let n = run(threads);
            for (a, b) in one.docs.iter().zip(&n.docs) {
                assert_eq!(a.gold, b.gold);
                assert_eq!(a.predicted, b.predicted);
                assert_eq!(a.confidence, b.confidence);
            }
        }
    }

    #[test]
    fn evaluation_measures() {
        let docs = vec![doc("a", Some(EntityId(1))), doc("b", Some(EntityId(2)))];
        let eval = run_per_doc(&docs, |d| {
            DocOutcome::ok(d.gold_labels(), vec![Some(EntityId(1))], vec![0.9])
        });
        assert_eq!(eval.micro(false), 0.5);
        assert_eq!(eval.macro_(false), 0.5);
        assert_eq!(eval.ranked_items().len(), 2);
        assert_eq!(eval.doc_accuracies(false), vec![1.0, 0.0]);
    }

    /// Silences the default panic hook for the duration of a closure so
    /// intentional worker panics don't spam test output.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn panicking_document_is_isolated() {
        let docs: Vec<GoldDoc> =
            (0..10).map(|i| doc(&format!("d{i}"), Some(EntityId(i)))).collect();
        let eval = with_quiet_panics(|| {
            run_per_doc(&docs, |d| {
                if d.id == "d3" || d.id == "d7" {
                    panic!("injected fault in {}", d.id);
                }
                DocOutcome::ok(d.gold_labels(), d.gold_labels(), vec![1.0])
            })
        });
        assert_eq!(eval.docs.len(), 10, "failed docs still occupy their slot");
        assert_eq!(eval.failed_count(), 2);
        for (i, o) in eval.docs.iter().enumerate() {
            if i == 3 || i == 7 {
                match &o.status {
                    DocStatus::Failed { reason } => {
                        assert!(reason.contains("injected fault"), "payload captured: {reason}");
                    }
                    other => panic!("doc {i} should have failed, got {other:?}"),
                }
                assert_eq!(o.predicted, vec![None]);
                assert_eq!(o.confidence, vec![0.0]);
            } else {
                assert_eq!(o.status, DocStatus::Ok);
                assert_eq!(o.predicted, o.gold);
            }
        }
        // Failed docs don't drag accuracy down: the healthy 8 are perfect.
        assert_eq!(eval.micro(false), 1.0);
        assert_eq!(eval.macro_(false), 1.0);
        assert_eq!(eval.doc_accuracies(false).len(), 8);
        assert_eq!(eval.ranked_items().len(), 8);
    }

    #[test]
    fn degraded_documents_are_counted_but_not_excluded() {
        let docs = vec![doc("a", Some(EntityId(1))), doc("b", Some(EntityId(2)))];
        let eval = run_per_doc(&docs, |d| DocOutcome {
            status: if d.id == "b" {
                DocStatus::from_degradation(DegradationLevel::NoCoherence)
            } else {
                DocStatus::from_degradation(DegradationLevel::None)
            },
            ..DocOutcome::ok(d.gold_labels(), d.gold_labels(), vec![1.0])
        });
        assert_eq!(eval.failed_count(), 0);
        assert_eq!(eval.degraded_count(), 1);
        // Degraded answers still count toward accuracy.
        assert_eq!(eval.micro(false), 1.0);
        assert_eq!(eval.doc_accuracies(false).len(), 2);
    }

    #[test]
    fn record_metrics_matches_status_accounting() {
        use ned_obs::{names, Metrics};
        let docs = vec![
            doc("a", Some(EntityId(1))),
            doc("b", Some(EntityId(2))),
            doc("c", Some(EntityId(3))),
            doc("d", Some(EntityId(4))),
        ];
        let eval = with_quiet_panics(|| {
            run_per_doc(&docs, |d| match d.id.as_str() {
                "a" => panic!("injected fault"),
                "b" => DocOutcome {
                    status: DocStatus::from_degradation(DegradationLevel::NoCoherence),
                    ..DocOutcome::ok(d.gold_labels(), d.gold_labels(), vec![1.0])
                },
                "c" => DocOutcome {
                    status: DocStatus::from_degradation(DegradationLevel::PriorOnly),
                    ..DocOutcome::ok(d.gold_labels(), d.gold_labels(), vec![1.0])
                },
                _ => DocOutcome::ok(d.gold_labels(), d.gold_labels(), vec![1.0]),
            })
        });
        let metrics = Metrics::new();
        eval.record_metrics(&metrics);
        assert_eq!(metrics.counter_value(names::DOC_STATUS_OK), 1);
        assert_eq!(metrics.counter_value(names::DOC_STATUS_DEGRADED), 2);
        assert_eq!(metrics.counter_value(names::DOC_STATUS_FAILED), 1);
        assert_eq!(metrics.counter_value(names::DEGRADATION_LEVEL_JOINT), 1);
        assert_eq!(metrics.counter_value(names::DEGRADATION_LEVEL_NO_COHERENCE), 1);
        assert_eq!(metrics.counter_value(names::DEGRADATION_LEVEL_PRIOR_ONLY), 1);
        // Cross-check against the Evaluation's own accounting.
        assert_eq!(
            metrics.counter_value(names::DOC_STATUS_FAILED) as usize,
            eval.failed_count()
        );
        assert_eq!(
            metrics.counter_value(names::DOC_STATUS_DEGRADED) as usize,
            eval.degraded_count()
        );
    }

    #[test]
    fn failed_placeholder_is_shaped_like_the_document() {
        let gold = vec![Some(EntityId(1)), None, Some(EntityId(2))];
        let o = DocOutcome::failed(gold.clone(), "boom".into());
        assert_eq!(o.gold, gold);
        assert_eq!(o.predicted, vec![None, None, None]);
        assert_eq!(o.confidence, vec![0.0, 0.0, 0.0]);
        assert!(o.status.is_failed());
        assert!(!o.status.is_degraded());
    }
}
