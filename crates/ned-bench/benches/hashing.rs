//! Criterion benches for the hashing substrate: min-hash sketching, LSH
//! banding, and the similarity cover computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ned_aida::cover::shortest_cover;
use ned_kb::WordId;
use ned_relatedness::lsh::Banding;
use ned_relatedness::minhash::{mix64, MinHasher};

fn bench_minhash(c: &mut Criterion) {
    let mut group = c.benchmark_group("minhash_sketch");
    for &(k, n) in &[(4usize, 8usize), (200, 60), (2000, 60)] {
        let hasher = MinHasher::new(k, 42);
        let elements: Vec<u64> = (0..n as u64).map(mix64).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &elements,
            |b, elements| b.iter(|| black_box(hasher.sketch(elements.iter().copied()))),
        );
    }
    group.finish();
}

fn bench_banding(c: &mut Criterion) {
    let banding = Banding { bands: 200, rows: 1 };
    let hasher = MinHasher::new(banding.sketch_len(), 42);
    let sketch = hasher.sketch((0u64..60).map(mix64));
    c.bench_function("lsh_bucket_keys_200x1", |b| {
        b.iter(|| black_box(banding.bucket_keys(&sketch)))
    });
}

fn bench_cover(c: &mut Criterion) {
    // A 300-token context with scattered phrase-word occurrences.
    let context: Vec<(usize, WordId)> =
        (0..300).map(|i| (i, WordId((i % 40) as u32))).collect();
    let phrase = [WordId(3), WordId(17), WordId(39)];
    c.bench_function("shortest_cover_300_tokens", |b| {
        b.iter(|| black_box(shortest_cover(&context, &phrase)))
    });
}

criterion_group!(benches, bench_minhash, bench_banding, bench_cover);
criterion_main!(benches);
