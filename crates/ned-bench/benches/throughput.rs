//! Criterion benches for the parallel engine: corpus throughput at several
//! thread counts and indexed vs exhaustive keyphrase similarity.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ned_aida::context::DocumentContext;
use ned_aida::similarity::{context_word_set, simscore_exhaustive, simscore_indexed};
use ned_aida::{AidaConfig, Disambiguator, KeywordWeighting};
use ned_bench::runner::run_method_with_threads;
use ned_eval::gold::GoldDoc;
use ned_relatedness::MilneWitten;
use ned_wikigen::config::WorldConfig;
use ned_wikigen::corpus::conll_like;
use ned_wikigen::{ExportedKb, World};

fn setup() -> (ExportedKb, Vec<GoldDoc>) {
    let world = World::generate(WorldConfig {
        entities_per_topic: 150,
        ..WorldConfig::default()
    });
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 7, 24);
    (exported, corpus.docs)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let (exported, docs) = setup();
    let kb = &exported.kb;

    let mut group = c.benchmark_group("throughput_24_docs");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("aida_full_mw", threads),
            &threads,
            |b, &threads| {
                let m = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());
                b.iter(|| {
                    black_box(
                        run_method_with_threads(&m, &docs, threads)
                            .expect("thread pool")
                            .docs
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_similarity_index(c: &mut Criterion) {
    let (exported, docs) = setup();
    let kb = &exported.kb;
    // Every mention context with its candidate entities.
    let cases: Vec<_> = docs
        .iter()
        .flat_map(|d| {
            let ctx = DocumentContext::build(kb, &d.tokens);
            d.mentions
                .iter()
                .map(|m| {
                    let cands: Vec<_> =
                        kb.candidates(&m.mention.surface).iter().map(|c| c.entity).collect();
                    (ctx.for_mention(&m.mention), cands)
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let mut group = c.benchmark_group("simscore_corpus");
    group.sample_size(10);
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (ctx, cands) in &cases {
                let words = context_word_set(ctx);
                for &e in cands {
                    acc += simscore_indexed(kb, e, ctx, &words, KeywordWeighting::Npmi);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (ctx, cands) in &cases {
                for &e in cands {
                    acc += simscore_exhaustive(kb, e, ctx, KeywordWeighting::Npmi);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_similarity_index);
criterion_main!(benches);
