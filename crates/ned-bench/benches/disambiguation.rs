//! Criterion benches for the end-to-end disambiguation path: AIDA
//! configurations and baselines per document.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ned_aida::baselines::{Cucerzan, Kulkarni, KulkarniVariant, PriorOnly};
use ned_aida::{AidaConfig, Disambiguator, NedMethod};
use ned_eval::gold::GoldDoc;
use ned_relatedness::{Kore, MilneWitten};
use ned_wikigen::config::WorldConfig;
use ned_wikigen::corpus::conll_like;
use ned_wikigen::{ExportedKb, World};

fn setup() -> (ExportedKb, Vec<GoldDoc>) {
    let world = World::generate(WorldConfig {
        entities_per_topic: 150,
        ..WorldConfig::default()
    });
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 7, 24);
    let docs = corpus.docs;
    (exported, docs)
}

fn bench_methods(c: &mut Criterion) {
    let (exported, docs) = setup();
    let kb = &exported.kb;
    let kore = Kore::new(kb);

    let mut group = c.benchmark_group("disambiguate_corpus_24_docs");
    group.sample_size(20);

    let run = |method: &dyn NedMethod| {
        let mut mapped = 0usize;
        for doc in &docs {
            let result = method.disambiguate(&doc.tokens, &doc.bare_mentions());
            mapped += result.mapped_count();
        }
        mapped
    };

    group.bench_function("prior_only", |b| {
        let m = PriorOnly::new(kb);
        b.iter(|| black_box(run(&m)))
    });
    group.bench_function("cucerzan", |b| {
        let m = Cucerzan::new(kb);
        b.iter(|| black_box(run(&m)))
    });
    group.bench_function("kulkarni_ci", |b| {
        let m = Kulkarni::new(kb, KulkarniVariant::Collective);
        b.iter(|| black_box(run(&m)))
    });
    group.bench_function("aida_sim_only", |b| {
        let m = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::sim_only());
        b.iter(|| black_box(run(&m)))
    });
    group.bench_function("aida_full_mw", |b| {
        let m = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());
        b.iter(|| black_box(run(&m)))
    });
    group.bench_function("aida_full_kore", |b| {
        let m = Disambiguator::new(kb, &kore, AidaConfig::full());
        b.iter(|| black_box(run(&m)))
    });
    group.finish();
}

fn bench_kb_build(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(7));
    c.bench_function("kb_export_tiny_world", |b| {
        b.iter(|| black_box(ExportedKb::build(&world).kb.entity_count()))
    });
}

criterion_group!(benches, bench_methods, bench_kb_build);
criterion_main!(benches);
