//! Criterion benches backing Table 4.4: per-pair and per-scope cost of the
//! relatedness measures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ned_kb::EntityId;
use ned_relatedness::{Kore, KoreLsh, MilneWitten, Relatedness, TwoStageConfig};
use ned_wikigen::config::WorldConfig;
use ned_wikigen::{ExportedKb, World};

fn setup() -> ExportedKb {
    let world = World::generate(WorldConfig {
        entities_per_topic: 150,
        ..WorldConfig::default()
    });
    ExportedKb::build(&world)
}

fn bench_pairwise(c: &mut Criterion) {
    let exported = setup();
    let kb = &exported.kb;
    let mw = MilneWitten::new(kb);
    let kore = Kore::new(kb);
    // A fixed slice of moderately popular entities.
    let ids: Vec<EntityId> = kb.entity_ids().take(64).collect();

    let mut group = c.benchmark_group("pairwise_relatedness");
    group.bench_function("milne_witten", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, &x) in ids.iter().enumerate() {
                for &y in &ids[i + 1..] {
                    acc += mw.relatedness(black_box(x), black_box(y));
                }
            }
            acc
        })
    });
    group.bench_function("kore_exact", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, &x) in ids.iter().enumerate() {
                for &y in &ids[i + 1..] {
                    acc += kore.relatedness(black_box(x), black_box(y));
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_scoped_lsh(c: &mut Criterion) {
    let exported = setup();
    let kb = &exported.kb;
    let lsh_g = KoreLsh::new(kb, TwoStageConfig::lsh_g());
    let lsh_f = KoreLsh::new(kb, TwoStageConfig::lsh_f());
    let kore = Kore::new(kb);

    let mut group = c.benchmark_group("scoped_relatedness");
    for scope_size in [50usize, 200] {
        let scope: Vec<EntityId> = kb.entity_ids().take(scope_size).collect();
        group.bench_with_input(
            BenchmarkId::new("kore_all_pairs", scope_size),
            &scope,
            |b, scope| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for (i, &x) in scope.iter().enumerate() {
                        for &y in &scope[i + 1..] {
                            acc += kore.relatedness(x, y);
                        }
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lsh_g_scoped", scope_size),
            &scope,
            |b, scope| {
                b.iter(|| {
                    let scoped = lsh_g.scoped(scope);
                    let mut acc = 0.0;
                    for (i, &x) in scope.iter().enumerate() {
                        for &y in &scope[i + 1..] {
                            if scoped.is_candidate(x, y) {
                                acc += scoped.relatedness(x, y);
                            }
                        }
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lsh_f_scoped", scope_size),
            &scope,
            |b, scope| {
                b.iter(|| {
                    let scoped = lsh_f.scoped(scope);
                    let mut acc = 0.0;
                    for (i, &x) in scope.iter().enumerate() {
                        for &y in &scope[i + 1..] {
                            if scoped.is_candidate(x, y) {
                                acc += scoped.relatedness(x, y);
                            }
                        }
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pairwise, bench_scoped_lsh);
criterion_main!(benches);
