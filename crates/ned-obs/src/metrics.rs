//! The metrics registry: counters, gauges, histograms, and stage spans.
//!
//! Determinism contract: every metric is integer-valued (`u64`) and updated
//! with atomic adds. Integer addition is commutative and associative, so
//! totals are independent of thread interleaving — the same guarantee that
//! merging per-worker shards in a stable order would give, without the
//! merge step. Snapshots list metrics in lexicographic name order (the
//! registry is a `BTreeMap`), so two snapshots of the same workload compare
//! bit-for-bit with `==`. Durations recorded by spans go through the
//! registry's [`Clock`]; with the default null clock every duration is 0
//! and the snapshot stays fully deterministic, while call counts are still
//! recorded.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::clock::Clock;

/// Fixed bucket upper bounds (nanoseconds) for stage-duration histograms:
/// 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s, plus an implicit overflow
/// bucket. Fixed bounds keep snapshots comparable across runs and builds.
pub const DURATION_BOUNDS_NS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Shared histogram state: fixed bounds, one overflow bucket, count and sum.
#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; bucket `i` counts values `<= bounds[i]`,
    /// the last bucket counts overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| value > b);
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCore>>>,
}

/// A monotonically increasing counter handle.
///
/// Handles are resolved once (a map lookup) and then incremented lock-free,
/// so hot loops pay one atomic add — or one branch when metrics are
/// disabled. A disabled handle reads as 0.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op handle (all increments discarded, value reads 0).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge handle (e.g. sizes observed at load time).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Stores `v`.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A fixed-bound histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// Number of observations so far (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.count.load(Ordering::Relaxed))
    }
}

/// RAII guard that records the elapsed clock time into a histogram on drop.
///
/// Under the null clock the recorded duration is always 0, so spans still
/// count invocations without breaking snapshot determinism.
#[derive(Debug)]
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    hist: Histogram,
    clock: Clock,
    start: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.clock.now_nanos().saturating_sub(self.start);
        self.hist.observe(elapsed);
    }
}

/// Cheap-to-clone handle on a metrics registry.
///
/// `Metrics::new()` creates an enabled registry with the deterministic null
/// clock; [`Metrics::disabled`] is a no-op handle whose every operation
/// costs one branch. Clones share the same registry, so a pipeline can hand
/// one `Metrics` to each component and snapshot them all at once.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<Registry>>,
    clock: Clock,
}

impl Metrics {
    /// An enabled registry with the null clock (fully deterministic).
    pub fn new() -> Self {
        Metrics { registry: Some(Arc::new(Registry::default())), clock: Clock::Null }
    }

    /// A no-op handle: nothing is recorded, snapshots are empty.
    pub fn disabled() -> Self {
        Metrics { registry: None, clock: Clock::Null }
    }

    /// Replaces the clock used by [`Metrics::span`] timing.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The clock spans record against.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// True when this handle records into a registry.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Resolves (registering on first use) a counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(registry) = &self.registry else {
            return Counter::disabled();
        };
        if let Some(cell) =
            registry.counters.read().unwrap_or_else(|e| e.into_inner()).get(name)
        {
            return Counter(Some(Arc::clone(cell)));
        }
        let mut map = registry.counters.write().unwrap_or_else(|e| e.into_inner());
        let cell = map.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(cell)))
    }

    /// Resolves (registering on first use) a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(registry) = &self.registry else {
            return Gauge::disabled();
        };
        if let Some(cell) = registry.gauges.read().unwrap_or_else(|e| e.into_inner()).get(name)
        {
            return Gauge(Some(Arc::clone(cell)));
        }
        let mut map = registry.gauges.write().unwrap_or_else(|e| e.into_inner());
        let cell = map.entry(name.to_string()).or_default();
        Gauge(Some(Arc::clone(cell)))
    }

    /// Resolves (registering on first use) a histogram with the given fixed
    /// bucket bounds. A histogram keeps the bounds it was first registered
    /// with; later registrations under the same name reuse them.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let Some(registry) = &self.registry else {
            return Histogram::disabled();
        };
        if let Some(core) =
            registry.histograms.read().unwrap_or_else(|e| e.into_inner()).get(name)
        {
            return Histogram(Some(Arc::clone(core)));
        }
        let mut map = registry.histograms.write().unwrap_or_else(|e| e.into_inner());
        let core =
            map.entry(name.to_string()).or_insert_with(|| Arc::new(HistogramCore::new(bounds)));
        Histogram(Some(Arc::clone(core)))
    }

    /// Starts a stage span recording into histogram `{name}` (nanosecond
    /// duration buckets) when the guard drops.
    pub fn span(&self, name: &str) -> Span {
        let hist = self.histogram(name, DURATION_BOUNDS_NS);
        Span { hist, clock: self.clock.clone(), start: self.clock.now_nanos() }
    }

    /// Current value of a counter by name (0 if unregistered or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter(name).value()
    }

    /// A point-in-time copy of every metric, in lexicographic name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(registry) = &self.registry else {
            return MetricsSnapshot::default();
        };
        let counters = registry
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = registry
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = registry
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, core)| {
                (
                    name.clone(),
                    HistogramSnapshot {
                        bounds: core.bounds.clone(),
                        buckets: core
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: core.count.load(Ordering::Relaxed),
                        sum: core.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// The fixed bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries, last is
    /// overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Point-in-time copy of a whole registry, sorted by metric name.
///
/// Compares with `==`: two runs of the same deterministic workload must
/// produce equal snapshots regardless of thread count (see the module docs
/// for why).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs in lexicographic name order.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` pairs in lexicographic name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Value of a gauge by name (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    /// A copy with all histograms dropped — the purely counting view, which
    /// stays deterministic even when spans run on the system clock.
    pub fn counters_only(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: Vec::new(),
        }
    }

    /// Renders the snapshot as a small JSON document (sorted keys, stable
    /// byte output for a given snapshot).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", esc(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", esc(name));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let bounds =
                h.bounds.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(", ");
            let buckets =
                h.buckets.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(", ");
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"bounds\": [{bounds}], \"buckets\": [{buckets}], \"count\": {}, \"sum\": {}}}",
                esc(name),
                h.count,
                h.sum
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot as an aligned human-readable table.
    pub fn render(&self) -> String {
        let width = self
            .counters
            .iter()
            .chain(self.gauges.iter())
            .map(|(n, _)| n.len())
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  count {}  sum {}ns",
                    h.count, h.sum
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_accumulate() {
        let m = Metrics::new();
        let c = m.counter("widgets");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(m.counter_value("widgets"), 5);
        // Re-resolving yields the same underlying cell.
        m.counter("widgets").add(1);
        assert_eq!(c.value(), 6);
    }

    #[test]
    fn disabled_metrics_are_inert() {
        let m = Metrics::disabled();
        let c = m.counter("x");
        c.add(10);
        assert_eq!(c.value(), 0);
        m.gauge("g").set(3);
        assert_eq!(m.gauge("g").value(), 0);
        let snap = m.snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
        assert!(!m.is_enabled());
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let m = Metrics::new();
        let g = m.gauge("size");
        g.set(7);
        g.set(3);
        assert_eq!(g.value(), 3);
        assert_eq!(m.snapshot().gauge("size"), 3);
    }

    #[test]
    fn histogram_buckets_values_by_fixed_bounds() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[10, 100]);
        h.observe(5); // bucket 0 (<= 10)
        h.observe(10); // bucket 0 (<= 10, inclusive upper bound)
        h.observe(50); // bucket 1 (<= 100)
        h.observe(1_000); // overflow bucket
        let snap = m.snapshot();
        let (_, hs) = snap.histograms.first().expect("histogram present");
        assert_eq!(hs.bounds, vec![10, 100]);
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 1_065);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let m = Metrics::new();
        m.counter("zeta").inc();
        m.counter("alpha").inc();
        m.counter("mid").inc();
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::new();
        let clone = m.clone();
        clone.counter("shared").add(2);
        m.counter("shared").add(3);
        assert_eq!(m.counter_value("shared"), 5);
        assert_eq!(clone.snapshot(), m.snapshot());
    }

    #[test]
    fn span_counts_under_null_clock_with_zero_duration() {
        let m = Metrics::new();
        {
            let _s = m.span("stage_x_ns");
        }
        {
            let _s = m.span("stage_x_ns");
        }
        let snap = m.snapshot();
        let (_, h) = snap.histograms.first().expect("span histogram present");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 0, "null clock records zero durations");
    }

    #[test]
    fn span_records_manual_clock_advance() {
        let (clock, handle) = Clock::manual();
        let m = Metrics::new().with_clock(clock);
        {
            let _s = m.span("stage_y_ns");
            handle.advance_ms(2);
        }
        let snap = m.snapshot();
        let (_, h) = snap.histograms.first().expect("span histogram present");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 2_000_000);
        // 2ms lands in the <= 10ms bucket (index 4 of DURATION_BOUNDS_NS).
        assert_eq!(h.buckets.get(4).copied(), Some(1));
    }

    #[test]
    fn json_and_render_are_stable_and_contain_names() {
        let m = Metrics::new();
        m.counter("a_count").add(2);
        m.gauge("b_gauge").set(9);
        m.histogram("c_hist", &[1]).observe(3);
        let json = m.snapshot().to_json();
        assert!(json.contains("\"a_count\": 2"));
        assert!(json.contains("\"b_gauge\": 9"));
        assert!(json.contains("\"c_hist\""));
        assert_eq!(json, m.snapshot().to_json(), "byte-stable for equal snapshots");
        let human = m.snapshot().render();
        assert!(human.contains("a_count"));
        assert!(human.contains("counters:"));
    }

    #[test]
    fn counters_only_drops_histograms() {
        let m = Metrics::new();
        m.counter("c").inc();
        m.histogram("h", &[1]).observe(5);
        let view = m.snapshot().counters_only();
        assert_eq!(view.counter("c"), 1);
        assert!(view.histograms.is_empty());
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert_eq!(Metrics::new().snapshot().render(), "(no metrics recorded)\n");
        assert_eq!(MetricsSnapshot::default().counter("absent"), 0);
    }

    #[test]
    fn parallel_increments_are_exact() {
        use std::sync::Arc as StdArc;
        let m = Metrics::new();
        let c = m.counter("racing");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = StdArc::new(c.clone());
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread panicked");
        }
        assert_eq!(c.value(), 40_000);
    }
}
