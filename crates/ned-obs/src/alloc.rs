//! First-party counting allocator for allocation accounting.
//!
//! [`CountingAlloc`] wraps the system allocator and counts *allocation
//! events* (`alloc`, `alloc_zeroed`, and `realloc` calls; `dealloc` is
//! free) with one relaxed atomic increment each. It exists so the bench
//! harness can prove the scoring hot path stays allocation-free: install it
//! as the `#[global_allocator]` of a bench or test **binary**, snapshot
//! [`CountingAlloc::alloc_count`] around a measured region, and diff.
//!
//! # The counting contract
//!
//! - Only binaries that opt in (currently the `ned-bench` harness) install
//!   the wrapper; the library crates never do, so production consumers keep
//!   whatever allocator they chose.
//! - The count is process-global and monotone. Deltas taken around a region
//!   measure every allocation of the whole process in that window —
//!   including other live threads — so meaningful deltas are taken at
//!   quiescent points (single-threaded regions, or after a parallel region
//!   has joined).
//! - Relaxed ordering suffices: the counter carries no synchronization
//!   duty, and readers only compare totals across such quiescent points.
//! - Counts are *events*, not bytes: a `Vec` growth step counts once
//!   regardless of size. Event counts are what the zero-allocation claim is
//!   about, and unlike byte totals they are independent of allocator
//!   rounding.
//!
//! This module is the workspace's one sanctioned use of `unsafe`: the
//! [`GlobalAlloc`] trait is inherently unsafe to implement, and the impl
//! below only delegates to [`System`] after bumping a counter — it never
//! touches the pointers themselves.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] wrapper around [`System`] that counts allocation
/// events with relaxed atomic increments.
#[derive(Debug, Default)]
pub struct CountingAlloc {
    allocs: AtomicU64,
}

impl CountingAlloc {
    /// Creates the wrapper — `const`, so it can initialize a
    /// `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc { allocs: AtomicU64::new(0) }
    }

    /// Total allocation events (alloc + alloc_zeroed + realloc) since the
    /// counter was created.
    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    #[inline]
    fn count_one(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }
}

// Delegation-only impl: every pointer and layout goes straight to System.
unsafe impl GlobalAlloc for CountingAlloc { // ned-lint: allow(u1) — sanctioned GlobalAlloc delegation
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 { // ned-lint: allow(u1) — sanctioned GlobalAlloc delegation
        self.count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) { // ned-lint: allow(u1) — sanctioned GlobalAlloc delegation
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 { // ned-lint: allow(u1) — sanctioned GlobalAlloc delegation
        self.count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 { // ned-lint: allow(u1) — sanctioned GlobalAlloc delegation
        self.count_one();
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_counts_and_delegates() {
        // Not installed as the global allocator here — exercise the trait
        // surface directly so the test is hermetic.
        let counting = CountingAlloc::new();
        assert_eq!(counting.alloc_count(), 0);
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: layout is non-zero-sized; alloc/realloc/dealloc are
        // paired below on the same allocator.
        unsafe { // ned-lint: allow(u1) — test exercising the allocator pair
            let p = counting.alloc(layout);
            assert!(!p.is_null());
            let p2 = counting.realloc(p, layout, 128);
            assert!(!p2.is_null());
            let grown = Layout::from_size_align(128, 8).unwrap();
            counting.dealloc(p2, grown);
            let z = counting.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(*z, 0);
            counting.dealloc(z, layout);
        }
        // alloc + realloc + alloc_zeroed; deallocs are free.
        assert_eq!(counting.alloc_count(), 3);
    }
}
