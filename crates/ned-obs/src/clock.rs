//! Time sources for spans and wall-clock budgets.
//!
//! All wall-clock reads in the workspace go through [`Clock`]; this module
//! is the single place allowed to touch `Instant::now` (ned-lint rule d3).
//! Three variants cover the three legitimate uses of time:
//!
//! - [`Clock::Null`] — always reads 0. The default for metrics, so a
//!   metrics snapshot taken with the default configuration is bit-identical
//!   run to run and across thread counts (timing histograms record only
//!   call counts, never durations).
//! - [`Clock::Manual`] — an explicitly advanced counter shared across
//!   clones, for tests that assert timing behavior (e.g. a solver wall
//!   deadline firing) without real sleeps.
//! - [`Clock::System`] — monotonic real time, for production timing and the
//!   solver's wall budget. Readings are nanoseconds since the first system
//!   read in the process, so they fit `u64` for centuries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Nanoseconds since the first system-clock read in this process.
fn system_now_nanos() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    // The one sanctioned wall-clock read in the workspace; every timing
    // consumer goes through `Clock` so determinism is opt-out, not opt-in.
    let anchor = ANCHOR.get_or_init(Instant::now); // ned-lint: allow(d3)
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A manually advanced time source for tests.
///
/// Clones share the same underlying counter, so a test can hold one handle,
/// hand a clone to the code under test, and advance time from outside.
///
/// A *ticking* handle (see [`ManualClock::with_tick`]) additionally advances
/// the shared counter by a fixed amount on every read, so code whose only
/// clock access is polling (the solver's wall-budget guard samples time every
/// 1024 charge units) experiences deterministic simulated time passing
/// *mid-computation* — without any cooperation from the code under test.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
    tick: u64,
}

impl ManualClock {
    /// A manual clock starting at 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A view of the same clock that auto-advances the shared counter by
    /// `tick` nanoseconds on every read (the read returns the pre-advance
    /// value, so the first read of a fresh clock is still 0).
    #[must_use]
    pub fn with_tick(&self, tick: u64) -> Self {
        ManualClock { nanos: Arc::clone(&self.nanos), tick }
    }

    /// Current reading in nanoseconds. A ticking handle also advances the
    /// shared counter (post-increment: returns the pre-advance reading).
    pub fn now_nanos(&self) -> u64 {
        if self.tick == 0 {
            self.nanos.load(Ordering::Relaxed)
        } else {
            self.nanos.fetch_add(self.tick, Ordering::Relaxed)
        }
    }

    /// Advances the clock by `nanos` nanoseconds.
    pub fn advance_nanos(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_nanos(ms.saturating_mul(1_000_000));
    }

    /// Moves the clock forward to the absolute reading `nanos` (no-op when
    /// the hand is already at or past it — manual time never runs backward).
    pub fn advance_to_nanos(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::Relaxed);
    }
}

/// A time source: null (frozen at 0), manual (test-advanced), or system.
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// Always reads 0 — deterministic, the default for metrics.
    #[default]
    Null,
    /// Reads a [`ManualClock`] advanced explicitly by tests.
    Manual(ManualClock),
    /// Reads monotonic real time (nanos since first read in the process).
    System,
}

impl Clock {
    /// The deterministic clock frozen at 0.
    pub fn null() -> Self {
        Clock::Null
    }

    /// The real monotonic clock.
    pub fn system() -> Self {
        Clock::System
    }

    /// A fresh manual clock plus a handle for advancing it.
    pub fn manual() -> (Self, ManualClock) {
        let handle = ManualClock::new();
        (Clock::Manual(handle.clone()), handle)
    }

    /// Current reading in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        match self {
            Clock::Null => 0,
            Clock::Manual(m) => m.now_nanos(),
            Clock::System => system_now_nanos(),
        }
    }

    /// True when readings never change (the null clock) — callers can skip
    /// deadline checks entirely.
    pub fn is_null(&self) -> bool {
        matches!(self, Clock::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_frozen_at_zero() {
        let c = Clock::null();
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 0);
        assert!(c.is_null());
    }

    #[test]
    fn manual_clock_advances_and_shares_state_across_clones() {
        let (clock, handle) = Clock::manual();
        let clone = clock.clone();
        assert_eq!(clock.now_nanos(), 0);
        handle.advance_ms(3);
        assert_eq!(clock.now_nanos(), 3_000_000);
        assert_eq!(clone.now_nanos(), 3_000_000, "clones share the counter");
        handle.advance_nanos(5);
        assert_eq!(clock.now_nanos(), 3_000_005);
        assert!(!clock.is_null());
    }

    #[test]
    fn ticking_handle_advances_on_every_read() {
        let (clock, hand) = Clock::manual();
        let ticking = Clock::Manual(hand.with_tick(1_000));
        // Post-increment: the first read returns the pre-advance value.
        assert_eq!(ticking.now_nanos(), 0);
        assert_eq!(ticking.now_nanos(), 1_000);
        assert_eq!(ticking.now_nanos(), 2_000);
        // The plain handle shares the counter but never auto-advances.
        assert_eq!(clock.now_nanos(), 3_000);
        assert_eq!(clock.now_nanos(), 3_000);
    }

    #[test]
    fn advance_to_is_monotone() {
        let hand = ManualClock::new();
        hand.advance_to_nanos(500);
        assert_eq!(hand.now_nanos(), 500);
        hand.advance_to_nanos(200);
        assert_eq!(hand.now_nanos(), 500, "time never runs backward");
        hand.advance_to_nanos(900);
        assert_eq!(hand.now_nanos(), 900);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = Clock::system();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn default_clock_is_null() {
        assert!(Clock::default().is_null());
    }
}
