//! Well-known metric names, in one place.
//!
//! Every counter, gauge, and span the pipeline emits is named here so the
//! golden-metrics suite, the CI fixture diff, and DESIGN.md §11 all refer
//! to the same constants. Names are `snake_case`, prefixed by subsystem,
//! and never reused with a different meaning.

// --- disambiguator (ned-aida) ----------------------------------------

/// Documents run through `disambiguate_features`.
pub const AIDA_DOCS: &str = "aida_docs";
/// Mentions whose candidates were scored.
pub const AIDA_MENTIONS: &str = "aida_mentions";
/// Candidate entities whose features were computed (across all mentions).
pub const AIDA_CANDIDATES_CONSIDERED: &str = "aida_candidates_considered";
/// Keyphrase similarity evaluations (one per candidate scored).
pub const AIDA_SIMILARITY_EVALUATIONS: &str = "aida_similarity_evaluations";
/// Similarity calls answered by the entity-side plan (scan the entity's
/// keyphrases).
pub const AIDA_SIM_PLAN_ENTITY_SIDE: &str = "aida_sim_plan_entity_side";
/// Similarity calls answered by the word-side plan (probe the keyphrase
/// inverted index per context word).
pub const AIDA_SIM_PLAN_WORD_SIDE: &str = "aida_sim_plan_word_side";
/// Inverted-index postings scanned by word-side similarity calls.
pub const KP_INDEX_POSTINGS_SCANNED: &str = "kp_index_postings_scanned";
/// Keyphrases that matched the context and were cover-scored.
pub const AIDA_SIM_PHRASES_MATCHED: &str = "aida_sim_phrases_matched";
/// Mentions pinned to their top-local candidate by the robustness test
/// before the graph phase.
pub const AIDA_MENTIONS_FIXED: &str = "aida_mentions_fixed";
/// Nonzero coherence edges materialized in mention-entity graphs.
pub const AIDA_COHERENCE_EDGES_BUILT: &str = "aida_coherence_edges_built";
/// Candidate entity nodes entering the solver across all graphs.
pub const AIDA_GRAPH_ENTITY_NODES: &str = "aida_graph_entity_nodes";

// --- greedy solver (ned-aida) ----------------------------------------

/// Times the budgeted solver ran.
pub const AIDA_SOLVER_INVOCATIONS: &str = "aida_solver_invocations";
/// Budget units spent across all solver runs (the deterministic iteration
/// currency from PR 2).
pub const AIDA_SOLVER_ITERATIONS: &str = "aida_solver_iterations";
/// Entities skipped as removal victims because the taboo rule protected a
/// mention's last candidate.
pub const AIDA_SOLVER_TABOO_HITS: &str = "aida_solver_taboo_hits";
/// Entities removed up front by distance pruning.
pub const AIDA_SOLVER_ENTITIES_PRUNED: &str = "aida_solver_entities_pruned";
/// Solver runs that exhausted their iteration or wall budget.
pub const AIDA_SOLVER_BUDGET_EXHAUSTED: &str = "aida_solver_budget_exhausted";

// --- degradation ladder (ned-aida, per document) ----------------------

/// Documents that completed at full fidelity (joint objective).
pub const AIDA_DEGRADATION_JOINT: &str = "aida_degradation_joint";
/// Documents that fell back to similarity-only (coherence disabled).
pub const AIDA_DEGRADATION_NO_COHERENCE: &str = "aida_degradation_no_coherence";
/// Documents that fell back to prior-only assignment.
pub const AIDA_DEGRADATION_PRIOR_ONLY: &str = "aida_degradation_prior_only";

// --- relatedness cache (ned-relatedness) ------------------------------

/// Lookups served from the cache.
pub const RELATEDNESS_CACHE_HITS: &str = "relatedness_cache_hits";
/// Lookups that computed a fresh value (first arrival wins a racing pair).
/// Every miss resolves to exactly one of insert / admit-reject /
/// stale-discard, so `misses == inserts + admit_rejected + stale_discards`.
pub const RELATEDNESS_CACHE_MISSES: &str = "relatedness_cache_misses";
/// Entries written into the cache.
pub const RELATEDNESS_CACHE_INSERTS: &str = "relatedness_cache_inserts";
/// Lookups whose freshly computed value was rejected by the admission
/// policy (or by a zero byte cap) — the value is still returned, just not
/// memoized. Replaces the retired `relatedness_cache_full` starvation path.
pub const RELATEDNESS_CACHE_ADMIT_REJECTED: &str = "relatedness_cache_admit_rejected";
/// Entries dropped from the cache: policy evictions plus wholesale drops
/// from `clear`/generation invalidation, so
/// `evictions + live_entries == inserts` holds exactly.
pub const RELATEDNESS_CACHE_EVICTIONS: &str = "relatedness_cache_evictions";
/// Inserts discarded because the KB generation moved between the lookup's
/// probe and its insert — a stale score must never land after
/// `advance_generation` returns.
pub const RELATEDNESS_CACHE_STALE_DISCARDS: &str = "relatedness_cache_stale_discards";
/// Gauge: bytes currently charged to cached pairs (set by
/// `publish_gauges`, like the evaluation counters — explicit publication
/// keeps snapshots interleaving-independent).
pub const RELATEDNESS_CACHE_BYTES: &str = "relatedness_cache_bytes";
/// Gauge: high-water mark of charged bytes, summed over shards (each
/// shard's peak is bounded by its slice of the cap, so the sum never
/// exceeds the configured byte cap).
pub const RELATEDNESS_CACHE_BYTES_PEAK: &str = "relatedness_cache_bytes_peak";
/// Gauge: pairs currently cached (set by `publish_gauges`).
pub const RELATEDNESS_CACHE_ENTRIES: &str = "relatedness_cache_entries";

// --- snapshot loading (ned-kb) ----------------------------------------

/// Sections decoded from a v3 snapshot.
pub const SNAPSHOT_SECTIONS_DECODED: &str = "snapshot_sections_decoded";
/// Snapshots read via the legacy v2 freeze-on-load path.
pub const SNAPSHOT_V2_FALLBACK: &str = "snapshot_v2_fallback";
/// Gauge: total snapshot bytes read.
pub const SNAPSHOT_BYTES_TOTAL: &str = "snapshot_bytes_total";
/// Gauge prefix for per-section body sizes; the section name from the v3
/// frame tag is appended (e.g. `snapshot_section_bytes_entities`).
pub const SNAPSHOT_SECTION_BYTES_PREFIX: &str = "snapshot_section_bytes_";

// --- bench runner (ned-bench) -----------------------------------------

/// Documents that completed at full fidelity.
pub const DOC_STATUS_OK: &str = "doc_status_ok";
/// Documents that completed on a degraded ladder rung.
pub const DOC_STATUS_DEGRADED: &str = "doc_status_degraded";
/// Documents whose worker panicked (isolated, excluded from accuracy).
pub const DOC_STATUS_FAILED: &str = "doc_status_failed";
/// Per-document degradation level: full joint objective.
pub const DEGRADATION_LEVEL_JOINT: &str = "degradation_level_joint";
/// Per-document degradation level: coherence disabled.
pub const DEGRADATION_LEVEL_NO_COHERENCE: &str = "degradation_level_no_coherence";
/// Per-document degradation level: prior-only assignment.
pub const DEGRADATION_LEVEL_PRIOR_ONLY: &str = "degradation_level_prior_only";

// --- emerging entities (ned-emerging) ---------------------------------

/// Mentions the EE pipeline linked to an existing KB entity.
pub const EE_MENTIONS_LINKED: &str = "ee_mentions_linked";
/// Mentions the EE pipeline flagged as emerging (out-of-KB).
pub const EE_MENTIONS_EMERGING: &str = "ee_mentions_emerging";

// --- applications (ned-apps) ------------------------------------------

/// Queries answered by entity search.
pub const SEARCH_QUERIES: &str = "search_queries";
/// Documents returned across all search queries.
pub const SEARCH_DOCS_RETURNED: &str = "search_docs_returned";
/// Documents ingested into the analytics index.
pub const ANALYTICS_DOCS_INDEXED: &str = "analytics_docs_indexed";
/// Entity annotations ingested into the analytics index.
pub const ANALYTICS_MENTIONS_INDEXED: &str = "analytics_mentions_indexed";

// --- annotation service (ned-serve) ------------------------------------

/// Requests offered to the service (accepted or not).
pub const SERVE_SUBMITTED: &str = "serve_submitted";
/// Requests admitted into the bounded queue.
pub const SERVE_ACCEPTED: &str = "serve_accepted";
/// Requests rejected at admission because the queue was full.
pub const SERVE_REJECTED_QUEUE_FULL: &str = "serve_rejected_queue_full";
/// Requests rejected at admission because the service was shutting down.
pub const SERVE_REJECTED_SHUTDOWN: &str = "serve_rejected_shutdown";
/// Accepted requests answered with a typed `Shedded` result during the
/// shutdown drain (dequeued after drain began, never run).
pub const SERVE_SHED_DRAIN: &str = "serve_shed_drain";
/// Accepted requests shed because their deadline had already expired when a
/// worker dequeued them (only with the shed-expired policy).
pub const SERVE_SHED_DEADLINE: &str = "serve_shed_deadline";
/// Accepted requests completed at full fidelity.
pub const SERVE_COMPLETED_OK: &str = "serve_completed_ok";
/// Accepted requests completed on a degraded ladder rung.
pub const SERVE_COMPLETED_DEGRADED: &str = "serve_completed_degraded";
/// Accepted requests whose handler panicked (isolated; the worker survives).
pub const SERVE_FAILED: &str = "serve_failed";
/// Requests served with coherence disabled by the deadline ladder.
pub const SERVE_DEGRADED_NO_COHERENCE: &str = "serve_degraded_no_coherence";
/// Requests served by the popularity prior alone (deadline expired or
/// nearly so).
pub const SERVE_DEGRADED_PRIOR_ONLY: &str = "serve_degraded_prior_only";
/// Gauge: requests currently waiting in the bounded queue.
pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";
/// Gauge: high-water mark of the queue depth.
pub const SERVE_QUEUE_DEPTH_PEAK: &str = "serve_queue_depth_peak";
/// Histogram: end-to-end request latency (submit → response), nanoseconds.
pub const SERVE_LATENCY_NS: &str = "serve_latency_ns";
/// Histogram: time spent waiting in the queue before a worker picked the
/// request up, nanoseconds.
pub const SERVE_QUEUE_WAIT_NS: &str = "serve_queue_wait_ns";

// --- stage spans (durations; histograms in nanoseconds) ----------------

/// Span: candidate feature computation for one document.
pub const STAGE_FEATURES_NS: &str = "stage_features_ns";
/// Span: mention-entity graph construction for one document.
pub const STAGE_GRAPH_NS: &str = "stage_graph_ns";
/// Span: budgeted greedy solve for one document.
pub const STAGE_SOLVER_NS: &str = "stage_solver_ns";
/// Span: one full snapshot read.
pub const STAGE_SNAPSHOT_READ_NS: &str = "stage_snapshot_read_ns";

// --- incremental KB (crate ned-kb / ned-emerging) ----------------------

/// WAL mutation records observed: appended by writers plus replayed on
/// open.
pub const KB_WAL_RECORDS: &str = "kb_wal_records";
/// WAL replay passes (one per `Wal::open`).
pub const KB_WAL_REPLAYS: &str = "kb_wal_replays";
/// Gauge: entities added by the current delta overlay on top of the
/// frozen base.
pub const KB_DELTA_ENTITIES: &str = "kb_delta_entities";
/// Epoch swaps published to readers (`KbHandle::swap`).
pub const KB_EPOCH_SWAPS: &str = "kb_epoch_swaps";
/// Emerging entities promoted into the knowledge base.
pub const EE_PROMOTED: &str = "ee_promoted";
