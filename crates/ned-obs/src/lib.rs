// deny (not forbid): `alloc` holds the workspace's one sanctioned unsafe
// block — the delegation-only `GlobalAlloc` impl of the counting allocator —
// behind its own scoped `allow`.
#![deny(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Deterministic observability for the NED pipeline.
//!
//! A production NED service is blind without per-stage accounting: how many
//! candidates were considered, how often the solver hit its budget, how the
//! degradation ladder fired, whether the relatedness cache is earning its
//! memory. This crate provides that layer with two hard rules:
//!
//! 1. **Counters are exactly deterministic.** Every metric is a `u64`
//!    updated by atomic adds, and integer addition commutes — so for a
//!    deterministic workload the snapshot is bit-identical across thread
//!    counts and KB backends. Telemetry gets the same reproducibility
//!    guarantee as pipeline output (`tests/metrics_determinism.rs`), which
//!    is what lets `tests/metrics_golden.rs` pin exact values.
//! 2. **Wall clocks are explicit.** No component reads time ambiently;
//!    durations flow through [`Clock`], whose default [`Clock::Null`]
//!    variant is frozen at 0. Tests that need time use the manual-advance
//!    clock; production timing opts into [`Clock::System`] — the one
//!    sanctioned `Instant::now` in the workspace (ned-lint rule d3).
//!
//! The registry is deliberately tiny: counters, last-write-wins gauges,
//! fixed-bound histograms, and RAII stage spans. [`names`] centralizes
//! every metric name the pipeline emits.

pub mod alloc;
pub mod clock;
pub mod metrics;
pub mod names;

pub use alloc::CountingAlloc;
pub use clock::{Clock, ManualClock};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot, Span,
    DURATION_BOUNDS_NS,
};
