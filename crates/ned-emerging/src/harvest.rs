//! Keyphrase harvesting from document streams (§5.5.1).
//!
//! For a given name (or entity), harvest all keyphrase candidates from the
//! token windows surrounding its mentions, using the part-of-speech
//! patterns of Appendix A. The output is a set of (phrase, count) pairs —
//! the raw material for both the global name model of Algorithm 2 and the
//! in-KB entity enrichment of §5.5.1.

use std::collections::HashMap;

use ned_eval::gold::GoldDoc;
use ned_text::patterns::extract_phrases;
use ned_text::pos::{sentence_start_flags, PosTagger};
use ned_text::sentence::split_sentences;
use ned_text::Mention;

/// Number of tokens on each side of a mention that count as its context
/// window (the thesis uses ±5 sentences; our generated documents have no
/// sentence structure, so a fixed token window of similar size is used).
pub const WINDOW_TOKENS: usize = 40;

/// A multiset of harvested phrases.
pub type PhraseCounts = HashMap<String, u64>;

/// Harvests keyphrases around one mention of a document.
pub fn harvest_window(doc: &GoldDoc, mention: &Mention) -> PhraseCounts {
    let start = mention.token_start.saturating_sub(WINDOW_TOKENS);
    let end = (mention.token_end + WINDOW_TOKENS).min(doc.tokens.len());
    let window = &doc.tokens[start..end];
    let sentences = split_sentences(window);
    let starts = sentence_start_flags(window.len(), &sentences);
    let mut tags = PosTagger::new().tag(window, &starts);
    // Mask the mention's own tokens so phrase runs break at the mention and
    // the name is never harvested as a keyphrase of itself.
    let mention_range = (mention.token_start - start)..(mention.token_end - start);
    for i in mention_range {
        tags[i] = ned_text::PosTag::Punctuation;
    }
    let mut counts = PhraseCounts::new();
    for phrase in extract_phrases(window, &tags) {
        *counts.entry(phrase.surface.to_lowercase()).or_insert(0) += 1;
    }
    counts
}

/// Harvests the *global model* of a name: all phrases co-occurring with any
/// mention of `name` across `docs`, with document-occurrence counts, plus
/// the number of mention occurrences observed.
pub fn harvest_name(docs: &[&GoldDoc], name: &str) -> (PhraseCounts, u64) {
    let mut counts = PhraseCounts::new();
    let mut occurrences = 0;
    for doc in docs {
        for lm in &doc.mentions {
            if lm.mention.surface != name {
                continue;
            }
            occurrences += 1;
            for (phrase, c) in harvest_window(doc, &lm.mention) {
                *counts.entry(phrase).or_insert(0) += c;
            }
        }
    }
    (counts, occurrences)
}

/// All names occurring as mention surfaces in `docs`, with occurrence
/// counts.
pub fn mention_names(docs: &[&GoldDoc]) -> HashMap<String, u64> {
    let mut names = HashMap::new();
    for doc in docs {
        for lm in &doc.mentions {
            *names.entry(lm.mention.surface.clone()).or_insert(0) += 1;
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_eval::gold::LabeledMention;
    use ned_text::{tokenize, Token};

    fn doc(text: &str, mention_surface: &str) -> GoldDoc {
        let tokens: Vec<Token> = tokenize(text);
        let pos = tokens
            .iter()
            .position(|t| t.text == mention_surface)
            .expect("mention in text");
        GoldDoc::new(
            "t",
            tokens,
            vec![LabeledMention {
                mention: Mention::new(mention_surface, pos, pos + 1),
                label: None,
            }],
            0,
        )
    }

    #[test]
    fn harvests_noun_phrases_near_mention() {
        let d = doc("the famous surveillance program was revealed by Snowden yesterday", "Snowden");
        let counts = harvest_window(&d, &d.mentions[0].mention);
        assert!(
            counts.keys().any(|p| p.contains("surveillance program")),
            "missing phrase: {counts:?}"
        );
    }

    #[test]
    fn mention_itself_is_not_harvested() {
        let d = doc("the whistleblower Snowden spoke", "Snowden");
        let counts = harvest_window(&d, &d.mentions[0].mention);
        assert!(!counts.contains_key("snowden"), "{counts:?}");
    }

    #[test]
    fn harvest_name_aggregates_across_documents() {
        let d1 = doc("the secret program and Prism today", "Prism");
        let d2 = doc("the secret program called Prism again", "Prism");
        let docs = vec![&d1, &d2];
        let (counts, occurrences) = harvest_name(&docs, "Prism");
        assert_eq!(occurrences, 2);
        assert!(counts.get("secret program").copied().unwrap_or(0) >= 2, "{counts:?}");
    }

    #[test]
    fn unknown_name_harvests_nothing() {
        let d = doc("some text about Prism here", "Prism");
        let docs = vec![&d];
        let (counts, occurrences) = harvest_name(&docs, "Missing");
        assert_eq!(occurrences, 0);
        assert!(counts.is_empty());
    }

    #[test]
    fn mention_names_counts_surfaces() {
        let d1 = doc("about Prism today", "Prism");
        let d2 = doc("about Prism again", "Prism");
        let docs = vec![&d1, &d2];
        let names = mention_names(&docs);
        assert_eq!(names.get("Prism"), Some(&2));
    }

    #[test]
    fn window_is_bounded() {
        // A long document: phrases far from the mention are not harvested.
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("filler{i} "));
        }
        text.push_str("unique signal phrase near Snowden");
        let d = doc(&text, "Snowden");
        let counts = harvest_window(&d, &d.mentions[0].mention);
        assert!(counts.keys().any(|p| p.contains("signal")), "{counts:?}");
        assert!(!counts.keys().any(|p| p.contains("filler0")), "{counts:?}");
    }
}
