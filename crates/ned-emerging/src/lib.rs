#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! NED-EE: discovering emerging entities (Chapter 5).
//!
//! Knowledge bases are never complete; new entities constantly emerge,
//! often under names that existing entities already carry ("Prism",
//! "Snowden"). This crate implements the thesis' approach of making
//! emerging entities *first-class citizens* of the disambiguation:
//!
//! - [`confidence`]: assessors for how certain a disambiguation is —
//!   score normalization (§5.4.1), mention perturbation (§5.4.2), entity
//!   perturbation (§5.4.3), and the combined CONF measure (§5.7.1).
//! - [`harvest`]: keyphrase harvesting from document streams with the
//!   part-of-speech patterns of Appendix A (§5.5.1).
//! - [`ee_model`]: the placeholder-entity keyphrase model built by *model
//!   difference* — global name model minus the in-KB candidates' models
//!   (Algorithm 2, §5.5.2).
//! - [`discover`]: the NED-EE discovery algorithm (Algorithm 3, §5.6) plus
//!   the score-thresholding baselines it is compared against.
//! - [`enrich`]: KB maintenance — harvesting additional keyphrases for
//!   existing entities from high-confidence disambiguations (§5.5.1).
//! - [`policy`]: the incremental promotion policy — support + confidence
//!   thresholds that turn accumulated EE evidence into WAL-ready
//!   [`ned_kb::KbMutation`] sequences (§5.6, incremental variant).

pub mod confidence;
pub mod discover;
pub mod ee_model;
pub mod enrich;
pub mod harvest;
pub mod policy;
pub mod promote;

pub use confidence::{ConfAssessor, ConfidenceMethod};
pub use discover::{EeConfig, EeDiscovery, ThresholdEe};
pub use ee_model::{EeModel, NameModels};
pub use policy::{Promotion, PromotionPolicy, PromotionTracker};
pub use promote::promote_entity;
