//! The placeholder-entity keyphrase model (Algorithm 2, §5.5.2).
//!
//! For an ambiguous name, the *global model* (phrases harvested from a news
//! chunk around its mentions) contains evidence for every entity carrying
//! the name — in-KB and emerging alike. Since the in-KB candidates' models
//! are known, subtracting them from the global model leaves the phrases
//! characteristic of the *emerging* entity:
//!
//! `d = α · (b − c)` per phrase, where `b` is the harvested count, `c` the
//! in-KB candidates' count, and `α = |KB| / |news chunk|` balances the
//! collection sizes.

use std::collections::HashMap;

use ned_eval::gold::GoldDoc;
use ned_kb::{KbView, WordId};

use crate::harvest::{harvest_name, mention_names};

/// The keyphrase model of one potential emerging entity (one per name).
#[derive(Debug, Clone, Default)]
pub struct EeModel {
    /// The ambiguous name the model belongs to.
    pub name: String,
    /// Phrases with weights in (0, 1]: word-id sequences (KB-interned;
    /// words unknown to the KB vocabulary are dropped) plus surfaces.
    pub phrases: Vec<EePhrase>,
    /// Number of mention occurrences the model was harvested from.
    pub occurrences: u64,
}

/// One weighted phrase of an [`EeModel`].
#[derive(Debug, Clone)]
pub struct EePhrase {
    /// Lowercased surface.
    pub surface: String,
    /// KB-interned word ids (deduplicated, sorted).
    pub words: Vec<WordId>,
    /// Salience weight in (0, 1] from the adjusted count.
    pub weight: f64,
}

impl EeModel {
    /// True when the model has no phrases (no distinctive evidence for an
    /// emerging entity under this name).
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// All distinct word ids of the model.
    pub fn word_set(&self) -> Vec<WordId> {
        let mut ws: Vec<WordId> = self.phrases.iter().flat_map(|p| p.words.clone()).collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }
}

/// Configuration for model building.
#[derive(Debug, Clone)]
pub struct EeModelConfig {
    /// Keep at most this many phrases per model, by descending weight
    /// (§5.7.2 used 3,000; our phrases are far fewer).
    pub max_phrases: usize,
    /// Drop phrases whose adjusted count is below this.
    pub min_adjusted_count: f64,
}

impl Default for EeModelConfig {
    fn default() -> Self {
        EeModelConfig { max_phrases: 3000, min_adjusted_count: 0.5 }
    }
}

/// Builds the EE model for one name (Algorithm 2).
pub fn build_model<K: KbView + ?Sized>(
    kb: &K,
    docs: &[&GoldDoc],
    name: &str,
    config: &EeModelConfig,
) -> EeModel {
    let (global, occurrences) = harvest_name(docs, name);
    if global.is_empty() {
        return EeModel { name: name.to_string(), phrases: Vec::new(), occurrences };
    }
    // Collection-size balance α = |KB entities| / |news documents|.
    let alpha = if docs.is_empty() {
        1.0
    } else {
        (kb.entity_count().max(1) as f64) / (docs.len() as f64)
    };
    // In-KB candidates' keyphrase counts, keyed by lowercased surface, plus
    // their word sets for fuzzy matching: harvested phrases rarely match a
    // KB phrase verbatim (extraction merges adjacent noun runs), so the
    // subtraction also discounts phrases whose *words* overlap a candidate
    // phrase heavily — mirroring the partial matching of the scoring side.
    let mut kb_counts: HashMap<String, u64> = HashMap::new();
    let mut kb_word_sets: Vec<(Vec<WordId>, u64)> = Vec::new();
    for c in kb.candidates(name) {
        for ep in kb.keyphrases(c.entity) {
            let surface = kb.phrase_surface(ep.phrase).to_lowercase();
            *kb_counts.entry(surface).or_insert(0) += ep.count;
            let mut ws: Vec<WordId> = kb.phrase_words(ep.phrase).to_vec();
            ws.sort_unstable();
            ws.dedup();
            kb_word_sets.push((ws, ep.count));
        }
    }
    let fuzzy_kb_count = |surface: &str| -> f64 {
        let mut words: Vec<WordId> =
            surface.split_whitespace().filter_map(|w| kb.word_id(w)).collect();
        words.sort_unstable();
        words.dedup();
        if words.is_empty() {
            return 0.0;
        }
        let mut best = 0.0f64;
        for (ws, count) in &kb_word_sets {
            let inter = sorted_intersection(&words, ws);
            let union = words.len() + ws.len() - inter;
            let jaccard = inter as f64 / union as f64;
            if jaccard >= 0.5 {
                best = best.max(jaccard * *count as f64);
            }
        }
        best
    };
    // Model difference: d = α(b − c), clamped at 0, with `c` the exact or
    // fuzzy candidate count (whichever subtracts more).
    let mut adjusted: Vec<(String, f64)> = global
        .into_iter()
        .filter_map(|(surface, b)| {
            let exact = kb_counts.get(&surface).copied().unwrap_or(0) as f64;
            let c = exact.max(fuzzy_kb_count(&surface));
            let d = alpha * (b as f64 - c);
            (d >= config.min_adjusted_count).then_some((surface, d))
        })
        .collect();
    adjusted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    adjusted.truncate(config.max_phrases);
    let max_d = adjusted.first().map_or(1.0, |&(_, d)| d).max(f64::MIN_POSITIVE);
    let phrases = adjusted
        .into_iter()
        .filter_map(|(surface, d)| {
            let mut words: Vec<WordId> =
                surface.split_whitespace().filter_map(|w| kb.word_id(w)).collect();
            words.sort_unstable();
            words.dedup();
            if words.is_empty() {
                return None;
            }
            Some(EePhrase { surface, words, weight: (d / max_d).clamp(0.0, 1.0) })
        })
        .collect();
    EeModel { name: name.to_string(), phrases, occurrences }
}

fn sorted_intersection(a: &[WordId], b: &[WordId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// EE models for every name observed in a document chunk.
#[derive(Debug, Clone, Default)]
pub struct NameModels {
    models: HashMap<String, EeModel>,
}

impl NameModels {
    /// Builds models for all names occurring at least `min_occurrences`
    /// times in `docs` (the per-chunk redundancy requirement of §5.7.2).
    pub fn build<K: KbView + ?Sized>(
        kb: &K,
        docs: &[&GoldDoc],
        min_occurrences: u64,
        config: &EeModelConfig,
    ) -> Self {
        let mut models = HashMap::new();
        for (name, count) in mention_names(docs) {
            if count < min_occurrences {
                continue;
            }
            let model = build_model(kb, docs, &name, config);
            if !model.is_empty() {
                models.insert(name, model);
            }
        }
        NameModels { models }
    }

    /// The model for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&EeModel> {
        self.models.get(name)
    }

    /// Number of modeled names.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no names are modeled.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Inserts a model (for tests and custom pipelines).
    pub fn insert(&mut self, model: EeModel) {
        self.models.insert(model.name.clone(), model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_eval::gold::LabeledMention;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_text::{tokenize, Mention};

    /// KB knows "Prism" as a band with phrase "progressive rock band"; the
    /// news stream talks about a surveillance program.
    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let band = b.add_entity("Prism (band)", EntityKind::Organization);
        b.add_name(band, "Prism", 10);
        b.add_keyphrase(band, "progressive rock band", 5);
        // Words the harvested phrases will need in the vocabulary.
        let pad = b.add_entity("Pad", EntityKind::Other);
        b.add_keyphrase(pad, "secret surveillance program", 1);
        b.add_keyphrase(pad, "intelligence whistleblower leak", 1);
        b.build()
    }

    fn news_doc(id: &str, text: &str) -> GoldDoc {
        let tokens = tokenize(text);
        let pos = tokens.iter().position(|t| t.text == "Prism").unwrap();
        GoldDoc::new(
            id,
            tokens,
            vec![LabeledMention { mention: Mention::new("Prism", pos, pos + 1), label: None }],
            0,
        )
    }

    fn docs() -> Vec<GoldDoc> {
        vec![
            news_doc("n1", "the secret surveillance program called Prism was revealed"),
            news_doc("n2", "a secret surveillance program and Prism leak shocked everyone"),
            news_doc("n3", "the progressive rock band played before Prism news broke"),
        ]
    }

    #[test]
    fn model_difference_keeps_novel_phrases() {
        let kb = kb();
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        let model = build_model(&kb, &refs, "Prism", &EeModelConfig::default());
        assert!(!model.is_empty());
        assert!(
            model.phrases.iter().any(|p| p.surface.contains("surveillance program")),
            "{model:?}"
        );
        assert_eq!(model.occurrences, 3);
    }

    #[test]
    fn model_difference_subtracts_kb_phrases() {
        let kb = kb();
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        let model = build_model(&kb, &refs, "Prism", &EeModelConfig::default());
        // "progressive rock band" is a KB phrase of the candidate (count 5 >
        // harvested 1) and must be subtracted away.
        assert!(
            !model.phrases.iter().any(|p| p.surface == "progressive rock band"),
            "{model:?}"
        );
    }

    #[test]
    fn weights_are_normalized() {
        let kb = kb();
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        let model = build_model(&kb, &refs, "Prism", &EeModelConfig::default());
        let max = model.phrases.iter().map(|p| p.weight).fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        for p in &model.phrases {
            assert!(p.weight > 0.0 && p.weight <= 1.0);
        }
    }

    #[test]
    fn unknown_name_yields_empty_model() {
        let kb = kb();
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        let model = build_model(&kb, &refs, "Nothing", &EeModelConfig::default());
        assert!(model.is_empty());
    }

    #[test]
    fn name_models_respect_min_occurrences() {
        let kb = kb();
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        let models = NameModels::build(&kb, &refs, 2, &EeModelConfig::default());
        assert!(models.get("Prism").is_some());
        let strict = NameModels::build(&kb, &refs, 10, &EeModelConfig::default());
        assert!(strict.get("Prism").is_none());
        assert!(strict.is_empty());
    }

    #[test]
    fn max_phrases_truncates_by_weight() {
        let kb = kb();
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        let config = EeModelConfig { max_phrases: 1, ..Default::default() };
        let model = build_model(&kb, &refs, "Prism", &config);
        assert_eq!(model.phrases.len(), 1);
        // The kept phrase is the most frequent one.
        assert!(model.phrases[0].surface.contains("surveillance"), "{model:?}");
    }
}
