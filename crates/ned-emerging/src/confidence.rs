//! Disambiguation-confidence assessment (§5.4).
//!
//! Three techniques, each producing a per-mention confidence in [0, 1]:
//!
//! - **Score normalization** (§5.4.1): the chosen entity's share of the
//!   total candidate score mass.
//! - **Mention perturbation** (§5.4.2): re-run NED on random subsets of the
//!   mentions; confidence = fraction of runs in which the original entity
//!   is chosen again.
//! - **Entity perturbation** (§5.4.3): force random subsets of the *other*
//!   mentions onto alternate (incorrect) entities and re-run; confidence =
//!   stability of the original choice.
//!
//! The combined **CONF** measure of §5.7.1 is the mean of the normalized
//! weighted-degree score and the entity-perturbation stability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ned_aida::candidates::CandidateFeatures;
use ned_aida::{DisambiguationResult, Disambiguator};
use ned_kb::KbView;
use ned_relatedness::Relatedness;

/// Which confidence assessor to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfidenceMethod {
    /// Normalized final score only.
    Normalized,
    /// Mention-perturbation stability only.
    PerturbMentions,
    /// Entity-perturbation stability only.
    PerturbEntities,
    /// CONF: mean of normalized score and entity-perturbation stability.
    Conf,
}

/// Confidence assessor configuration.
#[derive(Debug, Clone)]
pub struct ConfAssessor {
    /// The technique.
    pub method: ConfidenceMethod,
    /// Number of perturbation iterations (the thesis used ~500; 64 is
    /// plenty at our scale and keeps the harness fast).
    pub iterations: usize,
    /// Fraction of mentions perturbed per iteration.
    pub perturb_fraction: f64,
    /// Seed for the perturbation sampling.
    pub seed: u64,
}

impl Default for ConfAssessor {
    fn default() -> Self {
        ConfAssessor {
            method: ConfidenceMethod::Conf,
            iterations: 64,
            perturb_fraction: 0.3,
            seed: 0xc0_4f,
        }
    }
}

impl ConfAssessor {
    /// Creates an assessor for `method` with default sampling parameters.
    pub fn new(method: ConfidenceMethod) -> Self {
        ConfAssessor { method, ..Default::default() }
    }

    /// Assesses the confidence of every mention's assignment.
    ///
    /// `features` are the per-mention candidate features the result was
    /// computed from (via [`Disambiguator::features`]); the perturbation
    /// assessors re-run [`Disambiguator::disambiguate_features`] on
    /// modified copies.
    pub fn assess<K: KbView, R: Relatedness>(
        &self,
        aida: &Disambiguator<K, R>,
        features: &[Vec<CandidateFeatures>],
        result: &DisambiguationResult,
    ) -> Vec<f64> {
        match self.method {
            ConfidenceMethod::Normalized => normalized_confidence(result),
            ConfidenceMethod::PerturbMentions => self.perturb_mentions(aida, features, result),
            ConfidenceMethod::PerturbEntities => self.perturb_entities(aida, features, result),
            ConfidenceMethod::Conf => {
                let norm = normalized_confidence(result);
                let perturb = self.perturb_entities(aida, features, result);
                norm.iter().zip(perturb).map(|(n, p)| 0.5 * n + 0.5 * p).collect()
            }
        }
    }

    /// §5.4.2: drop random mention subsets and count choice stability.
    fn perturb_mentions<K: KbView, R: Relatedness>(
        &self,
        aida: &Disambiguator<K, R>,
        features: &[Vec<CandidateFeatures>],
        result: &DisambiguationResult,
    ) -> Vec<f64> {
        let m = features.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut chosen_counts = vec![0u32; m];
        let mut present_counts = vec![0u32; m];
        if m == 0 {
            return Vec::new();
        }
        for _ in 0..self.iterations {
            // Random subset: each mention kept with probability
            // 1 − perturb_fraction, at least one kept.
            let kept: Vec<usize> =
                (0..m).filter(|_| rng.random::<f64>() >= self.perturb_fraction).collect();
            if kept.is_empty() {
                continue;
            }
            let sub_features: Vec<Vec<CandidateFeatures>> =
                kept.iter().map(|&i| features[i].clone()).collect();
            let sub_result = aida.disambiguate_features(&sub_features);
            for (k, &orig_idx) in kept.iter().enumerate() {
                present_counts[orig_idx] += 1;
                if sub_result.assignments[k].entity == result.assignments[orig_idx].entity {
                    chosen_counts[orig_idx] += 1;
                }
            }
        }
        stability(&chosen_counts, &present_counts)
    }

    /// §5.4.3: force random subsets of mentions onto alternate entities and
    /// count the stability of the remaining assignments.
    fn perturb_entities<K: KbView, R: Relatedness>(
        &self,
        aida: &Disambiguator<K, R>,
        features: &[Vec<CandidateFeatures>],
        result: &DisambiguationResult,
    ) -> Vec<f64> {
        let m = features.len();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed);
        let mut chosen_counts = vec![0u32; m];
        let mut present_counts = vec![0u32; m];
        if m == 0 {
            return Vec::new();
        }
        for _ in 0..self.iterations {
            let mut perturbed = vec![false; m];
            for (i, p) in perturbed.iter_mut().enumerate() {
                // Only mentions with an alternative can be force-mapped.
                *p = features[i].len() >= 2 && rng.random::<f64>() < self.perturb_fraction;
            }
            if perturbed.iter().all(|&p| p) {
                continue;
            }
            let forced: Vec<Vec<CandidateFeatures>> = features
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    if !perturbed[i] {
                        return f.clone();
                    }
                    // Force-map to an alternate candidate, sampled uniformly
                    // among the non-chosen ones.
                    let original = result.assignments[i].entity;
                    let alternates: Vec<&CandidateFeatures> =
                        f.iter().filter(|c| Some(c.entity) != original).collect();
                    let pick = alternates[rng.random_range(0..alternates.len())];
                    vec![*pick]
                })
                .collect();
            let sub_result = aida.disambiguate_features(&forced);
            for i in 0..m {
                if perturbed[i] {
                    continue;
                }
                present_counts[i] += 1;
                if sub_result.assignments[i].entity == result.assignments[i].entity {
                    chosen_counts[i] += 1;
                }
            }
        }
        stability(&chosen_counts, &present_counts)
    }
}

/// §5.4.1: per-mention normalized score of the chosen entity.
pub fn normalized_confidence(result: &DisambiguationResult) -> Vec<f64> {
    result.assignments.iter().map(|a| a.normalized_score()).collect()
}

fn stability(chosen: &[u32], present: &[u32]) -> Vec<f64> {
    chosen
        .iter()
        .zip(present)
        .map(|(&c, &p)| if p == 0 { 0.0 } else { f64::from(c) / f64::from(p) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ned_aida::AidaConfig;
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_relatedness::MilneWitten;
    use ned_text::{tokenize, Mention};

    /// KB with one clear-cut mention ("Gibson" with strong context) and one
    /// genuinely uncertain mention ("Page" with no context and a flat
    /// prior).
    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let gibson = b.add_entity("Gibson Les Paul", EntityKind::Other);
        let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
        let larry = b.add_entity("Larry Page", EntityKind::Person);
        b.add_name(gibson, "Gibson", 100);
        b.add_name(jimmy, "Page", 50);
        b.add_name(larry, "Page", 50);
        b.add_keyphrase(gibson, "electric guitar", 5);
        b.add_keyphrase(jimmy, "hard rock", 3);
        b.add_keyphrase(larry, "search engine", 3);
        b.build()
    }

    fn setup(
        kb: &KnowledgeBase,
    ) -> (Disambiguator<&KnowledgeBase, MilneWitten<&KnowledgeBase>>, Vec<f64>, Vec<f64>) {
        let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::r_prior_sim());
        let tokens = tokenize("the electric guitar by Gibson was played by Page");
        let mentions = vec![Mention::new("Gibson", 4, 5), Mention::new("Page", 9, 10)];
        let features = aida.features(&tokens, &mentions);
        let result = aida.disambiguate_features(&features);
        let norm = ConfAssessor::new(ConfidenceMethod::Normalized).assess(&aida, &features, &result);
        let conf = ConfAssessor::new(ConfidenceMethod::Conf).assess(&aida, &features, &result);
        (aida, norm, conf)
    }

    #[test]
    fn confident_mention_scores_higher_than_uncertain() {
        let kb = kb();
        let (_aida, norm, conf) = setup(&kb);
        // "Gibson" (unambiguous, matching context) ≫ "Page" (flat prior,
        // no context).
        assert!(norm[0] > norm[1], "norm {norm:?}");
        assert!(conf[0] > conf[1], "conf {conf:?}");
    }

    #[test]
    fn confidences_are_in_unit_interval() {
        let kb = kb();
        let (_a, norm, conf) = setup(&kb);
        for v in norm.iter().chain(&conf) {
            assert!((0.0..=1.0).contains(v), "{v}");
        }
    }

    #[test]
    fn unambiguous_single_candidate_is_fully_confident() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::r_prior_sim());
        let tokens = tokenize("electric guitar Gibson");
        let mentions = vec![Mention::new("Gibson", 2, 3)];
        let features = aida.features(&tokens, &mentions);
        let result = aida.disambiguate_features(&features);
        let conf = ConfAssessor::new(ConfidenceMethod::Normalized).assess(&aida, &features, &result);
        assert!((conf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assessment_is_deterministic() {
        let kb = kb();
        let (_a, _n, c1) = setup(&kb);
        let (_a2, _n2, c2) = setup(&kb);
        assert_eq!(c1, c2);
    }

    #[test]
    fn perturb_mentions_runs() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::r_prior_sim());
        let tokens = tokenize("the electric guitar by Gibson was played by Page");
        let mentions = vec![Mention::new("Gibson", 4, 5), Mention::new("Page", 9, 10)];
        let features = aida.features(&tokens, &mentions);
        let result = aida.disambiguate_features(&features);
        let conf =
            ConfAssessor::new(ConfidenceMethod::PerturbMentions).assess(&aida, &features, &result);
        assert_eq!(conf.len(), 2);
        // Gibson stays stable under any perturbation.
        assert!(conf[0] > 0.9, "{conf:?}");
    }

    #[test]
    fn empty_document_gives_empty_confidence() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::r_prior_sim());
        let result = aida.disambiguate_features(&[]);
        for method in [
            ConfidenceMethod::Normalized,
            ConfidenceMethod::PerturbMentions,
            ConfidenceMethod::PerturbEntities,
            ConfidenceMethod::Conf,
        ] {
            let conf = ConfAssessor::new(method).assess(&aida, &[], &result);
            assert!(conf.is_empty());
        }
    }
}
