//! Promotion policy: when does a discovered emerging entity enter the KB?
//!
//! Discovery ([`crate::discover`]) labels mentions as out-of-KB, but §5.6
//! wants more than labels: once an emerging entity has been seen often
//! enough, with enough confidence, it "should be promoted … to a
//! canonicalized entity". [`promote_entity`](crate::promote::promote_entity)
//! does that by rebuilding the whole KB; this module is the *incremental*
//! counterpart — it emits the equivalent [`KbMutation`] sequence so the
//! entity can be appended to the WAL and served through a
//! [`ned_kb::DeltaKb`] overlay without a rebuild.
//!
//! The policy is deliberately simple and deterministic:
//!
//! - **support**: a surface must accumulate at least `min_support`
//!   EE-labeled mentions, and
//! - **confidence**: the mean discovery confidence of those mentions must
//!   reach `min_confidence`,
//! - and the global name model for the surface must be non-empty (there is
//!   distinctive keyphrase evidence to represent the entity with).
//!
//! The emitted mutations mirror the count arithmetic of
//! [`promote_entity`](crate::promote::promote_entity) exactly — anchor
//! count `support.max(1)`, keyphrase counts `(weight · 5).ceil().max(1)` —
//! so a WAL-promoted entity and a rebuild-promoted entity are
//! indistinguishable to the disambiguator.

use std::collections::BTreeMap;

use ned_kb::{EntityKind, KbMutation, KbView};
use ned_obs::{names, Metrics};

use crate::ee_model::NameModels;

/// Thresholds deciding when an emerging surface becomes a KB entity.
#[derive(Debug, Clone)]
pub struct PromotionPolicy {
    /// Minimum number of EE-labeled mentions of the surface.
    pub min_support: u64,
    /// Minimum mean discovery confidence over those mentions.
    pub min_confidence: f64,
    /// Kind assigned to promoted entities (there is no type evidence in
    /// the stream, so one coarse class for all promotions).
    pub kind: EntityKind,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        PromotionPolicy { min_support: 3, min_confidence: 0.5, kind: EntityKind::Other }
    }
}

/// One promotion decision: the mutation sequence that canonicalizes an
/// emerging surface.
#[derive(Debug, Clone)]
pub struct Promotion {
    /// Canonical name of the new entity (`"<surface> (emerging)"`).
    pub canonical_name: String,
    /// The ambiguous surface the entity was discovered under.
    pub surface: String,
    /// EE-labeled mentions accumulated when the promotion fired.
    pub support: u64,
    /// Mean discovery confidence of those mentions.
    pub mean_confidence: f64,
    /// The WAL-ready mutation sequence.
    pub mutations: Vec<KbMutation>,
}

/// Per-surface evidence accumulated by a [`PromotionTracker`].
#[derive(Debug, Clone, Copy, Default)]
struct SurfaceStats {
    mentions: u64,
    confidence_sum: f64,
}

/// Accumulates EE-labeled mention evidence across a document stream and
/// turns it into [`Promotion`]s once the policy thresholds are met.
///
/// Deterministic: surfaces are tracked in a `BTreeMap`, so promotions come
/// out in lexicographic surface order regardless of observation order
/// interleaving.
#[derive(Debug, Default)]
pub struct PromotionTracker {
    stats: BTreeMap<String, SurfaceStats>,
    /// Surfaces already promoted (never re-promoted by this tracker).
    promoted: BTreeMap<String, String>,
}

impl PromotionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one EE-labeled mention of `surface` with its discovery
    /// confidence (`1 − conf(best in-KB candidate)` or the assessor value
    /// the caller uses for the EE decision).
    pub fn observe_ee(&mut self, surface: &str, confidence: f64) {
        let s = self.stats.entry(surface.to_string()).or_default();
        s.mentions += 1;
        s.confidence_sum += confidence;
    }

    /// EE-labeled mentions recorded so far for `surface`.
    pub fn support(&self, surface: &str) -> u64 {
        self.stats.get(surface).map_or(0, |s| s.mentions)
    }

    /// The canonical name `surface` was promoted under, if it has been.
    pub fn promoted_as(&self, surface: &str) -> Option<&str> {
        self.promoted.get(surface).map(String::as_str)
    }

    /// Number of surfaces promoted so far.
    pub fn promoted_count(&self) -> usize {
        self.promoted.len()
    }

    /// Drains every surface that currently satisfies `policy` into a
    /// [`Promotion`], in lexicographic surface order.
    ///
    /// A surface only qualifies when the global name model has distinctive
    /// phrases for it and the derived canonical name is still free in
    /// `kb`. Promoted surfaces stop accumulating (their evidence is
    /// consumed); unqualified surfaces keep their evidence for later
    /// rounds. Bumps the `ee_promoted` counter once per promotion.
    pub fn drain_promotions<K: KbView + ?Sized>(
        &mut self,
        policy: &PromotionPolicy,
        models: &NameModels,
        kb: &K,
        metrics: &Metrics,
    ) -> Vec<Promotion> {
        let mut out = Vec::new();
        let surfaces: Vec<String> = self
            .stats
            .iter()
            .filter(|(_, s)| s.mentions >= policy.min_support)
            .map(|(surface, _)| surface.clone())
            .collect();
        for surface in surfaces {
            let Some(stats) = self.stats.get(&surface).copied() else { continue };
            let mean_confidence = stats.confidence_sum / stats.mentions as f64;
            if mean_confidence < policy.min_confidence {
                continue;
            }
            let Some(model) = models.get(&surface) else { continue };
            if model.is_empty() {
                continue;
            }
            let canonical_name = format!("{surface} (emerging)");
            if kb.entity_by_name(&canonical_name).is_some() {
                // Already in the KB (e.g. promoted by an earlier overlay the
                // caller now serves): consume the evidence, emit nothing.
                self.stats.remove(&surface);
                self.promoted.insert(surface, canonical_name);
                continue;
            }
            let mut mutations = Vec::with_capacity(2 + model.phrases.len());
            mutations.push(KbMutation::AddEntity {
                canonical_name: canonical_name.clone(),
                kind: policy.kind,
            });
            // Same arithmetic as promote_entity: the accumulated support is
            // the initial anchor count of the ambiguous name.
            mutations.push(KbMutation::AddDictionarySurface {
                entity: canonical_name.clone(),
                surface: surface.clone(),
                count: stats.mentions.max(1),
            });
            for phrase in &model.phrases {
                // Scale the [0,1] salience back into a small integer count.
                let count = (phrase.weight * 5.0).ceil() as u64;
                mutations.push(KbMutation::AddKeyphrase {
                    entity: canonical_name.clone(),
                    surface: phrase.surface.clone(),
                    count: count.max(1),
                });
            }
            metrics.counter(names::EE_PROMOTED).inc();
            self.stats.remove(&surface);
            self.promoted.insert(surface.clone(), canonical_name.clone());
            out.push(Promotion {
                canonical_name,
                surface,
                support: stats.mentions,
                mean_confidence,
                mutations,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ee_model::{EeModel, EePhrase};
    use ned_kb::{KbBuilder, KnowledgeBase};

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let band = b.add_entity("Prism (band)", EntityKind::Organization);
        b.add_name(band, "Prism", 10);
        b.add_keyphrase(band, "progressive rock band", 5);
        b.add_keyphrase(band, "secret surveillance program", 1);
        b.build()
    }

    fn models(kb: &KnowledgeBase) -> NameModels {
        let words = |s: &str| {
            let mut w: Vec<_> = s.split_whitespace().filter_map(|x| kb.word_id(x)).collect();
            w.sort_unstable();
            w.dedup();
            w
        };
        let mut m = NameModels::default();
        m.insert(EeModel {
            name: "Prism".into(),
            phrases: vec![EePhrase {
                surface: "secret surveillance program".into(),
                words: words("secret surveillance program"),
                weight: 0.9,
            }],
            occurrences: 7,
        });
        m
    }

    #[test]
    fn promotion_fires_after_support_and_confidence() {
        let kb = kb();
        let models = models(&kb);
        let policy = PromotionPolicy::default();
        let metrics = Metrics::new();
        let mut tracker = PromotionTracker::new();
        tracker.observe_ee("Prism", 0.8);
        tracker.observe_ee("Prism", 0.7);
        // Below min_support: nothing yet.
        assert!(tracker.drain_promotions(&policy, &models, &kb, &metrics).is_empty());
        tracker.observe_ee("Prism", 0.9);
        let promos = tracker.drain_promotions(&policy, &models, &kb, &metrics);
        assert_eq!(promos.len(), 1);
        let p = &promos[0];
        assert_eq!(p.canonical_name, "Prism (emerging)");
        assert_eq!(p.support, 3);
        assert!(p.mean_confidence > 0.75);
        assert_eq!(p.mutations.len(), 3);
        assert!(matches!(
            &p.mutations[1],
            KbMutation::AddDictionarySurface { count: 3, .. }
        ));
        // (0.9 * 5).ceil() = 5.
        assert!(matches!(&p.mutations[2], KbMutation::AddKeyphrase { count: 5, .. }));
        assert_eq!(metrics.counter_value(names::EE_PROMOTED), 1);
        // Evidence is consumed: no double promotion.
        assert!(tracker.drain_promotions(&policy, &models, &kb, &metrics).is_empty());
        assert_eq!(tracker.promoted_as("Prism"), Some("Prism (emerging)"));
    }

    #[test]
    fn low_confidence_surfaces_keep_their_evidence() {
        let kb = kb();
        let models = models(&kb);
        let policy = PromotionPolicy { min_confidence: 0.9, ..Default::default() };
        let metrics = Metrics::disabled();
        let mut tracker = PromotionTracker::new();
        for _ in 0..5 {
            tracker.observe_ee("Prism", 0.5);
        }
        assert!(tracker.drain_promotions(&policy, &models, &kb, &metrics).is_empty());
        assert_eq!(tracker.support("Prism"), 5);
    }

    #[test]
    fn surfaces_without_model_evidence_never_promote() {
        let kb = kb();
        let models = NameModels::default();
        let policy = PromotionPolicy::default();
        let metrics = Metrics::disabled();
        let mut tracker = PromotionTracker::new();
        for _ in 0..10 {
            tracker.observe_ee("Unmodeled", 1.0);
        }
        assert!(tracker.drain_promotions(&policy, &models, &kb, &metrics).is_empty());
    }

    #[test]
    fn mutations_apply_cleanly_to_a_frozen_base() {
        use std::sync::Arc;
        let kb = kb();
        let models = models(&kb);
        let metrics = Metrics::disabled();
        let mut tracker = PromotionTracker::new();
        for _ in 0..4 {
            tracker.observe_ee("Prism", 0.8);
        }
        let promos =
            tracker.drain_promotions(&PromotionPolicy::default(), &models, &kb, &metrics);
        let base = Arc::new(ned_kb::FrozenKb::freeze(&kb));
        let muts: Vec<KbMutation> =
            promos.into_iter().flat_map(|p| p.mutations).collect();
        let delta = ned_kb::DeltaKb::build(base, muts).unwrap();
        let id = delta.entity_by_name("Prism (emerging)").unwrap();
        assert!(delta.candidates("Prism").iter().any(|c| c.entity == id));
        assert!(!delta.keyphrases(id).is_empty());
    }
}
