//! The NED-EE discovery algorithm (Algorithm 3, §5.6) and the
//! score-thresholding baselines of §5.7.2.
//!
//! Emerging entities become first-class citizens: every eligible mention
//! gets an additional *EE placeholder candidate* whose keyphrase model is
//! the Algorithm-2 difference model, and the regular disambiguator decides
//! between in-KB candidates and the placeholder. Mentions with very low
//! confidence are set to EE directly; very high-confidence mentions are
//! fixed to their entity (the `t_l` / `t_u` thresholds of Algorithm 3).

use ned_aida::candidates::CandidateFeatures;
use ned_aida::config::AidaConfig;
use ned_aida::cover::shortest_cover_unsorted_into;
use ned_aida::scratch::with_scratch;
use ned_aida::{DisambiguationResult, Disambiguator};
use ned_eval::gold::Label;
use ned_kb::{EntityId, KbView, WordId};
use ned_obs::{names, Counter, Metrics};
use ned_relatedness::Relatedness;
use ned_text::{Mention, Token};

use crate::confidence::ConfAssessor;
use crate::ee_model::{EeModel, NameModels};

/// Sentinel base for EE placeholder entity ids; the placeholder of mention
/// `i` gets id `EE_ID_BASE + i`. Knowledge bases are far smaller than this.
pub const EE_ID_BASE: u32 = 0x8000_0000;

/// The placeholder id of mention `i`.
pub fn ee_id(mention_index: usize) -> EntityId {
    EntityId(EE_ID_BASE + mention_index as u32)
}

/// True if `id` is an EE placeholder.
pub fn is_ee_id(id: EntityId) -> bool {
    id.0 >= EE_ID_BASE
}

/// Converts a chosen entity to a label (`None` = EE / unmapped).
pub fn to_label(entity: Option<EntityId>) -> Label {
    entity.filter(|&e| !is_ee_id(e))
}

/// NED-EE configuration.
#[derive(Debug, Clone)]
pub struct EeConfig {
    /// Mentions with confidence ≤ `lower_threshold` become EE directly
    /// (0.0 disables the stage).
    pub lower_threshold: f64,
    /// Mentions with confidence ≥ `upper_threshold` are fixed to their
    /// entity (1.0 disables the stage).
    pub upper_threshold: f64,
    /// Balance of EE-placeholder scores against in-KB scores (the γ of
    /// §5.6).
    pub gamma: f64,
    /// Use graph coherence in the second pass (EEcoh); otherwise local
    /// similarity only (EEsim).
    pub use_coherence: bool,
    /// Confidence assessor for the threshold stages.
    pub assessor: ConfAssessor,
}

impl Default for EeConfig {
    fn default() -> Self {
        EeConfig {
            lower_threshold: 0.0,
            upper_threshold: 1.0,
            gamma: 0.5,
            use_coherence: false,
            assessor: ConfAssessor::default(),
        }
    }
}

/// Keyphrase-based similarity of an EE model against a mention context
/// (the analogue of Eq. 3.6 for placeholder entities), using IDF keyword
/// weights and the phrase salience weights of the model.
pub fn ee_simscore<K: KbView + ?Sized>(
    kb: &K,
    model: &EeModel,
    context: &[(usize, WordId)],
) -> f64 {
    let weights = kb.weights();
    // One worker-local cover scratch serves every phrase of the model: the
    // scratch-based cover is bit-identical to the reference
    // `shortest_cover`, and the phrase/cover mass expressions are unchanged.
    with_scratch(|scratch| {
        let mut total = 0.0;
        for phrase in &model.phrases {
            let phrase_mass: f64 = phrase.words.iter().map(|&w| weights.word_idf(w)).sum();
            if phrase_mass <= 0.0 {
                continue;
            }
            let Some(shape) =
                shortest_cover_unsorted_into(context, &phrase.words, &mut scratch.cover)
            else {
                continue;
            };
            let cover_mass: f64 =
                scratch.cover.cover_words().iter().map(|&w| weights.word_idf(w)).sum();
            if cover_mass <= 0.0 {
                continue;
            }
            let ratio = (cover_mass / phrase_mass).min(1.0);
            total += phrase.weight * shape.z() * ratio * ratio;
        }
        total
    })
}

/// Keyphrase-overlap coherence between an EE model and an in-KB entity:
/// IDF-weighted Jaccard over their keyword sets (the KORE-style coherence
/// the EEcoh variant uses, since link-based coherence cannot cover
/// placeholders).
pub fn ee_entity_coherence<K: KbView + ?Sized>(
    kb: &K,
    model: &EeModel,
    entity: EntityId,
) -> f64 {
    let weights = kb.weights();
    let model_words = model.word_set();
    if model_words.is_empty() {
        return 0.0;
    }
    let entity_words: Vec<WordId> =
        weights.keyword_npmi_row(entity).iter().map(|&(w, _)| w).collect();
    if entity_words.is_empty() {
        return 0.0;
    }
    let mut inter = 0.0;
    let mut union = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < model_words.len() && j < entity_words.len() {
        match model_words[i].cmp(&entity_words[j]) {
            std::cmp::Ordering::Less => {
                union += weights.word_idf(model_words[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += weights.word_idf(entity_words[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let idf = weights.word_idf(model_words[i]);
                inter += idf;
                union += idf;
                i += 1;
                j += 1;
            }
        }
    }
    for &w in &model_words[i..] {
        union += weights.word_idf(w);
    }
    for &w in &entity_words[j..] {
        union += weights.word_idf(w);
    }
    if union <= 0.0 {
        0.0
    } else {
        (inter / union).clamp(0.0, 1.0)
    }
}

/// A relatedness measure extended over EE placeholder ids (Figure 5.1's
/// graph with EE nodes).
pub struct EeAwareRelatedness<'a, K, R> {
    inner: R,
    kb: &'a K,
    /// Per-mention EE model (indexed by `id − EE_ID_BASE`).
    models: Vec<Option<&'a EeModel>>,
}

// Manual Debug: `R` need not be Debug and the borrowed KB would dump the
// whole store.
impl<K, R> std::fmt::Debug for EeAwareRelatedness<'_, K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EeAwareRelatedness")
            .field("models", &self.models.len())
            .finish_non_exhaustive()
    }
}

impl<K: KbView, R: Relatedness> Relatedness for EeAwareRelatedness<'_, K, R> {
    fn name(&self) -> &'static str {
        "EE-aware"
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        match (is_ee_id(a), is_ee_id(b)) {
            (false, false) => self.inner.relatedness(a, b),
            (true, true) => 0.0,
            (true, false) => self.model_coherence(a, b),
            (false, true) => self.model_coherence(b, a),
        }
    }
}

impl<K: KbView, R> EeAwareRelatedness<'_, K, R> {
    fn model_coherence(&self, ee: EntityId, entity: EntityId) -> f64 {
        let idx = (ee.0 - EE_ID_BASE) as usize;
        match self.models.get(idx).copied().flatten() {
            Some(model) => ee_entity_coherence(self.kb, model, entity),
            None => 0.0,
        }
    }
}

/// The NED-EE discovery pipeline over a base AIDA disambiguator.
pub struct EeDiscovery<'a, K, R> {
    base: &'a Disambiguator<K, R>,
    models: &'a NameModels,
    config: EeConfig,
    linked: Counter,
    emerging: Counter,
}

// Manual Debug: `R` need not be Debug.
impl<K, R> std::fmt::Debug for EeDiscovery<'_, K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EeDiscovery")
            .field("base", &self.base)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a, K: KbView, R: Relatedness> EeDiscovery<'a, K, R> {
    /// Creates the pipeline.
    pub fn new(base: &'a Disambiguator<K, R>, models: &'a NameModels, config: EeConfig) -> Self {
        EeDiscovery {
            base,
            models,
            config,
            linked: Counter::disabled(),
            emerging: Counter::disabled(),
        }
    }

    /// Records the linked/emerging outcome counters into `metrics`
    /// (builder style). The base disambiguator's own pipeline counters are
    /// configured separately via [`Disambiguator::with_metrics`]; the
    /// internal second pass stays unmetered so per-document totals are not
    /// double-counted.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        self.linked = metrics.counter(names::EE_MENTIONS_LINKED);
        self.emerging = metrics.counter(names::EE_MENTIONS_EMERGING);
        self
    }

    /// Runs Algorithm 3 and returns the final labels (`None` = EE) plus the
    /// full second-pass result.
    pub fn discover(
        &self,
        tokens: &[Token],
        mentions: &[Mention],
    ) -> (Vec<Label>, DisambiguationResult) {
        let kb = self.base.kb();
        let features = self.base.features(tokens, mentions);
        let initial = self.base.disambiguate_features(&features);
        let confidences = self.config.assessor.assess(self.base, &features, &initial);

        // Per-mention stage decisions + extended candidate lists.
        let mut forced_ee = vec![false; mentions.len()];
        let mut extended: Vec<Vec<CandidateFeatures>> = Vec::with_capacity(mentions.len());
        let mut mention_models: Vec<Option<&EeModel>> = vec![None; mentions.len()];
        let context = ned_aida::context::DocumentContext::build(kb, tokens);
        for (i, mention) in mentions.iter().enumerate() {
            let f = &features[i];
            if f.is_empty() {
                // Trivially out-of-KB: no dictionary candidates at all.
                forced_ee[i] = true;
                extended.push(Vec::new());
                continue;
            }
            if confidences[i] <= self.config.lower_threshold {
                forced_ee[i] = true;
                extended.push(Vec::new());
                continue;
            }
            if confidences[i] >= self.config.upper_threshold {
                // Fixed: only the chosen candidate survives.
                let chosen = initial.assignments[i].entity;
                extended.push(
                    f.iter().filter(|c| Some(c.entity) == chosen).copied().collect(),
                );
                continue;
            }
            // Middle band: add the EE placeholder candidate.
            let mut list: Vec<CandidateFeatures> = f.clone();
            if let Some(model) = self.models.get(&mention.surface) {
                let mention_ctx = context.for_mention(mention);
                let raw = ee_simscore(kb, model, &mention_ctx);
                list.push(CandidateFeatures {
                    entity: ee_id(i),
                    prior: 0.0,
                    sim: self.config.gamma * raw,
                    sim_normalized: 0.0,
                });
                mention_models[i] = Some(model);
            }
            // Re-normalize similarities over the extended candidate set.
            let max_sim = list.iter().map(|c| c.sim).fold(0.0f64, f64::max);
            for c in &mut list {
                c.sim_normalized = if max_sim > 0.0 { c.sim / max_sim } else { 0.0 };
            }
            extended.push(list);
        }

        // Second pass with EE-aware relatedness.
        let rel = EeAwareRelatedness {
            inner: self.base.relatedness(),
            kb,
            models: mention_models,
        };
        let mut config: AidaConfig = self.base.config().clone();
        config.use_coherence = self.config.use_coherence;
        let second = Disambiguator::new(kb, rel, config);
        let result = second.disambiguate_features(&extended);

        let labels: Vec<Label> = result
            .assignments
            .iter()
            .enumerate()
            .map(|(i, a)| if forced_ee[i] { None } else { to_label(a.entity) })
            .collect();
        for label in &labels {
            match label {
                Some(_) => self.linked.inc(),
                None => self.emerging.inc(),
            }
        }
        (labels, result)
    }
}

/// Score-thresholding EE baseline (the state-of-the-art approach NED-EE is
/// compared against): a mention becomes EE when its confidence falls below
/// a threshold.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdEe {
    /// The cutoff.
    pub threshold: f64,
}

impl ThresholdEe {
    /// Creates the baseline.
    pub fn new(threshold: f64) -> Self {
        ThresholdEe { threshold }
    }

    /// Applies the threshold to a result with per-mention confidences.
    pub fn apply(&self, result: &DisambiguationResult, confidences: &[f64]) -> Vec<Label> {
        assert_eq!(result.assignments.len(), confidences.len());
        result
            .assignments
            .iter()
            .zip(confidences)
            .map(|(a, &c)| if c < self.threshold { None } else { to_label(a.entity) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ee_model::{EePhrase, NameModels};
    use ned_kb::{EntityKind, KbBuilder, KnowledgeBase};
    use ned_relatedness::MilneWitten;
    use ned_text::tokenize;

    /// KB: "Prism" is a band. The text talks about a surveillance program —
    /// evidence for an emerging entity under the same name.
    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let band = b.add_entity("Prism (band)", EntityKind::Organization);
        b.add_name(band, "Prism", 10);
        b.add_keyphrase(band, "progressive rock band", 5);
        b.add_keyphrase(band, "stadium tour", 2);
        let gov = b.add_entity("US Government", EntityKind::Organization);
        b.add_name(gov, "Washington", 20);
        b.add_keyphrase(gov, "federal agency budget", 4);
        b.add_keyphrase(gov, "secret surveillance", 2);
        b.build()
    }

    fn model(kb: &KnowledgeBase) -> NameModels {
        let words = |s: &str| -> Vec<WordId> {
            let mut w: Vec<WordId> =
                s.split_whitespace().filter_map(|x| kb.word_id(x)).collect();
            w.sort_unstable();
            w.dedup();
            w
        };
        let mut models = NameModels::default();
        models.insert(EeModel {
            name: "Prism".into(),
            phrases: vec![
                EePhrase {
                    surface: "secret surveillance".into(),
                    words: words("secret surveillance"),
                    weight: 1.0,
                },
                EePhrase {
                    surface: "federal agency".into(),
                    words: words("federal agency"),
                    weight: 0.6,
                },
            ],
            occurrences: 5,
        });
        models
    }

    #[test]
    fn ee_wins_on_novel_context() {
        let kb = kb();
        let models = model(&kb);
        let aida =
            Disambiguator::new(&kb, MilneWitten::new(&kb), ned_aida::AidaConfig::sim_only());
        let ee = EeDiscovery::new(&aida, &models, EeConfig::default());
        let tokens = tokenize("the secret surveillance program Prism was revealed");
        let mentions = vec![Mention::new("Prism", 3, 4)];
        let (labels, _) = ee.discover(&tokens, &mentions);
        assert_eq!(labels, vec![None], "novel context must map to EE");
    }

    #[test]
    fn in_kb_entity_wins_on_matching_context() {
        let kb = kb();
        let models = model(&kb);
        let aida =
            Disambiguator::new(&kb, MilneWitten::new(&kb), ned_aida::AidaConfig::sim_only());
        let ee = EeDiscovery::new(&aida, &models, EeConfig::default());
        let tokens = tokenize("the progressive rock band Prism started a stadium tour");
        let mentions = vec![Mention::new("Prism", 4, 5)];
        let (labels, _) = ee.discover(&tokens, &mentions);
        assert_eq!(labels, vec![kb.entity_by_name("Prism (band)")]);
    }

    #[test]
    fn unknown_surface_is_trivially_ee() {
        let kb = kb();
        let models = model(&kb);
        let aida =
            Disambiguator::new(&kb, MilneWitten::new(&kb), ned_aida::AidaConfig::sim_only());
        let ee = EeDiscovery::new(&aida, &models, EeConfig::default());
        let tokens = tokenize("Snowden spoke");
        let mentions = vec![Mention::new("Snowden", 0, 1)];
        let (labels, _) = ee.discover(&tokens, &mentions);
        assert_eq!(labels, vec![None]);
    }

    #[test]
    fn gamma_zero_disables_ee() {
        let kb = kb();
        let models = model(&kb);
        let aida =
            Disambiguator::new(&kb, MilneWitten::new(&kb), ned_aida::AidaConfig::sim_only());
        let config = EeConfig { gamma: 0.0, ..Default::default() };
        let ee = EeDiscovery::new(&aida, &models, config);
        let tokens = tokenize("the secret surveillance program Prism was revealed");
        let mentions = vec![Mention::new("Prism", 3, 4)];
        let (labels, _) = ee.discover(&tokens, &mentions);
        assert_eq!(labels, vec![kb.entity_by_name("Prism (band)")]);
    }

    #[test]
    fn threshold_baseline_cuts_low_confidence() {
        let kb = kb();
        let aida =
            Disambiguator::new(&kb, MilneWitten::new(&kb), ned_aida::AidaConfig::sim_only());
        let tokens = tokenize("the progressive rock band Prism played");
        let mentions = vec![Mention::new("Prism", 4, 5)];
        let features = aida.features(&tokens, &mentions);
        let result = aida.disambiguate_features(&features);
        let high = ThresholdEe::new(0.99).apply(&result, &[0.5]);
        assert_eq!(high, vec![None]);
        let low = ThresholdEe::new(0.1).apply(&result, &[0.5]);
        assert_eq!(low, vec![kb.entity_by_name("Prism (band)")]);
    }

    #[test]
    fn ee_entity_coherence_prefers_overlapping_entities() {
        let kb = kb();
        let models = model(&kb);
        let m = models.get("Prism").unwrap();
        let gov = kb.entity_by_name("US Government").unwrap();
        let band = kb.entity_by_name("Prism (band)").unwrap();
        // The model shares "secret surveillance"/"federal agency" words with
        // the government, nothing with the band.
        assert!(ee_entity_coherence(&kb, m, gov) > ee_entity_coherence(&kb, m, band));
    }

    #[test]
    fn outcome_counters_split_linked_and_emerging() {
        use ned_obs::{names, Metrics};
        let kb = kb();
        let models = model(&kb);
        let metrics = Metrics::new();
        let aida =
            Disambiguator::new(&kb, MilneWitten::new(&kb), ned_aida::AidaConfig::sim_only());
        let ee = EeDiscovery::new(&aida, &models, EeConfig::default())
            .with_metrics(&metrics);
        let tokens = tokenize("the secret surveillance program Prism was revealed");
        ee.discover(&tokens, &[Mention::new("Prism", 3, 4)]);
        let tokens = tokenize("the progressive rock band Prism started a stadium tour");
        ee.discover(&tokens, &[Mention::new("Prism", 4, 5)]);
        assert_eq!(metrics.counter_value(names::EE_MENTIONS_EMERGING), 1);
        assert_eq!(metrics.counter_value(names::EE_MENTIONS_LINKED), 1);
    }

    #[test]
    fn sentinel_ids_do_not_collide() {
        assert!(is_ee_id(ee_id(0)));
        assert!(is_ee_id(ee_id(1000)));
        assert!(!is_ee_id(EntityId(0)));
        assert_eq!(to_label(Some(ee_id(3))), None);
        assert_eq!(to_label(Some(EntityId(7))), Some(EntityId(7)));
        assert_eq!(to_label(None), None);
    }
}
