//! Promoting a discovered emerging entity into the knowledge base (the KB
//! maintenance life-cycle of §5.6: "Once we have identified a new EE, it
//! should be added to the knowledge base in a representation that is strong
//! enough to distinguish it from further EEs with the same name. At some
//! point … it should be promoted … to a canonicalized entity").

use ned_kb::{EntityId, EntityKind, KbBuilder, KbView, KnowledgeBase};

use crate::ee_model::EeModel;

/// Promotes an EE model to a first-class entity: the enlarged KB contains
/// a new entity under `canonical_name`, registered in the dictionary under
/// the model's ambiguous name, carrying the model's keyphrases.
///
/// Returns the rebuilt KB and the new entity's id. Existing entity ids are
/// preserved (rebuilds are id-stable), so gold labels and indexes remain
/// valid.
///
/// # Panics
/// Panics when `canonical_name` is already taken or the model is empty.
pub fn promote_entity<K: KbView + ?Sized>(
    kb: &K,
    model: &EeModel,
    canonical_name: &str,
    kind: EntityKind,
    initial_anchor_count: u64,
) -> (KnowledgeBase, EntityId) {
    assert!(!model.is_empty(), "cannot promote an entity without keyphrases");
    let mut builder = KbBuilder::from_kb(kb);
    let id = builder.add_entity(canonical_name, kind);
    builder.add_name(id, &model.name, initial_anchor_count.max(1));
    for phrase in &model.phrases {
        // Scale the [0,1] salience back into a small integer count.
        let count = (phrase.weight * 5.0).ceil() as u64;
        builder.add_keyphrase(id, &phrase.surface, count.max(1));
    }
    (builder.build(), id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ee_model::EePhrase;
    use ned_aida::{AidaConfig, Disambiguator, NedMethod};
    use ned_relatedness::MilneWitten;
    use ned_text::{tokenize, Mention};

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let band = b.add_entity("Prism (band)", EntityKind::Organization);
        b.add_name(band, "Prism", 10);
        b.add_keyphrase(band, "progressive rock band", 5);
        let pad = b.add_entity("Pad", EntityKind::Other);
        b.add_keyphrase(pad, "secret surveillance program", 1);
        b.build()
    }

    fn model(kb: &KnowledgeBase) -> EeModel {
        let words = |s: &str| {
            let mut w: Vec<_> = s.split_whitespace().filter_map(|x| kb.word_id(x)).collect();
            w.sort_unstable();
            w.dedup();
            w
        };
        EeModel {
            name: "Prism".into(),
            phrases: vec![
                EePhrase {
                    surface: "secret surveillance program".into(),
                    words: words("secret surveillance program"),
                    weight: 1.0,
                },
            ],
            occurrences: 7,
        }
    }

    #[test]
    fn promotion_creates_a_disambiguatable_entity() {
        let kb = kb();
        let model = model(&kb);
        let (enlarged, new_id) =
            promote_entity(&kb, &model, "PRISM (program)", EntityKind::Other, 3);
        assert_eq!(enlarged.entity_count(), kb.entity_count() + 1);
        assert_eq!(enlarged.entity(new_id).canonical_name, "PRISM (program)");
        // The ambiguous name now has both candidates.
        assert_eq!(enlarged.candidates("Prism").len(), 2);
        // The regular disambiguator resolves the program reading to the new
        // entity — no EE machinery needed anymore.
        let aida =
            Disambiguator::new(&enlarged, MilneWitten::new(&enlarged), AidaConfig::sim_only());
        let tokens = tokenize("the secret surveillance program Prism was debated");
        let labels = aida.disambiguate(&tokens, &[Mention::new("Prism", 3, 4)]).labels();
        assert_eq!(labels[0], Some(new_id));
        // ... while the band reading still resolves to the band.
        let tokens = tokenize("the progressive rock band Prism played");
        let labels = aida.disambiguate(&tokens, &[Mention::new("Prism", 4, 5)]).labels();
        assert_eq!(labels[0], enlarged.entity_by_name("Prism (band)"));
    }

    #[test]
    fn existing_ids_survive_promotion() {
        let kb = kb();
        let band = kb.entity_by_name("Prism (band)").unwrap();
        let (enlarged, _) =
            promote_entity(&kb, &model(&kb), "PRISM (program)", EntityKind::Other, 1);
        assert_eq!(enlarged.entity_by_name("Prism (band)"), Some(band));
        assert_eq!(enlarged.entity(band).canonical_name, "Prism (band)");
    }

    #[test]
    #[should_panic(expected = "without keyphrases")]
    fn empty_model_cannot_be_promoted() {
        let kb = kb();
        let empty = EeModel { name: "X".into(), phrases: vec![], occurrences: 0 };
        promote_entity(&kb, &empty, "X (new)", EntityKind::Other, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate canonical name")]
    fn duplicate_canonical_name_is_rejected() {
        let kb = kb();
        promote_entity(&kb, &model(&kb), "Prism (band)", EntityKind::Other, 1);
    }
}
