//! KB maintenance: harvesting additional keyphrases for *existing* entities
//! from high-confidence disambiguations (§5.5.1).
//!
//! The same update lag that keeps emerging entities out of Wikipedia also
//! keeps recent facts out of existing articles ("Theresa May" example,
//! §5.7.3). Phrases harvested around mentions that were disambiguated with
//! confidence ≥ 95% are accurate for ~98% of mentions (Table 5.1), so they
//! can be added to the entity's keyphrase model with little noise.

use std::collections::HashMap;

use ned_aida::Disambiguator;
use ned_eval::gold::GoldDoc;
use ned_kb::{EntityId, KbBuilder, KbView, KnowledgeBase};
use ned_relatedness::Relatedness;

use crate::confidence::ConfAssessor;
use crate::harvest::harvest_window;

/// Result of a harvesting pass.
#[derive(Debug, Default)]
pub struct EnrichmentReport {
    /// Phrases collected per entity.
    pub harvested: HashMap<EntityId, HashMap<String, u64>>,
    /// Mentions that passed the confidence bar.
    pub confident_mentions: usize,
    /// All mentions seen.
    pub total_mentions: usize,
}

impl EnrichmentReport {
    /// Total number of (entity, phrase) observations harvested.
    pub fn phrase_observations(&self) -> u64 {
        self.harvested.values().flat_map(|m| m.values()).sum()
    }
}

/// Harvests keyphrases for in-KB entities from high-confidence mentions in
/// `docs`.
pub fn harvest_confident<K: KbView, R: Relatedness>(
    aida: &Disambiguator<K, R>,
    assessor: &ConfAssessor,
    docs: &[&GoldDoc],
    min_confidence: f64,
) -> EnrichmentReport {
    let mut report = EnrichmentReport::default();
    for doc in docs {
        let mentions = doc.bare_mentions();
        let features = aida.features(&doc.tokens, &mentions);
        let result = aida.disambiguate_features(&features);
        let confidences = assessor.assess(aida, &features, &result);
        for (i, mention) in mentions.iter().enumerate() {
            report.total_mentions += 1;
            let Some(entity) = result.assignments[i].entity else { continue };
            if confidences[i] < min_confidence {
                continue;
            }
            report.confident_mentions += 1;
            let phrases = harvest_window(doc, mention);
            let slot = report.harvested.entry(entity).or_default();
            for (p, c) in phrases {
                *slot.entry(p).or_insert(0) += c;
            }
        }
    }
    report
}

/// Rebuilds the knowledge base with the harvested phrases added (weights
/// are recomputed), returning the enriched KB. Accepts any [`KbView`]
/// (legacy or frozen); the output is always a fresh builder-path KB.
pub fn enrich_kb<K: KbView + ?Sized>(kb: &K, report: &EnrichmentReport) -> KnowledgeBase {
    let mut builder = KbBuilder::from_kb(kb);
    // Insert in sorted (entity, surface) order: keyphrase ids are assigned
    // in insertion order, so hash-map iteration order here would otherwise
    // leak into the enriched KB's id space and its snapshots.
    let mut entities: Vec<&EntityId> = report.harvested.keys().collect();
    entities.sort_unstable();
    for &entity in entities {
        let Some(phrases) = report.harvested.get(&entity) else { continue };
        let mut surfaces: Vec<&String> = phrases.keys().collect();
        surfaces.sort_unstable();
        for surface in surfaces {
            let Some(&count) = phrases.get(surface) else { continue };
            builder.add_keyphrase(entity, surface, count);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::{ConfAssessor, ConfidenceMethod};
    use ned_aida::AidaConfig;
    use ned_eval::gold::LabeledMention;
    use ned_kb::EntityKind;
    use ned_relatedness::MilneWitten;
    use ned_text::{tokenize, Mention};

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let may = b.add_entity("Theresa May", EntityKind::Person);
        b.add_name(may, "May", 10);
        b.add_keyphrase(may, "british home secretary", 4);
        // Vocabulary for the harvested phrases, plus a third entity so no
        // keyword is ubiquitous (NPMI of a word present in every
        // superdocument is 0).
        let pad = b.add_entity("Pad", EntityKind::Other);
        b.add_keyphrase(pad, "chief suspect investigation", 1);
        let other = b.add_entity("Other", EntityKind::Other);
        b.add_keyphrase(other, "completely unrelated affairs", 1);
        b.build()
    }

    fn docs() -> Vec<GoldDoc> {
        let make = |id: &str, text: &str| {
            let tokens = tokenize(text);
            let pos = tokens.iter().position(|t| t.text == "May").unwrap();
            GoldDoc::new(
                id,
                tokens,
                vec![LabeledMention { mention: Mention::new("May", pos, pos + 1), label: None }],
                0,
            )
        };
        vec![
            make("d1", "british home secretary May named the chief suspect investigation"),
            make("d2", "the chief suspect investigation was opened by home secretary May"),
        ]
    }

    #[test]
    fn harvests_only_confident_mentions() {
        let kb = kb();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let assessor = ConfAssessor::new(ConfidenceMethod::Normalized);
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        // "May" is unambiguous in this KB → confidence 1.
        let report = harvest_confident(&aida, &assessor, &refs, 0.95);
        assert_eq!(report.total_mentions, 2);
        assert_eq!(report.confident_mentions, 2);
        assert!(report.phrase_observations() > 0);
        // An impossible bar harvests nothing.
        let none = harvest_confident(&aida, &assessor, &refs, 1.01);
        assert_eq!(none.confident_mentions, 0);
        assert_eq!(none.phrase_observations(), 0);
    }

    #[test]
    fn enrichment_extends_the_entity_model() {
        let kb = kb();
        let may = kb.entity_by_name("Theresa May").unwrap();
        let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
        let assessor = ConfAssessor::new(ConfidenceMethod::Normalized);
        let docs = docs();
        let refs: Vec<&GoldDoc> = docs.iter().collect();
        let report = harvest_confident(&aida, &assessor, &refs, 0.95);
        let enriched = enrich_kb(&kb, &report);
        assert!(enriched.keyphrases(may).len() > kb.keyphrases(may).len());
        // The new phrases participate in similarity: "chief suspect" words
        // now belong to the entity.
        let suspect = enriched.word_id("suspect").unwrap();
        assert!(enriched.weights().keyword_npmi(may, suspect) > 0.0);
    }

    #[test]
    fn enrichment_preserves_existing_content() {
        let kb = kb();
        let may = kb.entity_by_name("Theresa May").unwrap();
        let report = EnrichmentReport::default();
        let enriched = enrich_kb(&kb, &report);
        assert_eq!(enriched.entity_count(), kb.entity_count());
        assert_eq!(enriched.keyphrases(may).len(), kb.keyphrases(may).len());
        assert_eq!(enriched.candidates("May").len(), 1);
    }
}
