#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! Text-processing substrate for the AIDA-NED suite.
//!
//! The disambiguation methods of the paper (AIDA, KORE, NED-EE) treat text
//! preprocessing as a fixed pipeline: tokenize, split sentences, tag
//! part-of-speech, recognize named-entity mentions, and extract candidate
//! keyphrases with the part-of-speech patterns of Appendix A. The original
//! system used the Stanford NER and POS taggers; this crate provides
//! self-contained, deterministic rule-based equivalents that expose the same
//! downstream interface (mention spans, noun-phrase candidates, token
//! contexts).
//!
//! Modules:
//! - [`token`] / [`tokenizer`]: token model and the tokenizer.
//! - [`sentence`]: sentence boundary detection.
//! - [`stopwords`]: the stopword list used for context extraction.
//! - [`normalize`]: the name-matching case rules of §3.3.2.
//! - [`pos`]: a lexicon + suffix part-of-speech tagger.
//! - [`patterns`]: keyphrase part-of-speech patterns (Appendix A).
//! - [`ner`]: rule-based named-entity recognition.
//! - [`mention`]: the mention model shared by all disambiguators.

pub mod mention;
pub mod ner;
pub mod normalize;
pub mod patterns;
pub mod pos;
pub mod sentence;
pub mod stopwords;
pub mod token;
pub mod tokenizer;

pub use mention::Mention;
pub use ner::{NerConfig, Recognizer};
pub use pos::{PosTag, PosTagger};
pub use token::{Token, TokenKind};
pub use tokenizer::tokenize;
