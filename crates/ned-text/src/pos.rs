//! Lightweight part-of-speech tagging.
//!
//! The thesis uses the Stanford POS tagger only to drive the keyphrase
//! extraction patterns of Appendix A, which distinguish nouns, proper nouns,
//! adjectives, and the preposition "of". This tagger reproduces that
//! distinction with a closed-class lexicon, suffix heuristics, and
//! capitalization, which is sufficient for pattern extraction on both the
//! synthetic corpora and ordinary English.

use crate::stopwords::is_stopword;
use crate::token::{Token, TokenKind};

/// Part-of-speech tag set, deliberately coarse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (capitalized non-initial word, or any all-caps acronym).
    ProperNoun,
    /// Adjective.
    Adjective,
    /// Verb (incl. auxiliaries).
    Verb,
    /// Determiner or pronoun.
    Determiner,
    /// Preposition or conjunction.
    Preposition,
    /// Numeric literal.
    Number,
    /// Punctuation.
    Punctuation,
    /// Anything else (adverbs, interjections, ...).
    Other,
}

impl PosTag {
    /// True for tags that can appear inside a keyphrase pattern body.
    pub fn is_nominal(self) -> bool {
        matches!(self, PosTag::Noun | PosTag::ProperNoun)
    }
}

const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "from", "to", "into", "over", "under",
    "between", "against", "about", "and", "or", "but",
];

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "his", "her", "its", "their", "our",
    "my", "your", "he", "she", "it", "they", "we", "i", "you", "who", "which", "what", "all",
    "some", "any", "no", "each", "every",
];

const VERBS: &[&str] = &[
    "is", "are", "was", "were", "be", "been", "being", "am", "has", "have", "had", "having",
    "do", "does", "did", "will", "would", "can", "could", "may", "might", "shall", "should",
    "must", "said", "says", "say", "made", "make", "makes", "played", "plays",
    "performed", "performs", "perform", "wrote", "writes", "write", "written", "recorded",
    "released", "releases", "release", "won", "wins", "signed",
    "signs", "announced", "announces", "announce", "revealed", "reveals", "reveal",
    "founded", "created", "creates", "create", "became", "becomes",
    "become", "joined", "joins", "join", "leads", "scored", "scores",
    "defeated", "defeats", "defeat", "beats", "ended", "ends", "went", "goes", "go",
];

const ADJECTIVE_SUFFIXES: &[&str] =
    &["ous", "ful", "ish", "ive", "less", "able", "ible", "ic", "al", "ary", "ian", "ese"];

const ADVERB_SUFFIX: &str = "ly";

const VERB_SUFFIXES: &[&str] = &["ized", "izes", "ising", "izing", "ated", "ates", "ating", "ed"];

/// Deterministic rule-based POS tagger.
#[derive(Debug, Default, Clone)]
pub struct PosTagger {
    _private: (),
}

impl PosTagger {
    /// Creates a tagger.
    pub fn new() -> Self {
        PosTagger { _private: () }
    }

    /// Tags every token; `sentence_starts[i]` must be true when token `i`
    /// begins a sentence (sentence-initial capitalization is not evidence of
    /// a proper noun).
    pub fn tag(&self, tokens: &[Token], sentence_starts: &[bool]) -> Vec<PosTag> {
        assert_eq!(tokens.len(), sentence_starts.len(), "one flag per token");
        tokens
            .iter()
            .zip(sentence_starts)
            .map(|(tok, &at_start)| self.tag_one(tok, at_start))
            .collect()
    }

    /// Tags a single token given whether it starts a sentence.
    pub fn tag_one(&self, tok: &Token, at_sentence_start: bool) -> PosTag {
        match tok.kind {
            TokenKind::Number => PosTag::Number,
            TokenKind::Punct => PosTag::Punctuation,
            TokenKind::Word => self.tag_word(tok, at_sentence_start),
        }
    }

    fn tag_word(&self, tok: &Token, at_sentence_start: bool) -> PosTag {
        let lower = tok.lower();
        let l = lower.as_str();
        if DETERMINERS.contains(&l) {
            return PosTag::Determiner;
        }
        if PREPOSITIONS.contains(&l) {
            return PosTag::Preposition;
        }
        if VERBS.contains(&l) {
            return PosTag::Verb;
        }
        if tok.is_all_uppercase() && tok.text.chars().count() >= 2 {
            return PosTag::ProperNoun;
        }
        if tok.is_capitalized() && !at_sentence_start {
            return PosTag::ProperNoun;
        }
        if l.ends_with(ADVERB_SUFFIX) && l.len() > 3 {
            return PosTag::Other;
        }
        if VERB_SUFFIXES.iter().any(|s| l.ends_with(s) && l.len() > s.len() + 2) {
            return PosTag::Verb;
        }
        if ADJECTIVE_SUFFIXES.iter().any(|s| l.ends_with(s) && l.len() > s.len() + 2) {
            return PosTag::Adjective;
        }
        if at_sentence_start && tok.is_capitalized() && !is_stopword(l) {
            // Sentence-initial capitalized content word: could be either; the
            // keyphrase patterns accept both, so prefer Noun.
            return PosTag::Noun;
        }
        if is_stopword(l) {
            return PosTag::Other;
        }
        PosTag::Noun
    }
}

/// Computes the `sentence_starts` flag vector from sentence ranges produced
/// by [`crate::sentence::split_sentences`].
pub fn sentence_start_flags(n_tokens: usize, sentences: &[crate::sentence::Sentence]) -> Vec<bool> {
    let mut flags = vec![false; n_tokens];
    for s in sentences {
        if s.start < n_tokens {
            flags[s.start] = true;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentence::split_sentences;
    use crate::tokenizer::tokenize;

    fn tag_text(input: &str) -> Vec<(String, PosTag)> {
        let tokens = tokenize(input);
        let sentences = split_sentences(&tokens);
        let starts = sentence_start_flags(tokens.len(), &sentences);
        let tags = PosTagger::new().tag(&tokens, &starts);
        tokens.into_iter().map(|t| t.text).zip(tags).collect()
    }

    fn tag_of(tagged: &[(String, PosTag)], word: &str) -> PosTag {
        tagged.iter().find(|(w, _)| w == word).unwrap_or_else(|| panic!("{word} missing")).1
    }

    #[test]
    fn capitalized_mid_sentence_is_proper_noun() {
        let t = tag_text("They performed Kashmir on stage.");
        assert_eq!(tag_of(&t, "Kashmir"), PosTag::ProperNoun);
    }

    #[test]
    fn sentence_initial_capital_is_not_proper() {
        let t = tag_text("Record sales went up.");
        assert_eq!(tag_of(&t, "Record"), PosTag::Noun);
    }

    #[test]
    fn acronyms_are_proper_nouns() {
        let t = tag_text("the NSA program");
        assert_eq!(tag_of(&t, "NSA"), PosTag::ProperNoun);
    }

    #[test]
    fn closed_classes() {
        let t = tag_text("the singer of the band was famous");
        assert_eq!(tag_of(&t, "the"), PosTag::Determiner);
        assert_eq!(tag_of(&t, "of"), PosTag::Preposition);
        assert_eq!(tag_of(&t, "was"), PosTag::Verb);
        assert_eq!(tag_of(&t, "famous"), PosTag::Adjective);
        assert_eq!(tag_of(&t, "singer"), PosTag::Noun);
    }

    #[test]
    fn numbers_and_punct() {
        let t = tag_text("In 1976, yes.");
        assert_eq!(tag_of(&t, "1976"), PosTag::Number);
        assert_eq!(tag_of(&t, ","), PosTag::Punctuation);
    }

    #[test]
    fn adverb_is_other() {
        let t = tag_text("he ran quickly home");
        assert_eq!(tag_of(&t, "quickly"), PosTag::Other);
    }

    #[test]
    #[should_panic(expected = "one flag per token")]
    fn mismatched_flags_panic() {
        let tokens = tokenize("a b");
        PosTagger::new().tag(&tokens, &[true]);
    }
}
