//! Name-matching normalization rules of §3.3.2.
//!
//! AIDA matches mentions against entity names as follows: names of three or
//! fewer characters are matched case-sensitively (to keep "US" distinct from
//! "us"); longer names are matched after upper-casing both sides, so the
//! all-upper-case mention "APPLE" still retrieves the entity named "Apple".

/// Length threshold (in characters) at or below which matching is
/// case-sensitive.
pub const CASE_SENSITIVE_MAX_CHARS: usize = 3;

/// Normalized lookup key for a mention or entity name.
///
/// Returns the name unchanged when it has [`CASE_SENSITIVE_MAX_CHARS`] or
/// fewer characters, and the upper-cased form otherwise. Two names match iff
/// their keys are equal.
pub fn match_key(name: &str) -> String {
    if name.chars().count() <= CASE_SENSITIVE_MAX_CHARS {
        name.to_string()
    } else {
        name.to_uppercase()
    }
}

/// True if mention surface `mention` matches entity name `name` under the
/// §3.3.2 rules.
pub fn names_match(mention: &str, name: &str) -> bool {
    match_key(mention) == match_key(name)
}

/// Collapses internal runs of whitespace to single spaces and trims the ends;
/// used before dictionary lookups of multi-word surface forms.
pub fn squash_whitespace(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_was_space = true;
    for ch in name.chars() {
        if ch.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            out.push(ch);
            last_was_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_are_case_sensitive() {
        assert!(!names_match("US", "us"));
        assert!(names_match("US", "US"));
        assert!(!names_match("Us", "US"));
    }

    #[test]
    fn long_names_are_case_insensitive() {
        assert!(names_match("APPLE", "Apple"));
        assert!(names_match("apple", "Apple"));
        assert!(names_match("KASHMIR", "Kashmir"));
    }

    #[test]
    fn boundary_is_three_characters() {
        // Exactly 3 characters: case-sensitive.
        assert!(!names_match("CIA", "cia"));
        // 4 characters: case-insensitive.
        assert!(names_match("NATO", "nato"));
    }

    #[test]
    fn multichar_unicode_counts_chars_not_bytes() {
        // "ÜÄÖ" is 3 characters (6 bytes): still case-sensitive.
        assert!(!names_match("ÜÄÖ", "üäö"));
    }

    #[test]
    fn squash_whitespace_normalizes() {
        assert_eq!(squash_whitespace("  New   York  "), "New York");
        assert_eq!(squash_whitespace("a\tb\nc"), "a b c");
        assert_eq!(squash_whitespace(""), "");
    }
}
