//! Keyphrase part-of-speech patterns (Appendix A).
//!
//! The thesis harvests keyphrase candidates for emerging entities (§5.5.1) by
//! extracting (a) maximal proper-noun sequences and (b) "technical terms" in
//! the sense of Justeson & Katz 1995: `((Adj | Noun)+ | ((Adj | Noun)*
//! (Noun Prep)? (Adj | Noun)*) Noun)` — i.e. noun phrases possibly containing
//! a single preposition, always ending in a noun.

use crate::pos::PosTag;
use crate::token::Token;

/// An extracted keyphrase candidate: a token index range and its surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhraseCandidate {
    /// Index of the first token of the phrase.
    pub start: usize,
    /// Index one past the last token.
    pub end: usize,
    /// Space-joined surface form.
    pub surface: String,
}

/// Maximum number of tokens in an extracted phrase; longer spans are split at
/// the maximum (keyphrases in the KB average 2.5 words, §4.4.2).
pub const MAX_PHRASE_TOKENS: usize = 6;

/// Minimum number of tokens for a multi-word technical term to be kept when
/// `keep_unigrams` is false.
const MIN_TERM_TOKENS: usize = 1;

/// Extracts all keyphrase candidates from a tagged token stream.
///
/// Proper-noun runs are always extracted; technical terms (adjective/noun
/// sequences with an optional single embedded preposition, ending in a noun)
/// are extracted when at least `MIN_TERM_TOKENS` long. Overlapping
/// candidates are allowed — weighting downstream decides salience.
pub fn extract_phrases(tokens: &[Token], tags: &[PosTag]) -> Vec<PhraseCandidate> {
    assert_eq!(tokens.len(), tags.len());
    let mut out = Vec::new();
    extract_proper_runs(tokens, tags, &mut out);
    extract_technical_terms(tokens, tags, &mut out);
    out.sort_by_key(|p| (p.start, p.end));
    out.dedup();
    out
}

fn surface(tokens: &[Token], start: usize, end: usize) -> String {
    let mut s = String::new();
    for (i, t) in tokens[start..end].iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

fn extract_proper_runs(tokens: &[Token], tags: &[PosTag], out: &mut Vec<PhraseCandidate>) {
    let mut i = 0;
    while i < tokens.len() {
        if tags[i] == PosTag::ProperNoun {
            let start = i;
            while i < tokens.len() && tags[i] == PosTag::ProperNoun && i - start < MAX_PHRASE_TOKENS
            {
                i += 1;
            }
            out.push(PhraseCandidate { start, end: i, surface: surface(tokens, start, i) });
        } else {
            i += 1;
        }
    }
}

/// State machine for `(Adj|Noun)* (Noun Prep)? (Adj|Noun)* Noun`.
fn extract_technical_terms(tokens: &[Token], tags: &[PosTag], out: &mut Vec<PhraseCandidate>) {
    let is_body = |t: PosTag| matches!(t, PosTag::Adjective | PosTag::Noun | PosTag::ProperNoun);
    let mut i = 0;
    while i < tokens.len() {
        if !is_body(tags[i]) {
            i += 1;
            continue;
        }
        // Scan a maximal body run, allowing one embedded preposition whose
        // left neighbour is a noun and which is followed by more body tokens.
        let start = i;
        let mut used_prep = false;
        let mut last_nominal = None;
        while i < tokens.len() && i - start < MAX_PHRASE_TOKENS {
            let t = tags[i];
            if is_body(t) {
                if t.is_nominal() {
                    last_nominal = Some(i);
                }
                i += 1;
            } else if t == PosTag::Preposition
                && !used_prep
                && i > start
                && tags[i - 1].is_nominal()
                && i + 1 < tokens.len()
                && is_body(tags[i + 1])
                && tokens[i].lower() == "of"
            {
                used_prep = true;
                i += 1;
            } else {
                break;
            }
        }
        // The phrase must end in a noun: truncate to the last nominal token.
        if let Some(last) = last_nominal {
            let end = last + 1;
            if end - start >= MIN_TERM_TOKENS && end > start {
                // Skip pure proper-noun runs (already emitted) only if
                // identical; mixed runs are new information.
                out.push(PhraseCandidate { start, end, surface: surface(tokens, start, end) });
            }
        }
        if i == start {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::{sentence_start_flags, PosTagger};
    use crate::sentence::split_sentences;
    use crate::tokenizer::tokenize;

    fn phrases(input: &str) -> Vec<String> {
        let tokens = tokenize(input);
        let sentences = split_sentences(&tokens);
        let starts = sentence_start_flags(tokens.len(), &sentences);
        let tags = PosTagger::new().tag(&tokens, &starts);
        extract_phrases(&tokens, &tags).into_iter().map(|p| p.surface).collect()
    }

    #[test]
    fn extracts_proper_noun_runs() {
        let p = phrases("They saw Newport Folk Festival yesterday.");
        assert!(p.contains(&"Newport Folk Festival".to_string()), "{p:?}");
    }

    #[test]
    fn extracts_adjective_noun_terms() {
        let p = phrases("he is a famous surveillance program author");
        assert!(p.contains(&"famous surveillance program author".to_string()), "{p:?}");
    }

    #[test]
    fn allows_single_of_preposition() {
        let p = phrases("the winner of many prizes went home");
        assert!(p.iter().any(|s| s.contains("winner of many prizes") || s == "winner"), "{p:?}");
    }

    #[test]
    fn phrase_must_end_in_noun() {
        // "famous" alone (adjective at end) must not be a phrase.
        let p = phrases("she is famous.");
        assert!(!p.contains(&"famous".to_string()), "{p:?}");
    }

    #[test]
    fn respects_max_length() {
        let long = "alpha beta gamma delta epsilon zeta eta theta iota";
        for p in phrases(long) {
            assert!(p.split(' ').count() <= MAX_PHRASE_TOKENS);
        }
    }

    #[test]
    fn no_phrases_in_pure_function_words() {
        let p = phrases("it was because of the and or");
        assert!(p.is_empty(), "{p:?}");
    }

    #[test]
    fn candidates_sorted_and_deduped() {
        let tokens = tokenize("Grammy Award winner Grammy Award winner");
        let sentences = split_sentences(&tokens);
        let starts = sentence_start_flags(tokens.len(), &sentences);
        let tags = PosTagger::new().tag(&tokens, &starts);
        let cands = extract_phrases(&tokens, &tags);
        for w in cands.windows(2) {
            assert!((w[0].start, w[0].end) <= (w[1].start, w[1].end));
            assert_ne!((w[0].start, w[0].end), (w[1].start, w[1].end));
        }
    }
}
