//! Sentence boundary detection over token streams.

use crate::token::{Token, TokenKind};

/// Common abbreviations that do not end a sentence even when followed by an
/// uppercase word.
const ABBREVIATIONS: &[&str] = &[
    "Mr", "Mrs", "Ms", "Dr", "Prof", "Sr", "Jr", "St", "vs", "etc", "Inc", "Corp", "Ltd", "Co",
    "e.g", "i.e", "cf", "al", "Fig", "Eq", "No", "Vol", "pp",
];

/// A sentence, represented as a half-open range into the token vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sentence {
    /// Index of the first token of the sentence.
    pub start: usize,
    /// Index one past the last token of the sentence.
    pub end: usize,
}

impl Sentence {
    /// Number of tokens in the sentence.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the sentence contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits a token stream into sentences.
///
/// A sentence ends at `.`, `!`, or `?` unless the preceding token is a known
/// abbreviation or a single uppercase initial ("J." in "J. Hoffart").
pub fn split_sentences(tokens: &[Token]) -> Vec<Sentence> {
    let mut sentences = Vec::new();
    let mut start = 0;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Punct || !matches!(tok.text.as_str(), "." | "!" | "?") {
            continue;
        }
        if tok.text == "." && i > 0 && is_non_terminal_period(&tokens[i - 1]) {
            continue;
        }
        sentences.push(Sentence { start, end: i + 1 });
        start = i + 1;
    }
    if start < tokens.len() {
        sentences.push(Sentence { start, end: tokens.len() });
    }
    sentences
}

fn is_non_terminal_period(prev: &Token) -> bool {
    if prev.kind != TokenKind::Word {
        return false;
    }
    // Single uppercase initial such as "J".
    if prev.text.chars().count() == 1 && prev.is_capitalized() {
        return true;
    }
    ABBREVIATIONS.iter().any(|a| prev.text == *a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn sentence_texts(input: &str) -> Vec<String> {
        let tokens = tokenize(input);
        split_sentences(&tokens)
            .into_iter()
            .map(|s| {
                tokens[s.start..s.end]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }

    #[test]
    fn splits_on_terminal_punctuation() {
        let s = sentence_texts("It ends with a tribute. His wife Sara!");
        assert_eq!(s.len(), 2);
        assert!(s[0].ends_with('.'));
        assert!(s[1].ends_with('!'));
    }

    #[test]
    fn abbreviation_does_not_split() {
        let s = sentence_texts("Dr. Hoffart wrote it. It was good.");
        assert_eq!(s.len(), 2);
        assert!(s[0].starts_with("Dr"));
    }

    #[test]
    fn initial_does_not_split() {
        let s = sentence_texts("J. Hoffart wrote it.");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn trailing_text_without_period_forms_sentence() {
        let s = sentence_texts("First one. trailing fragment");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], "trailing fragment");
    }

    #[test]
    fn empty_input_has_no_sentences() {
        assert!(split_sentences(&[]).is_empty());
    }

    #[test]
    fn sentence_ranges_cover_all_tokens() {
        let tokens = tokenize("A b c. D e f? G h.");
        let sentences = split_sentences(&tokens);
        let covered: usize = sentences.iter().map(|s| s.len()).sum();
        assert_eq!(covered, tokens.len());
        for w in sentences.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
