//! Rule-based named-entity recognition.
//!
//! A stand-in for the Stanford NER tagger used by the thesis (§3.3.1): it
//! segments the input into mention spans that the disambiguators consume.
//! Rules:
//! 1. Maximal runs of capitalized words (not counting a sentence-initial
//!    stopword/determiner) form a mention; lowercase connectors ("of", "the")
//!    are allowed strictly inside a run ("Bank of America").
//! 2. All-upper-case tokens of length ≥ 2 are mentions even in isolation
//!    (§3.3.2 treats all-caps as a syntactic marker in news-wire).
//! 3. An optional gazetteer forces known multi-word names to be recognized
//!    as single mentions even when capitalization is ambiguous.

use std::collections::HashSet;

use crate::mention::Mention;
use crate::sentence::{split_sentences, Sentence};
use crate::stopwords::is_stopword;
use crate::token::{Token, TokenKind};

/// Configuration for the rule-based recognizer.
#[derive(Debug, Clone)]
pub struct NerConfig {
    /// Maximum number of tokens in a mention.
    pub max_mention_tokens: usize,
    /// Allow lowercase connector words strictly inside a capitalized run.
    pub allow_connectors: bool,
    /// Recognize isolated all-caps acronyms.
    pub recognize_acronyms: bool,
}

impl Default for NerConfig {
    fn default() -> Self {
        NerConfig { max_mention_tokens: 5, allow_connectors: true, recognize_acronyms: true }
    }
}

/// Rule-based mention recognizer with an optional gazetteer.
#[derive(Debug, Clone, Default)]
pub struct Recognizer {
    config: NerConfig,
    /// Known surface forms, stored lowercased and space-joined.
    gazetteer: HashSet<String>,
    /// Length (in tokens) of the longest gazetteer entry.
    max_gazetteer_tokens: usize,
}

impl Recognizer {
    /// Creates a recognizer with the given configuration and no gazetteer.
    pub fn new(config: NerConfig) -> Self {
        Recognizer { config, gazetteer: HashSet::new(), max_gazetteer_tokens: 0 }
    }

    /// Adds a known surface form to the gazetteer.
    pub fn add_gazetteer_entry(&mut self, surface: &str) {
        let n = surface.split_whitespace().count();
        self.max_gazetteer_tokens = self.max_gazetteer_tokens.max(n);
        self.gazetteer.insert(surface.to_lowercase());
    }

    /// Number of gazetteer entries.
    pub fn gazetteer_len(&self) -> usize {
        self.gazetteer.len()
    }

    /// Recognizes mentions in a tokenized document.
    ///
    /// Returned mentions are sorted by position and non-overlapping; the
    /// gazetteer takes priority, then capitalized runs, then acronyms.
    pub fn recognize(&self, tokens: &[Token]) -> Vec<Mention> {
        let sentences = split_sentences(tokens);
        let mut claimed = vec![false; tokens.len()];
        let mut mentions = Vec::new();
        self.match_gazetteer(tokens, &mut claimed, &mut mentions);
        for s in &sentences {
            self.match_capitalized_runs(tokens, s, &mut claimed, &mut mentions);
        }
        if self.config.recognize_acronyms {
            self.match_acronyms(tokens, &mut claimed, &mut mentions);
        }
        mentions.sort_by_key(|m| m.token_start);
        mentions
    }

    fn match_gazetteer(&self, tokens: &[Token], claimed: &mut [bool], out: &mut Vec<Mention>) {
        if self.gazetteer.is_empty() {
            return;
        }
        let max_len = self.max_gazetteer_tokens.min(self.config.max_mention_tokens);
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = 0;
            // Longest match wins.
            let mut key = String::new();
            for len in 1..=max_len.min(tokens.len() - i) {
                if len > 1 {
                    key.push(' ');
                }
                key.push_str(&tokens[i + len - 1].lower());
                if self.gazetteer.contains(&key) && tokens[i..i + len].iter().any(|t| t.is_capitalized()) {
                    matched = len;
                }
            }
            if matched > 0 && !claimed[i..i + matched].iter().any(|&c| c) {
                claimed[i..i + matched].iter_mut().for_each(|c| *c = true);
                out.push(Mention::new(join(&tokens[i..i + matched]), i, i + matched));
                i += matched;
            } else {
                i += 1;
            }
        }
    }

    fn match_capitalized_runs(
        &self,
        tokens: &[Token],
        sentence: &Sentence,
        claimed: &mut [bool],
        out: &mut Vec<Mention>,
    ) {
        let mut i = sentence.start;
        while i < sentence.end {
            if claimed[i] || !self.starts_run(tokens, i, sentence) {
                i += 1;
                continue;
            }
            let start = i;
            let mut last_cap = i;
            i += 1;
            while i < sentence.end
                && !claimed[i]
                && i - start < self.config.max_mention_tokens
            {
                let tok = &tokens[i];
                if tok.kind == TokenKind::Word && tok.is_capitalized() && !is_stopword(&tok.text) {
                    last_cap = i;
                    i += 1;
                } else if self.config.allow_connectors
                    && tok.kind == TokenKind::Word
                    && is_connector(&tok.text)
                    && i + 1 < sentence.end
                    && tokens[i + 1].kind == TokenKind::Word
                    && tokens[i + 1].is_capitalized()
                    && !claimed[i + 1]
                {
                    i += 1;
                } else {
                    break;
                }
            }
            let end = last_cap + 1;
            claimed[start..end].iter_mut().for_each(|c| *c = true);
            out.push(Mention::new(join(&tokens[start..end]), start, end));
        }
    }

    /// A token starts a capitalized run if it is a capitalized word that is
    /// not a stopword; at sentence start it must additionally be either
    /// all-caps or followed by another capitalized word, because ordinary
    /// sentence-initial words are capitalized too.
    fn starts_run(&self, tokens: &[Token], i: usize, sentence: &Sentence) -> bool {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Word || !tok.is_capitalized() || is_stopword(&tok.text) {
            return false;
        }
        if i != sentence.start {
            return true;
        }
        if tok.is_all_uppercase() && tok.text.chars().count() >= 2 {
            return true;
        }
        // Sentence-initial: a following capitalized word or a possessive
        // clitic ("Washington's program ...") marks a name; ordinary
        // sentence-initial words are capitalized too, so require evidence.
        if i + 1 < sentence.end && tokens[i + 1].text == "'s" {
            return true;
        }
        i + 1 < sentence.end
            && tokens[i + 1].kind == TokenKind::Word
            && tokens[i + 1].is_capitalized()
            && !is_stopword(&tokens[i + 1].text)
    }

    fn match_acronyms(&self, tokens: &[Token], claimed: &mut [bool], out: &mut Vec<Mention>) {
        for (i, tok) in tokens.iter().enumerate() {
            if claimed[i] || tok.kind != TokenKind::Word {
                continue;
            }
            if tok.is_all_uppercase() && tok.text.chars().count() >= 2 && !is_stopword(&tok.text) {
                claimed[i] = true;
                out.push(Mention::new(tok.text.clone(), i, i + 1));
            }
        }
    }
}

fn is_connector(word: &str) -> bool {
    matches!(word, "of" | "the" | "for" | "de" | "van" | "von")
}

fn join(tokens: &[Token]) -> String {
    let mut s = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn surfaces(input: &str) -> Vec<String> {
        let tokens = tokenize(input);
        Recognizer::new(NerConfig::default())
            .recognize(&tokens)
            .into_iter()
            .map(|m| m.surface)
            .collect()
    }

    #[test]
    fn recognizes_multiword_names() {
        let s = surfaces("They performed Kashmir, written by Jimmy Page and Robert Plant.");
        assert!(s.contains(&"Kashmir".to_string()), "{s:?}");
        assert!(s.contains(&"Jimmy Page".to_string()), "{s:?}");
        assert!(s.contains(&"Robert Plant".to_string()), "{s:?}");
    }

    #[test]
    fn sentence_initial_common_word_is_not_mention() {
        let s = surfaces("Record sales went up in May.");
        assert!(!s.contains(&"Record".to_string()), "{s:?}");
    }

    #[test]
    fn sentence_initial_name_pair_is_mention() {
        let s = surfaces("Jimmy Page played a Gibson.");
        assert!(s.contains(&"Jimmy Page".to_string()), "{s:?}");
    }

    #[test]
    fn acronyms_are_recognized() {
        let s = surfaces("the NSA and the CIA cooperated");
        assert!(s.contains(&"NSA".to_string()), "{s:?}");
        assert!(s.contains(&"CIA".to_string()), "{s:?}");
    }

    #[test]
    fn connector_inside_run() {
        let s = surfaces("he visited the Bank of America building");
        assert!(s.contains(&"Bank of America".to_string()), "{s:?}");
    }

    #[test]
    fn connector_not_kept_at_run_end() {
        let s = surfaces("we saw Sara of the village");
        assert!(s.contains(&"Sara".to_string()), "{s:?}");
        assert!(!s.iter().any(|m| m.ends_with("of")), "{s:?}");
    }

    #[test]
    fn gazetteer_overrides_capitalization() {
        let tokens = tokenize("the united states government said");
        let mut r = Recognizer::new(NerConfig::default());
        r.add_gazetteer_entry("united states");
        // All-lowercase text: no capitalized token, gazetteer requires at
        // least one capital, so nothing is found.
        assert!(r.recognize(&tokens).is_empty());
        let tokens = tokenize("the United states government said");
        let got = r.recognize(&tokens);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].surface, "United states");
    }

    #[test]
    fn mentions_are_sorted_and_disjoint() {
        let tokens =
            tokenize("Washington's program Prism was revealed by the whistleblower Snowden.");
        let mentions = Recognizer::new(NerConfig::default()).recognize(&tokens);
        for w in mentions.windows(2) {
            assert!(w[0].token_end <= w[1].token_start, "{mentions:?}");
        }
        let s: Vec<_> = mentions.iter().map(|m| m.surface.as_str()).collect();
        assert!(s.contains(&"Washington"), "{s:?}");
        assert!(s.contains(&"Prism"), "{s:?}");
        assert!(s.contains(&"Snowden"), "{s:?}");
    }

    #[test]
    fn respects_max_mention_tokens() {
        let s = surfaces("Alpha Beta Gamma Delta Epsilon Zeta Eta Theta");
        for m in &s {
            assert!(m.split(' ').count() <= 5, "{m}");
        }
    }
}
