//! Rule-based tokenizer.
//!
//! Splits on whitespace, separates punctuation into single-character tokens,
//! and keeps word-internal hyphens and apostrophes attached ("news-wire",
//! "Dylan's" → "Dylan" + "'s" following Penn Treebank convention for the
//! possessive clitic, which the mention detector relies on).

use crate::token::{Token, TokenKind};

/// Tokenizes `text` into a vector of [`Token`]s with byte spans.
///
/// Guarantees: token spans are non-overlapping, strictly increasing, and
/// every token's `text` equals `&text[start..end]`.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(text.len() / 5);
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut i = 0;
    while i < bytes.len() {
        let (pos, ch) = bytes[i];
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        if ch.is_alphabetic() {
            while i < bytes.len() && is_word_char(bytes[i].1, lookahead(&bytes, i)) {
                i += 1;
            }
            let end_pos = end_of(&bytes, i, text);
            let word = &text[pos..end_pos];
            // Possessive clitic: split "'s" off the preceding word.
            if let Some(stripped) = word.strip_suffix("'s") {
                if !stripped.is_empty() {
                    tokens.push(Token {
                        text: stripped.to_string(),
                        start: pos,
                        end: pos + stripped.len(),
                        kind: TokenKind::Word,
                    });
                    tokens.push(Token {
                        text: "'s".to_string(),
                        start: pos + stripped.len(),
                        end: end_pos,
                        kind: TokenKind::Word,
                    });
                    continue;
                }
            }
            tokens.push(Token { text: word.to_string(), start: pos, end: end_pos, kind: TokenKind::Word });
        } else if ch.is_ascii_digit() {
            while i < bytes.len() && is_number_char(bytes[i].1, lookahead(&bytes, i)) {
                i += 1;
            }
            // A separator (',' / '.') is only consumed when a digit follows,
            // so the scanned slice can never end in a separator.
            let end_pos = end_of(&bytes, i, text);
            tokens.push(Token {
                text: text[pos..end_pos].to_string(),
                start: pos,
                end: end_pos,
                kind: TokenKind::Number,
            });
        } else {
            tokens.push(Token {
                text: ch.to_string(),
                start: pos,
                end: pos + ch.len_utf8(),
                kind: TokenKind::Punct,
            });
            i += 1;
        }
    }
    tokens
}

fn lookahead(bytes: &[(usize, char)], i: usize) -> Option<char> {
    bytes.get(i + 1).map(|&(_, c)| c)
}

fn end_of(bytes: &[(usize, char)], i: usize, text: &str) -> usize {
    if i < bytes.len() {
        bytes[i].0
    } else {
        text.len()
    }
}

/// A character continues a word if it is alphanumeric, or a hyphen,
/// apostrophe, or period with an alphanumeric character right after it
/// (keeps "U.S." and "rock-and-roll" together).
fn is_word_char(ch: char, next: Option<char>) -> bool {
    if ch.is_alphanumeric() {
        return true;
    }
    matches!(ch, '-' | '\'' | '.' | '’') && next.is_some_and(|n| n.is_alphanumeric())
}

/// A character continues a number if it is a digit, or a separator with a
/// digit right after it ("34,956", "82.03").
fn is_number_char(ch: char, next: Option<char>) -> bool {
    if ch.is_ascii_digit() {
        return true;
    }
    matches!(ch, ',' | '.') && next.is_some_and(|n| n.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(input: &str) -> Vec<String> {
        tokenize(input).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_on_whitespace_and_punct() {
        assert_eq!(texts("They performed Kashmir, written by Page."), vec![
            "They", "performed", "Kashmir", ",", "written", "by", "Page", "."
        ]);
    }

    #[test]
    fn keeps_numbers_with_separators() {
        assert_eq!(texts("1,393 documents and 82.03 percent"), vec![
            "1,393", "documents", "and", "82.03", "percent"
        ]);
    }

    #[test]
    fn trailing_period_after_number_is_punct() {
        let toks = tokenize("It was 1976.");
        assert_eq!(toks[2].text, "1976");
        assert_eq!(toks[2].kind, TokenKind::Number);
        assert_eq!(toks[3].text, ".");
        assert_eq!(toks[3].kind, TokenKind::Punct);
    }

    #[test]
    fn splits_possessive_clitic() {
        assert_eq!(texts("Dylan's record"), vec!["Dylan", "'s", "record"]);
    }

    #[test]
    fn keeps_internal_hyphen() {
        assert_eq!(texts("news-wire text"), vec!["news-wire", "text"]);
    }

    #[test]
    fn keeps_acronym_periods() {
        assert_eq!(texts("the U.S. team"), vec!["the", "U.S", ".", "team"]);
    }

    #[test]
    fn spans_roundtrip() {
        let input = "Italy recalled Marcello Cuttitta on Friday, 1996.";
        for t in tokenize(input) {
            assert_eq!(&input[t.start..t.end], t.text);
        }
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(texts("Universität des Saarlandes"), vec!["Universität", "des", "Saarlandes"]);
    }
}
