//! Token model shared by the tokenizer, tagger, and recognizers.

use serde::{Deserialize, Serialize};

/// Coarse lexical class of a token, determined at tokenization time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic word (may contain internal hyphens or apostrophes).
    Word,
    /// Numeric literal, possibly with separators ("1,393", "82.03").
    Number,
    /// A single punctuation character.
    Punct,
}

/// A single token with its surface text and byte span in the source string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Surface form exactly as it appears in the input.
    pub text: String,
    /// Byte offset of the first byte of the token in the source string.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// Coarse lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Creates a token; `end` is derived from `start` and the text length.
    pub fn new(text: impl Into<String>, start: usize, kind: TokenKind) -> Self {
        let text = text.into();
        let end = start + text.len();
        Token { text, start, end, kind }
    }

    /// True if every alphabetic character in the token is uppercase and the
    /// token contains at least one alphabetic character ("USA", "NSA").
    pub fn is_all_uppercase(&self) -> bool {
        let mut saw_alpha = false;
        for ch in self.text.chars() {
            if ch.is_alphabetic() {
                saw_alpha = true;
                if !ch.is_uppercase() {
                    return false;
                }
            }
        }
        saw_alpha
    }

    /// True if the token starts with an uppercase alphabetic character.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// Lowercased copy of the surface text.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_derives_end_from_text_length() {
        let t = Token::new("Dylan", 4, TokenKind::Word);
        assert_eq!(t.start, 4);
        assert_eq!(t.end, 9);
    }

    #[test]
    fn all_uppercase_detection() {
        assert!(Token::new("USA", 0, TokenKind::Word).is_all_uppercase());
        assert!(Token::new("U.S.A", 0, TokenKind::Word).is_all_uppercase());
        assert!(!Token::new("Usa", 0, TokenKind::Word).is_all_uppercase());
        assert!(!Token::new("123", 0, TokenKind::Number).is_all_uppercase());
    }

    #[test]
    fn capitalization_detection() {
        assert!(Token::new("Page", 0, TokenKind::Word).is_capitalized());
        assert!(!Token::new("page", 0, TokenKind::Word).is_capitalized());
        assert!(!Token::new("1976", 0, TokenKind::Number).is_capitalized());
    }
}
