//! Stopword list used when building mention contexts (§3.3.4: "all tokens in
//! the entire input text (except stopwords and the mention itself)").

use std::collections::HashSet;
use std::sync::OnceLock;

/// English function words plus a handful of high-frequency verbs. The list is
/// intentionally small — the weighting schemes (IDF/NPMI) downweight anything
/// the list misses.
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "some", "any", "each", "every", "no",
    "and", "or", "but", "nor", "so", "yet", "if", "then", "else", "when", "while", "because",
    "as", "until", "although", "though", "after", "before", "since", "unless", "whereas",
    "of", "in", "on", "at", "by", "for", "with", "about", "against", "between", "into",
    "through", "during", "above", "below", "to", "from", "up", "down", "out", "off", "over",
    "under", "again", "further", "once", "here", "there", "where", "why", "how", "all", "both",
    "few", "more", "most", "other", "such", "only", "own", "same", "than", "too", "very",
    "i", "me", "my", "mine", "we", "us", "our", "ours", "you", "your", "yours", "he", "him",
    "his", "she", "her", "hers", "it", "its", "they", "them", "their", "theirs", "who", "whom",
    "whose", "which", "what",
    "am", "is", "are", "was", "were", "be", "been", "being", "have", "has", "had", "having",
    "do", "does", "did", "doing", "will", "would", "shall", "should", "can", "could", "may",
    "might", "must", "not", "n't", "'s", "'re", "'ve", "'ll", "'d",
    "said", "say", "says", "also", "just", "now", "new", "one", "two", "first", "last",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// True if `word` (case-insensitively) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    if set().contains(word) {
        return true;
    }
    let lower = word.to_lowercase();
    set().contains(lower.as_str())
}

/// Number of entries in the stopword list.
pub fn stopword_count() -> usize {
    set().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "of", "and", "is", "The", "OF"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["guitarist", "Kashmir", "record", "song"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn list_has_no_duplicates() {
        assert_eq!(stopword_count(), STOPWORDS.len());
    }
}
