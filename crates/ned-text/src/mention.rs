//! The mention model shared by all disambiguation components.

use serde::{Deserialize, Serialize};

/// A recognized named-entity mention in a document.
///
/// A mention is a surface phrase (e.g. "Kashmir", "Jimmy Page") together
/// with its token range in the tokenized document. Disambiguators map each
/// mention either to a knowledge-base entity or to an out-of-KB placeholder.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mention {
    /// Surface form exactly as it appears in the text.
    pub surface: String,
    /// Index of the first token of the mention.
    pub token_start: usize,
    /// Index one past the last token of the mention.
    pub token_end: usize,
}

impl Mention {
    /// Creates a mention covering tokens `[token_start, token_end)`.
    pub fn new(surface: impl Into<String>, token_start: usize, token_end: usize) -> Self {
        let surface = surface.into();
        assert!(token_start < token_end, "mention must cover at least one token");
        Mention { surface, token_start, token_end }
    }

    /// Number of tokens the mention covers.
    pub fn token_len(&self) -> usize {
        self.token_end - self.token_start
    }

    /// True if `index` lies inside the mention's token range.
    pub fn covers(&self, index: usize) -> bool {
        (self.token_start..self.token_end).contains(&index)
    }

    /// True if this mention overlaps `other` in token space.
    pub fn overlaps(&self, other: &Mention) -> bool {
        self.token_start < other.token_end && other.token_start < self.token_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let m = Mention::new("Jimmy Page", 3, 5);
        assert_eq!(m.token_len(), 2);
        assert!(m.covers(3));
        assert!(m.covers(4));
        assert!(!m.covers(5));
    }

    #[test]
    fn overlap_detection() {
        let a = Mention::new("a", 0, 2);
        let b = Mention::new("b", 1, 3);
        let c = Mention::new("c", 2, 4);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_mention_panics() {
        Mention::new("x", 2, 2);
    }
}
