// Vendored work-alike: exempt from the first-party panic-free-library
// policy (see CI "Clippy (panic-free library code)").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline work-alike of `criterion` (API subset used by this workspace).
//!
//! Implements the measurement surface the benches use — `criterion_group!`/
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, sample_size,
//! finish}`, `BenchmarkId`, and `Bencher::iter` — with a plain
//! warmup-then-measure loop instead of criterion's statistical machinery.
//! Each benchmark reports the mean wall-clock time per iteration on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warmup, self.measure);
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the
    /// measurement loop is time-budgeted, not sample-counted).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.warmup, self.criterion.measure);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.warmup, self.criterion.measure);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Bencher { warmup, measure, iters: 0, elapsed: Duration::ZERO }
    }

    /// Times `routine`, first warming up, then measuring for the
    /// configured budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup budget is spent, computing a
        // per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();

        // Measurement: batched timing to amortize clock reads.
        let batch = if per_iter.is_zero() {
            1000
        } else {
            (self.measure.as_nanos() / per_iter.as_nanos().max(1) / 50).clamp(1, 10_000) as u64
        };
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<50} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!("{id:<50} {:>12} /iter  ({} iters)", format_time(per_iter), self.iters);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Declares a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`: skip measuring.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("algo", 42).0, "algo/42");
        assert_eq!(BenchmarkId::from_parameter("k4_n8").0, "k4_n8");
    }

    #[test]
    fn format_time_scales() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.002), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 µs");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
