// Vendored work-alike: exempt from the first-party panic-free-library
// policy (see CI "Clippy (panic-free library code)").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline work-alike of `proptest` (API subset used by this workspace).
//!
//! Supports the `proptest!` macro with `arg in strategy` bindings and an
//! optional `#![proptest_config(..)]` header, `prop_assert!`/
//! `prop_assert_eq!`, range and tuple strategies, `prop_map`,
//! `collection::vec`/`collection::hash_set`, `any::<bool>()`, and string
//! strategies of the form `"[class]{m,n}"`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generating input printed. Cases are generated from a fixed seed, so
//! failures are reproducible run to run.

use std::fmt;
use std::marker::PhantomData;

/// Deterministic generator used to produce test cases (xorshift64*).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $ty)
                }
            }
        )+
    };
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// String strategies: a `&'static str` pattern of the form `"[class]{m,n}"`
/// (single character class with a repetition count) acts as a strategy,
/// covering the patterns used in this workspace's tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parses `[chars]{m,n}` / `[chars]{n}` into (alphabet, min, max).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless `-` is first or last in the class.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo <= hi {
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
                continue;
            }
        }
        alphabet.push(class[i]);
        i += 1;
    }
    if alphabet.is_empty() {
        return None;
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`; duplicates may shrink the set below the
    /// requested size, as in real proptest.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets of `element` values with target size in `size`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = HashSet::with_capacity(target);
            // Bounded attempts so narrow element domains terminate.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// A failed test case (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration (mirrors `proptest::prelude::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! Test execution (subset).
    pub use super::{ProptestConfig, TestCaseError};
}

/// Runs `body` against `config.cases` generated values of `strategy`.
/// Panics (failing the surrounding `#[test]`) on the first failing case.
pub fn run_cases<S, F>(config: &ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // Fixed base seed: reproducible across runs; varies per case.
    let mut rng = TestRng::new(0x51ed_c0de_0000_0001);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!("proptest case {case} failed: {e}\ninput: {rendered}");
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use super::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Declares property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `fn name(arg in strategy, ...) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(
                &__config,
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (alphabet, min, max) = super::parse_class_pattern("[a-c]{1,3}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 3));
        let (alphabet, _, _) = super::parse_class_pattern("[ a-zA-Z0-9,.'()-]{0,120}").unwrap();
        assert!(alphabet.contains(&' '));
        assert!(alphabet.contains(&'-'));
        assert!(alphabet.contains(&'z'));
        assert!(alphabet.contains(&'('));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn strings_match_class(s in "[ab]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..5, 1..4),
            s in crate::collection::hash_set(0u64..100, 1..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(!s.is_empty() || s.len() < 10);
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20);
        }
    }
}
