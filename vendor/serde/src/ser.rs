//! Serialization half of the data model (mirrors `serde::ser`).

use std::fmt::Display;

/// Error raised by a serializer.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` through the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serde data format (the driver side of the data model).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct sub-serializer.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sequence serialization.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple serialization.
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct serialization.
pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant serialization.
pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map serialization.
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes one entry (key then value).
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
}

/// Struct serialization.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
    /// Notes a field skipped by `#[serde(skip)]`.
    fn skip_field(&mut self, _key: &'static str) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// Struct-variant serialization.
pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize implementations for std types.
// ---------------------------------------------------------------------------

macro_rules! serialize_primitive {
    ($ty:ty, $method:ident) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    };
}

serialize_primitive!(bool, serialize_bool);
serialize_primitive!(i8, serialize_i8);
serialize_primitive!(i16, serialize_i16);
serialize_primitive!(i32, serialize_i32);
serialize_primitive!(i64, serialize_i64);
serialize_primitive!(u8, serialize_u8);
serialize_primitive!(u16, serialize_u16);
serialize_primitive!(u32, serialize_u32);
serialize_primitive!(u64, serialize_u64);
serialize_primitive!(f32, serialize_f32);
serialize_primitive!(f64, serialize_f64);
serialize_primitive!(char, serialize_char);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

macro_rules! serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple(serialize_tuple!(@count $($name)+))?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    };
    (@count $($name:ident)+) => { [$(serialize_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

serialize_tuple!(A: 0);
serialize_tuple!(A: 0, B: 1);
serialize_tuple!(A: 0, B: 1, C: 2);
serialize_tuple!(A: 0, B: 1, C: 2, D: 3);
