// Vendored work-alike: exempt from the first-party panic-free-library
// policy (see CI "Clippy (panic-free library code)").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline work-alike of the `serde` serialization framework.
//!
//! The build environment of this repository has no network access to a
//! crates registry, so the workspace vendors a minimal, API-compatible
//! subset of serde: the `Serialize`/`Deserialize` traits, the serializer
//! and deserializer trait hierarchies (full data model), implementations
//! for the std types used by the workspace, and derive macros for plain
//! structs and fieldless enums (see `vendor/serde_derive`).
//!
//! Only the surface actually exercised by the workspace is provided; the
//! semantics of that surface follow serde 1.x so that swapping back to the
//! real crate is a one-line change in the workspace manifest.

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
