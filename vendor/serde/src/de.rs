//! Deserialization half of the data model (mirrors `serde::de`).

use std::fmt::Display;
use std::marker::PhantomData;

/// Error raised by a deserializer.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value through the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful deserialization driver (mirrors `serde::de::DeserializeSeed`).
pub trait DeserializeSeed<'de>: Sized {
    /// Produced value.
    type Value;
    /// Drives deserialization with access to the seed's state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A serde data format (the driver side of the data model).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;
}

/// Receives values from a deserializer (mirrors `serde::de::Visitor`).
///
/// Unlike real serde the `expecting` method is omitted; error messages come
/// from [`Error::custom`].
pub trait Visitor<'de>: Sized {
    /// Produced value.
    type Value;

    fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bool"))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v.into())
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v.into())
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v.into())
    }
    fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
        Err(E::custom("unexpected integer"))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v.into())
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v.into())
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v.into())
    }
    fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unsigned integer"))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v.into())
    }
    fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
        Err(E::custom("unexpected float"))
    }
    fn visit_char<E: Error>(self, _v: char) -> Result<Self::Value, E> {
        Err(E::custom("unexpected char"))
    }
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom("unexpected string"))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom("unexpected some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom("unexpected newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected enum"))
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element, if any.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    /// Deserializes the next key, if any.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Variant-content accessor.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the content of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T)
        -> Result<T::Value, Self::Error>;
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a newtype variant's content.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
}

/// Conversion of a primitive into a deserializer over itself (mirrors
/// `serde::de::IntoDeserializer`; used for enum variant tags).
pub trait IntoDeserializer<'de, E: Error> {
    /// The produced deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wraps `self` in a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer over a plain `u32` (enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer { value: self, marker: PhantomData }
    }
}

macro_rules! u32_de_forward {
    ($($method:ident)+) => {
        $(fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        })+
    };
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    u32_de_forward!(
        deserialize_any deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
        deserialize_i64 deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64 deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf deserialize_option deserialize_unit
        deserialize_seq deserialize_map deserialize_identifier deserialize_ignored_any
    );

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations for std types.
// ---------------------------------------------------------------------------

macro_rules! deserialize_primitive {
    ($ty:ty, $method:ident, $visit:ident) => {
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(V)
            }
        }
    };
}

deserialize_primitive!(bool, deserialize_bool, visit_bool);
deserialize_primitive!(i64, deserialize_i64, visit_i64);
deserialize_primitive!(u64, deserialize_u64, visit_u64);
deserialize_primitive!(f64, deserialize_f64, visit_f64);
deserialize_primitive!(char, deserialize_char, visit_char);

macro_rules! deserialize_small_int {
    ($ty:ty, $method:ident, $visit:ident, $via:ty) => {
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(V)
            }
        }
    };
}

deserialize_small_int!(i8, deserialize_i8, visit_i8, i64);
deserialize_small_int!(i16, deserialize_i16, visit_i16, i64);
deserialize_small_int!(i32, deserialize_i32, visit_i32, i64);
deserialize_small_int!(u8, deserialize_u8, visit_u8, u64);
deserialize_small_int!(u16, deserialize_u16, visit_u16, u64);
deserialize_small_int!(u32, deserialize_u32, visit_u32, u64);

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = usize;
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize out of range"))
            }
        }
        deserializer.deserialize_u64(V)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = isize;
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize out of range"))
            }
        }
        deserializer.deserialize_i64(V)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f32;
            fn visit_f32<E: Error>(self, v: f32) -> Result<f32, E> {
                Ok(v)
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f32, E> {
                Ok(v as f32)
            }
        }
        deserializer.deserialize_f32(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(
                    map.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<T, H>(PhantomData<(T, H)>);
        impl<'de, T, H> Visitor<'de> for Vis<T, H>
        where
            T: Deserialize<'de> + Eq + std::hash::Hash,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashSet<T, H>;
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashSet::with_capacity_and_hasher(
                    seq.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(Vis(PhantomData))
    }
}

macro_rules! deserialize_tuple {
    ($len:expr, $($name:ident),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De_: Deserializer<'de>>(deserializer: De_) -> Result<Self, De_::Error> {
                struct Vis<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for Vis<$($name),+> {
                    type Value = ($($name,)+);
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        Ok(($(
                            match seq.next_element::<$name>()? {
                                Some(v) => v,
                                None => return Err(Acc::Error::custom("tuple too short")),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, Vis(PhantomData))
            }
        }
    };
}

deserialize_tuple!(1, A);
deserialize_tuple!(2, A, B);
deserialize_tuple!(3, A, B, C);
deserialize_tuple!(4, A, B, C, D);
