// Vendored work-alike: exempt from the first-party panic-free-library
// policy (see CI "Clippy (panic-free library code)").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline work-alike of the `rand` crate (0.9 API subset).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`Rng`]/[`SeedableRng`] traits with `random`/`random_range`, and
//! [`seq::SliceRandom::shuffle`]. Deterministic for a given seed, which is
//! all the workspace needs: corpus generation and perturbation analyses are
//! always seeded explicitly.

/// Core RNG abstraction: a source of uniform 64-bit values.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),+) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end - self.start) as u64;
                    self.start + (uniform_u64(rng, span) as $ty)
                }
            }
            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in random_range");
                    let span = ((end - start) as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range.
                        return rng.next_u64() as $ty;
                    }
                    start + (uniform_u64(rng, span) as $ty)
                }
            }
        )+
    };
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($ty:ty),+) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(uniform_u64(rng, span) as $ty)
                }
            }
            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in random_range");
                    let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add(uniform_u64(rng, span) as $ty)
                }
            }
        )+
    };
}

impl_signed_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Shuffling support for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
            let w = rng.random_range(2u64..=5);
            assert!((2..=5).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "range sampling missed a value");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left slice sorted (astronomically unlikely)");
    }
}
