// Vendored work-alike: exempt from the first-party panic-free-library
// policy (see CI "Clippy (panic-free library code)").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline work-alike of `rayon` (API subset used by this workspace).
//!
//! Data-parallel iterators are implemented as deterministic chunked
//! fork-join over [`std::thread::scope`]: the input is split into one
//! contiguous chunk per worker, each chunk is mapped on its own OS thread,
//! and the per-chunk outputs are concatenated in chunk order. Results are
//! therefore **always in input order and bit-identical to a sequential
//! run**, for any thread count — the determinism contract the
//! disambiguation engine relies on.
//!
//! Differences from real rayon, by design:
//! - no work stealing: chunks are static, which is fine for the workspace's
//!   uniform per-item workloads;
//! - nested parallel regions run sequentially (a worker thread never
//!   forks again), bounding the thread count by the pool size;
//! - only the combinators the workspace uses are provided
//!   (`par_iter().map().collect()`, `into_par_iter()` over ranges,
//!   `ThreadPoolBuilder`/`ThreadPool::install`, `current_num_threads`).

use std::cell::Cell;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`]; 0 = unset.
    static EFFECTIVE_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Set inside worker threads so nested regions run sequentially.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel regions on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = EFFECTIVE_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Maps `f` over `items`, fanning out over up to [`current_num_threads`]
/// threads. Output order equals input order for any thread count.
fn scope_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len()).max(1);
    let nested = IN_PARALLEL_REGION.with(|c| c.get());
    if threads <= 1 || nested {
        return items.iter().map(f).collect();
    }

    // One contiguous chunk per worker; the first `rem` chunks get one
    // extra item so sizes differ by at most one.
    let base = items.len() / threads;
    let rem = items.len() % threads;
    let f = &f;
    let mut chunk_results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < rem);
            let chunk = &items[start..start + len];
            start += len;
            handles.push(scope.spawn(move || {
                IN_PARALLEL_REGION.with(|c| c.set(true));
                chunk.iter().map(f).collect::<Vec<R>>()
            }));
        }
        for h in handles {
            chunk_results.push(h.join().expect("rayon worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        out.extend(chunk);
    }
    out
}

pub mod iter {
    //! Parallel iterator types.

    use super::scope_map;

    /// Parallel iterator over `&[T]`.
    pub struct ParIter<'a, T> {
        pub(crate) slice: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps each item through `f`.
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            ParMap { slice: self.slice, f }
        }

        /// Runs `f` on every item (order of execution unspecified).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a T) + Sync,
        {
            scope_map(self.slice, f);
        }
    }

    /// Mapped parallel iterator over `&[T]`.
    pub struct ParMap<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<'a, T, R, F> ParMap<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        /// Collects the mapped items, preserving input order.
        pub fn collect<C: FromParallel<R>>(self) -> C {
            C::from_vec(scope_map(self.slice, |item| (self.f)(item)))
        }
    }

    /// Parallel iterator over an index range.
    pub struct ParRange {
        pub(crate) indices: Vec<usize>,
    }

    impl ParRange {
        /// Maps each index through `f`.
        pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
        where
            R: Send,
            F: Fn(usize) -> R + Sync,
        {
            ParRangeMap { indices: self.indices, f }
        }
    }

    /// Mapped parallel iterator over an index range.
    pub struct ParRangeMap<F> {
        indices: Vec<usize>,
        f: F,
    }

    impl<R, F> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        /// Collects the mapped items in index order.
        pub fn collect<C: FromParallel<R>>(self) -> C {
            C::from_vec(scope_map(&self.indices, |&i| (self.f)(i)))
        }
    }

    /// Collection types a parallel iterator can collect into.
    pub trait FromParallel<R> {
        /// Builds the collection from items in input order.
        fn from_vec(items: Vec<R>) -> Self;
    }

    impl<R> FromParallel<R> for Vec<R> {
        fn from_vec(items: Vec<R>) -> Vec<R> {
            items
        }
    }

    /// `.par_iter()` entry point (subset of rayon's blanket trait).
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item: Sync + 'a;
        /// Creates a parallel iterator borrowing the collection.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    /// `.into_par_iter()` entry point.
    pub trait IntoParallelIterator {
        /// The produced parallel iterator.
        type Iter;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { indices: self.collect() }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Error building a thread pool (never produced by this implementation).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count; 0 means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: parallel regions entered via [`ThreadPool::install`]
/// fan out over this pool's thread count. Threads are spawned per region
/// (scoped), not kept alive — adequate for the coarse-grained regions the
/// workspace runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = EFFECTIVE_THREADS.with(|t| t.replace(self.num_threads));
        let result = op();
        EFFECTIVE_THREADS.with(|t| t.set(prev));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| items.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.7).collect();
        let run = |threads: usize| -> Vec<f64> {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| items.par_iter().map(|&x| x.sin() * x.cos()).collect())
        };
        let one = run(1);
        for threads in [2, 3, 4, 7] {
            assert_eq!(one, run(threads), "threads={threads} diverged");
        }
    }

    #[test]
    fn nested_regions_run_sequentially() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let outer: Vec<usize> = (0..8).collect();
        let nested: Vec<Vec<usize>> = pool.install(|| {
            outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<usize> = (0..4).collect();
                    inner.par_iter().map(|&j| i * 10 + j).collect()
                })
                .collect()
        });
        for (i, row) in nested.iter().enumerate() {
            assert_eq!(*row, (0..4).map(|j| i * 10 + j).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..50).map(|i| i * i).collect::<Vec<usize>>());
    }
}
