// Vendored work-alike: exempt from the first-party panic-free-library
// policy (see CI "Clippy (panic-free library code)").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline work-alike of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes used in this workspace: structs with named fields (honouring
//! `#[serde(skip)]`), tuple structs, and enums whose variants carry no data.
//! The input is parsed directly from the token stream (no `syn`/`quote`,
//! which are unavailable offline) and the generated impl is assembled as
//! source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// Named-field struct: `(field_name, skipped)` in declaration order.
    Struct { name: String, fields: Vec<(String, bool)> },
    /// Tuple struct with `arity` fields.
    TupleStruct { name: String, arity: usize },
    /// Enum whose variants all carry no data.
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, includes doc comments) and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive does not support generic type `{name}`"));
    }

    match kind.as_str() {
        "struct" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Shape::Struct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream())?;
                Ok(Shape::TupleStruct { name, arity })
            }
            _ => Err(format!("unsupported struct shape for `{name}`")),
        },
        "enum" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(g.stream(), &name)?;
                Ok(Shape::UnitEnum { name, variants })
            }
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Returns true if the attribute tokens starting at `i` (pointing at `#`)
/// are `#[serde(skip)]`.
fn attr_is_serde_skip(tokens: &[TokenTree], i: usize) -> bool {
    let Some(TokenTree::Group(g)) = tokens.get(i + 1) else { return false };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" =>
        {
            args.stream().into_iter().any(
                |t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"),
            )
        }
        _ => false,
    }
}

/// Parses `{ field: Type, ... }` bodies into `(name, skipped)` pairs.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes: record `#[serde(skip)]`, skip the rest (doc comments).
        let mut skipped = false;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skipped |= attr_is_serde_skip(&tokens, i);
            i += 2;
        }
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("expected field name, found `{t}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to the next comma at angle-depth 0.
        // Groups are atomic, so only `<`/`>` need explicit depth tracking.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push((name, skipped));
    }
    Ok(fields)
}

/// Counts fields of a tuple struct body `(Type, Type, ...)`.
fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return Err("tuple struct has no fields".into());
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        arity += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    Ok(arity)
}

/// Parses `{ A, B, C }` enum bodies; errors if any variant carries data.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("expected variant name, found `{t}`")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(_) => {
                return Err(format!(
                    "derive supports only fieldless variants; `{enum_name}::{name}` carries data"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let live = fields.iter().filter(|(_, skip)| !skip).count();
            let mut body = String::new();
            for (field, skip) in fields {
                if *skip {
                    body.push_str(&format!(
                        "serde::ser::SerializeStruct::skip_field(&mut __st, {field:?})?;\n"
                    ));
                } else {
                    body.push_str(&format!(
                        "serde::ser::SerializeStruct::serialize_field(&mut __st, {field:?}, &self.{field})?;\n"
                    ));
                }
            }
            format!(
                "impl serde::ser::Serialize for {name} {{\n\
                 fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 let mut __st = serde::ser::Serializer::serialize_struct(serializer, {name:?}, {live})?;\n\
                 {body}\
                 serde::ser::SerializeStruct::end(__st)\n\
                 }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl serde::ser::Serialize for {name} {{\n\
             fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
             serde::ser::Serializer::serialize_newtype_struct(serializer, {name:?}, &self.0)\n\
             }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let mut body = String::new();
            for idx in 0..*arity {
                body.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{idx})?;\n"
                ));
            }
            format!(
                "impl serde::ser::Serialize for {name} {{\n\
                 fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 let mut __st = serde::ser::Serializer::serialize_tuple_struct(serializer, {name:?}, {arity})?;\n\
                 {body}\
                 serde::ser::SerializeTupleStruct::end(__st)\n\
                 }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                arms.push_str(&format!(
                    "{name}::{v} => serde::ser::Serializer::serialize_unit_variant(serializer, {name:?}, {idx}u32, {v:?}),\n"
                ));
            }
            format!(
                "impl serde::ser::Serialize for {name} {{\n\
                 fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let live: Vec<&str> =
                fields.iter().filter(|(_, s)| !s).map(|(f, _)| f.as_str()).collect();
            let field_list =
                live.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ");
            let mut init = String::new();
            for (field, skip) in fields {
                if *skip {
                    init.push_str(&format!("{field}: Default::default(),\n"));
                } else {
                    init.push_str(&format!(
                        "{field}: match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                         Some(v) => v,\n\
                         None => return Err(<A::Error as serde::de::Error>::custom(\
                         concat!(\"missing field `\", stringify!({field}), \"`\"))),\n\
                         }},\n"
                    ));
                }
            }
            format!(
                "impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut __seq: A) -> Result<{name}, A::Error> {{\n\
                 Ok({name} {{\n{init}}})\n\
                 }}\n\
                 }}\n\
                 const __FIELDS: &[&str] = &[{field_list}];\n\
                 serde::de::Deserializer::deserialize_struct(deserializer, {name:?}, __FIELDS, __Visitor)\n\
                 }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
             struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn visit_newtype_struct<D2: serde::de::Deserializer<'de>>(self, d: D2) -> Result<{name}, D2::Error> {{\n\
             Ok({name}(serde::de::Deserialize::deserialize(d)?))\n\
             }}\n\
             }}\n\
             serde::de::Deserializer::deserialize_newtype_struct(deserializer, {name:?}, __Visitor)\n\
             }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let mut init = String::new();
            for idx in 0..*arity {
                init.push_str(&format!(
                    "match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                     Some(v) => v,\n\
                     None => return Err(<A::Error as serde::de::Error>::custom(\
                     \"tuple struct too short (field {idx})\")),\n\
                     }},\n"
                ));
            }
            format!(
                "impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut __seq: A) -> Result<{name}, A::Error> {{\n\
                 Ok({name}(\n{init}))\n\
                 }}\n\
                 }}\n\
                 serde::de::Deserializer::deserialize_tuple_struct(deserializer, {name:?}, {arity}, __Visitor)\n\
                 }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let variant_list =
                variants.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(", ");
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                arms.push_str(&format!("{idx}u32 => Ok({name}::{v}),\n"));
            }
            format!(
                "impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn visit_enum<A: serde::de::EnumAccess<'de>>(self, data: A) -> Result<{name}, A::Error> {{\n\
                 let (__idx, __variant): (u32, A::Variant) = serde::de::EnumAccess::variant(data)?;\n\
                 serde::de::VariantAccess::unit_variant(__variant)?;\n\
                 match __idx {{\n{arms}\
                 _ => Err(<A::Error as serde::de::Error>::custom(\"invalid variant index\")),\n\
                 }}\n\
                 }}\n\
                 }}\n\
                 const __VARIANTS: &[&str] = &[{variant_list}];\n\
                 serde::de::Deserializer::deserialize_enum(deserializer, {name:?}, __VARIANTS, __Visitor)\n\
                 }}\n\
                 }}"
            )
        }
    }
}
