#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # AIDA-NED
//!
//! A from-scratch Rust implementation of the entity discovery and
//! disambiguation stack of Hoffart, *"Discovering and Disambiguating Named
//! Entities in Text"*: the AIDA joint disambiguator (graph-based coherence
//! with robustness tests), the KORE keyphrase-overlap relatedness measure
//! with two-stage min-hash/LSH acceleration, and the NED-EE emerging-entity
//! discovery method — plus the substrates they need (knowledge base, text
//! processing, synthetic world generation) and the applications built on
//! top (entity-centric search, news analytics).
//!
//! This crate is a facade re-exporting the workspace members under stable
//! names. Quick start:
//!
//! ```
//! use aida_ned::aida::{AidaConfig, Disambiguator, NedMethod};
//! use aida_ned::kb::{EntityKind, KbBuilder};
//! use aida_ned::relatedness::MilneWitten;
//! use aida_ned::text::{tokenize, Mention};
//!
//! // Build a tiny knowledge base.
//! let mut builder = KbBuilder::new();
//! let song = builder.add_entity("Kashmir (song)", EntityKind::Work);
//! let region = builder.add_entity("Kashmir (region)", EntityKind::Location);
//! builder.add_name(song, "Kashmir", 30);
//! builder.add_name(region, "Kashmir", 70);
//! builder.add_keyphrase(song, "hard rock", 2);
//! builder.add_keyphrase(song, "unusual chords", 2);
//! builder.add_keyphrase(region, "Himalaya mountains", 4);
//! let kb = builder.build();
//!
//! // Disambiguate a mention in context.
//! let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
//! let tokens = tokenize("They performed Kashmir with unusual chords.");
//! let mentions = vec![Mention::new("Kashmir", 2, 3)];
//! let result = aida.disambiguate(&tokens, &mentions);
//! assert_eq!(result.labels()[0], kb.entity_by_name("Kashmir (song)"));
//!
//! // Service configuration: freeze the KB into its columnar read form and
//! // share one handle across threads. Outputs are byte-identical.
//! use std::sync::Arc;
//! use aida_ned::kb::FrozenKb;
//! let frozen = Arc::new(FrozenKb::freeze(&kb));
//! let service =
//!     Disambiguator::new(frozen.clone(), MilneWitten::new(frozen.clone()), AidaConfig::full());
//! assert_eq!(service.disambiguate(&tokens, &mentions).labels(), result.labels());
//! ```

/// Fault-tolerance substrate: the typed error taxonomy and degradation
/// levels shared by every layer.
pub use ned_core as core;

/// Observability substrate: the deterministic metrics registry, stage
/// spans, and the `Clock` abstraction.
pub use ned_obs as obs;

/// Text processing substrate (tokenizer, POS tagging, NER, mentions).
pub use ned_text as text;

/// Knowledge-base substrate (entities, dictionary, links, keyphrases,
/// statistical weights).
pub use ned_kb as kb;

/// Entity relatedness measures (Milne–Witten, keyterm cosine, KORE,
/// two-stage LSH).
pub use ned_relatedness as relatedness;

/// The AIDA joint disambiguator and the baseline methods.
pub use ned_aida as aida;

/// The overload-robust in-process annotation service: bounded queue,
/// admission control, deadline-driven degradation, graceful drain.
pub use ned_serve as serve;

/// Emerging-entity discovery (confidence, EE models, NED-EE).
pub use ned_emerging as emerging;

/// Evaluation measures and gold-standard types.
pub use ned_eval as eval;

/// Synthetic world, corpus, and gold-standard generation.
pub use ned_wikigen as wikigen;

/// Applications: entity-centric search and news analytics.
pub use ned_apps as apps;
