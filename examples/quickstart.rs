//! Quickstart: build a small knowledge base by hand and jointly
//! disambiguate the thesis' running example sentence
//! ("They performed Kashmir, written by Page and Plant. Page played
//! unusual chords on his Gibson.").
//!
//! Run with: `cargo run --example quickstart`

use aida_ned::aida::{AidaConfig, Disambiguator, NedMethod};
use aida_ned::kb::{EntityKind, KbBuilder};
use aida_ned::relatedness::MilneWitten;
use aida_ned::text::{tokenize, NerConfig, Recognizer};

fn main() {
    // 1. Build the knowledge base: entities, surface names with anchor
    //    counts (→ popularity priors), keyphrases, and links.
    let mut b = KbBuilder::new();
    let song = b.add_entity("Kashmir (song)", EntityKind::Work);
    let region = b.add_entity("Kashmir (region)", EntityKind::Location);
    let jimmy = b.add_entity("Jimmy Page", EntityKind::Person);
    let larry = b.add_entity("Larry Page", EntityKind::Person);
    let plant = b.add_entity("Robert Plant", EntityKind::Person);
    let gibson = b.add_entity("Gibson Les Paul", EntityKind::Other);

    b.add_name(song, "Kashmir", 6);
    b.add_name(region, "Kashmir", 94); // the region dominates the prior
    b.add_name(jimmy, "Page", 40);
    b.add_name(larry, "Page", 55); // ... and Larry Page dominates "Page"
    b.add_name(plant, "Plant", 70);
    b.add_name(gibson, "Gibson", 60);

    b.add_keyphrase(song, "hard rock", 2);
    b.add_keyphrase(song, "unusual chords", 2);
    b.add_keyphrase(region, "Himalaya mountains", 4);
    b.add_keyphrase(region, "disputed territory", 3);
    b.add_keyphrase(jimmy, "hard rock", 3);
    b.add_keyphrase(jimmy, "session guitarist", 2);
    b.add_keyphrase(jimmy, "Gibson signature model", 2);
    b.add_keyphrase(larry, "search engine", 3);
    b.add_keyphrase(plant, "rock singer", 3);
    b.add_keyphrase(gibson, "electric guitar", 3);

    for (a, t) in [
        (jimmy, song),
        (song, jimmy),
        (plant, song),
        (plant, jimmy),
        (jimmy, plant),
        (gibson, jimmy),
        (jimmy, gibson),
        (song, gibson),
    ] {
        b.add_link(a, t);
    }
    let kb = b.build();

    // 2. Recognize mentions with the rule-based NER.
    let text =
        "They performed Kashmir, written by Page and Plant. Page played unusual chords on his Gibson.";
    let tokens = tokenize(text);
    let mut ner = Recognizer::new(NerConfig::default());
    for (key, _) in kb.dictionary().iter() {
        ner.add_gazetteer_entry(key);
    }
    let mentions = ner.recognize(&tokens);
    println!("text: {text}");
    println!("mentions: {:?}", mentions.iter().map(|m| m.surface.as_str()).collect::<Vec<_>>());

    // 3. Jointly disambiguate with the full AIDA configuration.
    let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
    let result = aida.disambiguate(&tokens, &mentions);

    println!("\n{} assignments:", aida.name());
    for (mention, assignment) in mentions.iter().zip(&result.assignments) {
        let entity = assignment
            .entity
            .map(|e| kb.entity(e).canonical_name.clone())
            .unwrap_or_else(|| "<out of KB>".to_string());
        println!(
            "  {:<10} → {:<18} (confidence {:.2})",
            mention.surface,
            entity,
            assignment.normalized_score()
        );
    }

    // The prior alone would have chosen the Himalaya region and Larry Page;
    // context similarity and graph coherence pick the coherent music
    // reading.
    let labels = result.labels();
    assert_eq!(labels[0], kb.entity_by_name("Kashmir (song)"));
    assert_eq!(labels[1], kb.entity_by_name("Jimmy Page"));
    println!("\ncoherence beat the popularity prior — see Chapter 3 of the thesis.");
}
