//! Newsroom pipeline: generate a synthetic world and a day of news, run the
//! full AIDA disambiguator over every article, and feed the results into
//! the entity-level analytics application (Chapter 6.2).
//!
//! Run with: `cargo run --release --example newsroom_pipeline`

use aida_ned::aida::{AidaConfig, Disambiguator, NedMethod};
use aida_ned::apps::NewsAnalytics;
use aida_ned::eval::{macro_accuracy, micro_accuracy};
use aida_ned::relatedness::MilneWitten;
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::news::{generate_stream, NewsConfig};
use aida_ned::wikigen::{ExportedKb, World};

fn main() {
    // A deterministic synthetic world standing in for Wikipedia/YAGO.
    let world = World::generate(WorldConfig::tiny(2024));
    let exported = ExportedKb::build(&world);
    let kb = &exported.kb;
    println!("world: {} entities ({} emerging)", world.len(), world.emerging_indices().len());

    // A five-day news stream with emerging entities mixed in.
    let stream = generate_stream(
        &world,
        &exported,
        1,
        &NewsConfig { n_days: 5, docs_per_day: 15, emerging_prob: 0.1, burst_days: 2 },
    );
    println!("stream: {} documents, {} mentions", stream.docs.len(), stream.mention_count());

    // Disambiguate everything and feed the analytics.
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());
    let mut analytics = NewsAnalytics::new();
    let mut gold = Vec::new();
    let mut predicted = Vec::new();
    for doc in &stream.docs {
        let mentions = doc.bare_mentions();
        let result = aida.disambiguate(&doc.tokens, &mentions);
        let labels = result.labels();
        let feed: Vec<(String, _)> = mentions
            .iter()
            .zip(&labels)
            .map(|(m, &l)| (m.surface.clone(), l))
            .collect();
        analytics.add_document(doc.day, &feed);
        gold.push(doc.gold_labels());
        predicted.push(labels);
    }

    let pairs: Vec<(&[_], &[_])> =
        gold.iter().zip(&predicted).map(|(g, p)| (g.as_slice(), p.as_slice())).collect();
    println!(
        "disambiguation quality: micro {:.1}%, macro {:.1}%",
        100.0 * micro_accuracy(pairs.iter().copied(), false),
        100.0 * macro_accuracy(pairs.iter().copied(), false),
    );

    // Analytics use cases (§6.2.3).
    let last_day = stream.n_days - 1;
    println!("\ntrending entities on day {last_day} (≥1.5× their mean daily volume):");
    for (entity, lift) in analytics.trending(last_day, 1.5, 3).into_iter().take(5) {
        println!("  {:<24} lift {:.1}×", kb.entity(entity).canonical_name, lift);
    }

    if let Some((entity, _)) = analytics.trending(last_day, 1.0, 1).first().copied() {
        println!("\nentities co-occurring with {}:", kb.entity(entity).canonical_name);
        for (partner, count) in analytics.co_occurring(entity, 5) {
            println!("  {:<24} {count} shared documents", kb.entity(partner).canonical_name);
        }
        println!("\nmention timeline of {}:", kb.entity(entity).canonical_name);
        for (day, count) in analytics.timeline(entity) {
            println!("  day {day}: {count} mentions  {}", "#".repeat(count as usize));
        }
    }

    println!("\nout-of-KB names surfaced on day {last_day} (KB maintenance feed):");
    for (name, count) in analytics.emerging_names(last_day).into_iter().take(5) {
        println!("  {name:<16} {count}×");
    }
}
