//! Emerging-entity discovery: the "Prism problem" of Chapter 5.
//!
//! The knowledge base knows a band called Prism; the news suddenly talks
//! about a surveillance program of the same name. Thresholding would have
//! to guess; NED-EE builds an explicit placeholder model for the new
//! meaning by harvesting keyphrases from the news stream and subtracting
//! the in-KB candidates' models (Algorithm 2), then lets the regular
//! disambiguator choose between the band and the placeholder.
//!
//! Run with: `cargo run --example emerging_entities`

// Demo code: aborting on error is the right UX for an example.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use aida_ned::aida::{AidaConfig, Disambiguator};
use aida_ned::emerging::confidence::{ConfAssessor, ConfidenceMethod};
use aida_ned::emerging::discover::{EeConfig, EeDiscovery};
use aida_ned::emerging::ee_model::{EeModelConfig, NameModels};
use aida_ned::eval::gold::{GoldDoc, LabeledMention};
use aida_ned::kb::{EntityKind, KbBuilder};
use aida_ned::relatedness::MilneWitten;
use aida_ned::text::{tokenize, Mention};

fn news_doc(id: &str, text: &str, name: &str) -> GoldDoc {
    let tokens = tokenize(text);
    let pos = tokens.iter().position(|t| t.text == name).expect("name occurs");
    GoldDoc::new(
        id,
        tokens,
        vec![LabeledMention { mention: Mention::new(name, pos, pos + 1), label: None }],
        0,
    )
}

fn main() {
    // The knowledge base knows "Prism" only as a progressive rock band.
    let mut b = KbBuilder::new();
    let band = b.add_entity("Prism (band)", EntityKind::Organization);
    b.add_name(band, "Prism", 25);
    b.add_keyphrase(band, "progressive rock band", 5);
    b.add_keyphrase(band, "stadium tour", 2);
    b.add_keyphrase(band, "platinum album", 2);
    let gov = b.add_entity("US Government", EntityKind::Organization);
    b.add_name(gov, "Washington", 40);
    b.add_keyphrase(gov, "federal agency", 4);
    b.add_keyphrase(gov, "secret surveillance program", 2);
    b.add_keyphrase(gov, "intelligence court order", 1);
    let kb = b.build();

    // A chunk of recent news in which a *new* Prism appears.
    let chunk = [
        news_doc("n1", "the secret surveillance program called Prism was revealed today", "Prism"),
        news_doc("n2", "a whistleblower leaked the secret surveillance program Prism files", "Prism"),
        news_doc("n3", "intelligence court order documents describe Prism collection", "Prism"),
        news_doc("n4", "the federal agency defended Prism before congress", "Prism"),
    ];
    let refs: Vec<&GoldDoc> = chunk.iter().collect();

    // Algorithm 2: global name model − in-KB candidate models.
    let models = NameModels::build(&kb, &refs, 2, &EeModelConfig::default());
    let model = models.get("Prism").expect("a model for Prism");
    println!("EE placeholder model for \"Prism\" ({} phrases):", model.phrases.len());
    for p in model.phrases.iter().take(6) {
        println!("  {:<34} weight {:.2}", p.surface, p.weight);
    }

    // Algorithm 3: the placeholder competes with the band.
    let aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::sim_only());
    let discovery = EeDiscovery::new(
        &aida,
        &models,
        EeConfig {
            gamma: 1.0,
            assessor: ConfAssessor::new(ConfidenceMethod::Normalized),
            ..EeConfig::default()
        },
    );

    let cases = [
        ("the secret surveillance program Prism collects intelligence", "emerging entity"),
        ("the progressive rock band Prism announced a stadium tour", "Prism (band)"),
    ];
    println!("\ndiscovery decisions:");
    for (text, expected) in cases {
        let tokens = tokenize(text);
        let pos = tokens.iter().position(|t| t.text == "Prism").expect("Prism in text");
        let mentions = vec![Mention::new("Prism", pos, pos + 1)];
        let (labels, _) = discovery.discover(&tokens, &mentions);
        let decided = match labels[0] {
            Some(e) => kb.entity(e).canonical_name.clone(),
            None => "emerging entity".to_string(),
        };
        println!("  \"{text}\"\n    → {decided} (expected: {expected})");
        assert_eq!(decided, expected);
    }
    println!("\nboth readings of the same name resolved correctly — see §5.6.");
}
