//! Joint recognition + disambiguation + type classification over raw text
//! (the §7.2.1 outlook and the NEC task of §2.4.4).
//!
//! One call takes a plain string and returns linked, typed annotations:
//! tentative spans come from the rule NER plus a dictionary gazetteer,
//! disambiguation confidence decides which spans survive, and the taxonomy
//! classifier labels each with its semantic class.
//!
//! Run with: `cargo run --release --example joint_annotation`

use aida_ned::aida::classification::TypeClassifier;
use aida_ned::aida::{AidaConfig, Disambiguator, JointAnnotator, JointConfig};
use aida_ned::relatedness::MilneWitten;
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};

fn main() {
    // A synthetic world with its KB and taxonomy.
    let world = World::generate(WorldConfig::tiny(321));
    let exported = ExportedKb::build(&world);
    let kb = &exported.kb;
    let taxonomy = &exported.taxonomy;

    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());
    let annotator = JointAnnotator::new(&aida, JointConfig::default());
    let classifier = TypeClassifier::new(kb, taxonomy);

    // Take real generated documents and re-annotate them from raw text —
    // no gold mention spans are given to the pipeline.
    let corpus = conll_like(&world, &exported, 9, 5);
    let mut shown = 0;
    for doc in &corpus.docs {
        let text = doc.text();
        let (tokens, annotations) = annotator.annotate(&text);
        if annotations.is_empty() {
            continue;
        }
        println!("document {} — {} tokens, {} annotations:", doc.id, tokens.len(), annotations.len());
        for a in annotations.iter().take(6) {
            let ty = classifier
                .best_type(&tokens, &a.mention)
                .map(|t| taxonomy.name(t).to_string())
                .unwrap_or_else(|| "?".into());
            println!(
                "  {:<18} → {:<22} [{:<16}] conf {:.2}",
                a.mention.surface,
                kb.entity(a.entity).canonical_name,
                ty,
                a.confidence
            );
        }
        shown += 1;
        if shown == 2 {
            break;
        }
        println!();
    }

    // How well does the end-to-end pipeline recover the gold annotations?
    let mut found = 0usize;
    let mut correct = 0usize;
    let mut gold_total = 0usize;
    for doc in &corpus.docs {
        let annotations = annotator.annotate_tokens(&doc.tokens);
        for lm in &doc.mentions {
            let Some(gold) = lm.label else { continue };
            gold_total += 1;
            if let Some(a) = annotations.iter().find(|a| a.mention == lm.mention) {
                found += 1;
                if a.entity == gold {
                    correct += 1;
                }
            }
        }
    }
    println!(
        "\nend-to-end over {gold_total} gold mentions: {found} recognized ({:.0}%), \
         {correct} linked correctly ({:.0}% of recognized)",
        100.0 * found as f64 / gold_total as f64,
        100.0 * correct as f64 / found.max(1) as f64
    );
}
