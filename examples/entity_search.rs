//! Entity-centric search over strings, things, and cats (Chapter 6.1).
//!
//! Documents are disambiguated once and indexed three ways: by words
//! (strings), by the canonical entities found in them (things), and by the
//! semantic classes of those entities (cats). Queries can then distinguish
//! "documents about the song Kashmir" from "documents containing the word
//! Kashmir".
//!
//! Run with: `cargo run --release --example entity_search`

// Demo code: aborting on error is the right UX for an example.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use aida_ned::aida::{AidaConfig, Disambiguator, NedMethod};
use aida_ned::apps::{EntityIndex, Query};
use aida_ned::kb::EntityKind;
use aida_ned::relatedness::MilneWitten;
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};

fn main() {
    let world = World::generate(WorldConfig::tiny(77));
    let exported = ExportedKb::build(&world);
    let kb = &exported.kb;
    let corpus = conll_like(&world, &exported, 3, 40);

    // Disambiguate and index every document.
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());
    let mut index = EntityIndex::new(kb);
    for doc in &corpus.docs {
        let mentions = doc.bare_mentions();
        let labels = aida.disambiguate(&doc.tokens, &mentions).labels();
        index.add_document(doc.id.clone(), &doc.tokens, &labels);
    }
    println!("indexed {} documents", index.len());

    // Pick an ambiguous surface and one of its entities for the demo.
    let (surface, cands) = kb
        .dictionary()
        .iter()
        .filter(|(_, c)| c.len() >= 2)
        .max_by_key(|(_, c)| c.len())
        .expect("an ambiguous name");
    let thing = cands[0].entity;
    println!(
        "\nambiguous name {:?} has {} senses; searching for the specific entity {:?}:",
        surface,
        cands.len(),
        kb.entity(thing).canonical_name
    );

    // Things: documents about this entity, regardless of surface form.
    let hits = index.search(&Query::things(&[thing]), 5);
    for hit in &hits {
        println!("  {} (score {:.2})", hit.doc_id, hit.score);
    }

    // Strings: plain word search for comparison.
    let word = surface.to_lowercase();
    let string_hits = index.search(&Query::strings(&[&word]), 50);
    println!(
        "\nplain string search for {word:?} matches {} documents; \
         the thing query matched {} — the difference is every document \
         where the name means one of the other {} senses.",
        string_hits.len(),
        hits.len(),
        cands.len() - 1
    );

    // Cats: all documents mentioning at least one Person and one Location.
    let q = Query { kinds: vec![EntityKind::Person, EntityKind::Location], ..Default::default() };
    let cat_hits = index.search(&q, 5);
    println!("\ndocuments with both a person and a location ({} total):", cat_hits.len());
    for hit in cat_hits.iter().take(3) {
        println!("  {}", hit.doc_id);
    }
}
