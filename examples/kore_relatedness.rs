//! Comparing entity-relatedness measures (Chapter 4): the link-based
//! Milne–Witten measure against keyphrase-based KORE, and the two-stage
//! LSH acceleration.
//!
//! The "Cash performed Jackson" example of §4.1: at the surface level the
//! names are unrelated; at the entity level the singer and his song are
//! strongly related — and KORE captures it even when the song has no links.
//!
//! Run with: `cargo run --example kore_relatedness`

use aida_ned::kb::{EntityKind, KbBuilder};
use aida_ned::relatedness::{Kore, KoreLsh, MilneWitten, Relatedness, TwoStageConfig};

fn main() {
    let mut b = KbBuilder::new();
    let cash = b.add_entity("Johnny Cash", EntityKind::Person);
    let song = b.add_entity("Jackson (song)", EntityKind::Work);
    let city = b.add_entity("Jackson (city)", EntityKind::Location);
    let cave = b.add_entity("Nick Cave", EntityKind::Person);
    let hallelujah = b.add_entity("Hallelujah (Nick Cave song)", EntityKind::Work);

    b.add_keyphrase(cash, "country singer", 5);
    b.add_keyphrase(cash, "June Carter duet", 3);
    b.add_keyphrase(cash, "man in black", 3);
    b.add_keyphrase(song, "June Carter duet", 2);
    b.add_keyphrase(song, "country singer classic", 2);
    b.add_keyphrase(city, "state capital", 4);
    b.add_keyphrase(city, "river harbor", 2);
    b.add_keyphrase(cave, "Australian singer", 4);
    b.add_keyphrase(cave, "Bad Seeds", 5);
    b.add_keyphrase(hallelujah, "Australian male singer", 2);
    b.add_keyphrase(hallelujah, "Bad Seeds", 3);
    b.add_keyphrase(hallelujah, "eerie cello", 1);

    // Links exist only in the popular corner of the KB: Cash and his song
    // are interlinked; Nick Cave's song is "out of Wikipedia" — no links.
    let fan1 = b.add_entity("Fan page 1", EntityKind::Other);
    let fan2 = b.add_entity("Fan page 2", EntityKind::Other);
    for f in [fan1, fan2] {
        b.add_link(f, cash);
        b.add_link(f, song);
    }
    let kb = b.build();

    let mw = MilneWitten::new(&kb);
    let kore = Kore::new(&kb);

    println!("{:<44} {:>6} {:>6}", "entity pair", "MW", "KORE");
    let pairs = [
        ("Johnny Cash ↔ Jackson (song)", cash, song),
        ("Johnny Cash ↔ Jackson (city)", cash, city),
        ("Nick Cave ↔ Hallelujah (his song)", cave, hallelujah),
        ("Nick Cave ↔ Johnny Cash", cave, cash),
    ];
    for (label, a, bb) in pairs {
        println!(
            "{:<44} {:>6.3} {:>6.3}",
            label,
            mw.relatedness(a, bb),
            kore.relatedness(a, bb)
        );
    }
    println!(
        "\nMW sees Cash↔Jackson (they share in-linkers) but is blind to the\n\
         link-poor Nick Cave song; KORE scores both from keyphrase overlap."
    );
    assert_eq!(mw.relatedness(cave, hallelujah), 0.0);
    assert!(kore.relatedness(cave, hallelujah) > 0.0);

    // The LSH acceleration prunes unrelated pairs before exact computation.
    let lsh = KoreLsh::new(&kb, TwoStageConfig::lsh_g());
    let everyone = [cash, song, city, cave, hallelujah];
    let scoped = lsh.scoped(&everyone);
    let all_pairs = everyone.len() * (everyone.len() - 1) / 2;
    println!(
        "\ntwo-stage LSH: {} of {all_pairs} pairs survive pruning; the rest are\n\
         assumed unrelated without computing exact KORE (§4.4.2).",
        scoped.surviving_pairs()
    );
    assert!(scoped.is_candidate(cave, hallelujah));
}
