//! Wall-deadline degradation, end to end and deterministic.
//!
//! Two layers are pinned here:
//!
//! 1. **Mid-solve expiry** — a ticking [`ManualClock`] advances simulated
//!    time on every read, so the solver's wall-budget guard (which samples
//!    the clock every 1024 charge units) observes time passing *during* a
//!    solve with no sleeps and no races. On a graph wide enough to cross
//!    the sampling cadence, the budget fires `DeadlineExceeded`, the
//!    disambiguator steps down exactly one rung (joint → no-coherence),
//!    and the counters record exactly one budget exhaustion.
//! 2. **The serving ladder** — the virtual-time open-loop simulator runs
//!    the *real* pipeline behind `ned-serve`'s deadline policy while a
//!    queue backlog burns down each request's deadline; the exact sequence
//!    of per-request degradation levels (full → no-coherence → prior-only)
//!    and the serving counters are pinned.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use aida_ned::aida::{
    AidaConfig, DeadlinePlan, DeadlinePolicy, Disambiguator, JointConfig, NedMethod,
};
use aida_ned::core::DegradationLevel;
use aida_ned::kb::{EntityKind, FrozenKb, KbBuilder, KnowledgeBase};
use aida_ned::obs::{Clock, Metrics};
use aida_ned::relatedness::MilneWitten;
use aida_ned::serve::{
    run_open_loop, AidaHandler, AnnotateHandler, OpenLoopConfig, ServeObs, ServeRequest,
    SimStatus,
};
use aida_ned::text::{tokenize, Mention};

/// A KB whose single surface is shared by `width` entities: one mention
/// yields a graph wide enough that the solver's first Dijkstra alone
/// crosses the 1024-charge wall-budget sampling cadence.
fn wide_kb(width: u32) -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let mut prev = None;
    for i in 0..width {
        let e = b.add_entity(&format!("Gorvandel {i}"), EntityKind::Person);
        b.add_name(e, "Gorvandel", 1 + u64::from(i % 7));
        b.add_keyphrase(e, "ancient fortress city", 2);
        if let Some(p) = prev {
            b.add_link(p, e);
        }
        prev = Some(e);
    }
    b.build()
}

/// Runs one wide-graph document under `clock` with a 6 ms wall budget
/// (the `Budgeted` rung of the deadline ladder) and returns the reported
/// degradation plus the metrics snapshot.
fn run_wide(kb: &KnowledgeBase, clock: Clock) -> (DegradationLevel, aida_ned::obs::MetricsSnapshot)
{
    // 6 ms remaining → the policy keeps the joint method under a wall
    // budget; this transition itself is pinned here.
    let plan = DeadlinePolicy::default().plan(Some(6_000_000));
    assert_eq!(plan, DeadlinePlan::Budgeted { wall_ms: 6 });
    let config = plan.apply(&AidaConfig::full());
    assert_eq!(config.solver_wall_budget_ms, Some(6));

    let metrics = Metrics::new();
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), config)
        .with_metrics(&metrics)
        .with_clock(clock);
    let tokens = tokenize("Gorvandel");
    let mentions = vec![Mention::new("Gorvandel", 0, 1)];
    let result = aida.disambiguate(&tokens, &mentions);
    assert_eq!(result.assignments.len(), 1);
    assert!(result.assignments[0].entity.is_some(), "degraded, not unanswered");
    (result.degradation, metrics.snapshot())
}

#[test]
fn ticking_clock_expires_wall_budget_mid_solve() {
    let kb = wide_kb(1_200);

    // 8 ms of simulated time pass per clock read: the budget's first
    // sampling point (1024 charges into the solve) already sees the 6 ms
    // budget blown. Exactly one rung down, exactly once, deterministically.
    let expire = || {
        let (_clock, hand) = Clock::manual();
        run_wide(&kb, Clock::Manual(hand.with_tick(8_000_000)))
    };
    let (level, snap) = expire();
    assert_eq!(level, DegradationLevel::NoCoherence, "budget expiry drops coherence only");
    assert_eq!(snap.counter("aida_solver_budget_exhausted"), 1);
    assert_eq!(snap.counter("aida_degradation_no_coherence"), 1);
    assert_eq!(snap.counter("aida_degradation_joint"), 0);
    assert_eq!(snap.counter("aida_degradation_prior_only"), 0);
    assert_eq!(snap.counter("aida_docs"), 1);

    // Deterministic: the same ticking schedule reproduces the same
    // snapshot bit for bit.
    let (level2, snap2) = expire();
    assert_eq!(level, level2);
    assert_eq!(snap, snap2, "mid-solve expiry must be reproducible");

    // Control: the same document and budget under a frozen clock never
    // expires — time, not the workload, caused the degradation.
    let (level0, snap0) = run_wide(&kb, Clock::null());
    assert_eq!(level0, DegradationLevel::None);
    assert_eq!(snap0.counter("aida_solver_budget_exhausted"), 0);
    assert_eq!(snap0.counter("aida_degradation_joint"), 1);
    assert_eq!(snap0.counter("aida_degradation_no_coherence"), 0);
}

/// A small fully-linked KB whose names appear in the request text, so the
/// serving handler's recognizer finds real mentions.
fn tiny_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let z = b.add_entity("Zanthor", EntityKind::Person);
    let q = b.add_entity("Quorbel", EntityKind::Person);
    let x = b.add_entity("Xylont", EntityKind::Location);
    for (e, name) in [(z, "Zanthor"), (q, "Quorbel"), (x, "Xylont")] {
        b.add_name(e, name, 10);
        b.add_keyphrase(e, "border summit talks", 3);
    }
    b.add_link(z, q);
    b.add_link(q, x);
    b.add_link(x, z);
    b.build()
}

#[test]
fn queue_backlog_burns_deadlines_down_the_exact_ladder() {
    let frozen = Arc::new(FrozenKb::freeze(&tiny_kb()));
    let metrics = Metrics::new();
    let (clock, hand) = Clock::manual();
    let handler = AidaHandler::try_new(
        frozen.clone(),
        Arc::new(MilneWitten::new(frozen.clone())),
        AidaConfig::full(),
        JointConfig::default(),
    )
    .expect("valid config")
    .with_metrics(&metrics)
    .with_clock(clock);

    // Sanity: the pipeline really annotates this text at full fidelity.
    let probe = handler.handle(
        &ServeRequest::new(999, "Zanthor met Quorbel at Xylont"),
        &DeadlinePlan::Full,
    );
    assert!(!probe.annotations.is_empty(), "recognizer must find real mentions");
    assert_eq!(probe.degradation, DegradationLevel::None);

    // One worker, 1 ms arrivals, 3 ms service cost, 8 ms deadlines: the
    // backlog grows by 2 ms per request, so remaining time at dequeue is
    // 8, 6, 4, 2, 0, 0, ... ms → plans Budgeted, Budgeted, NoCoherence,
    // NoCoherence, PriorOnly, PriorOnly, ...
    let obs = ServeObs::new(&metrics);
    let config = OpenLoopConfig {
        workers: 1,
        queue_capacity: 16,
        arrival_interval_ns: 1_000_000,
        default_deadline_ms: Some(8),
        policy: DeadlinePolicy::default(),
        shed_expired: false,
    };
    let requests: Vec<ServeRequest> = (0..12)
        .map(|i| ServeRequest::new(i, "Zanthor met Quorbel at Xylont"))
        .collect();
    let report = run_open_loop(
        &handler,
        &hand,
        &requests,
        &config,
        &|_, _| 3_000_000,
        &obs,
    )
    .expect("valid config");
    report.check_conservation().expect("books balance");

    let rungs: Vec<DegradationLevel> =
        report.outcomes.iter().map(|o| o.degradation).collect();
    let expected: Vec<DegradationLevel> = [
        DegradationLevel::None,
        DegradationLevel::None,
        DegradationLevel::NoCoherence,
        DegradationLevel::NoCoherence,
    ]
    .into_iter()
    .chain(std::iter::repeat_n(DegradationLevel::PriorOnly, 8))
    .collect();
    assert_eq!(rungs, expected, "the exact ladder, request by request");

    // Queue wait grows by 2 ms per request until the deadline is gone.
    assert_eq!(report.outcomes[0].queue_wait_ns, 0);
    assert_eq!(report.outcomes[2].queue_wait_ns, 4_000_000);
    assert_eq!(report.outcomes[4].queue_wait_ns, 8_000_000);

    // The serving counters tell the same story, exactly.
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("serve_submitted"), 12);
    assert_eq!(snap.counter("serve_accepted"), 12);
    assert_eq!(snap.counter("serve_rejected_queue_full"), 0);
    assert_eq!(snap.counter("serve_completed_ok"), 2);
    assert_eq!(snap.counter("serve_completed_degraded"), 10);
    assert_eq!(snap.counter("serve_degraded_no_coherence"), 2);
    assert_eq!(snap.counter("serve_degraded_prior_only"), 8);
    assert_eq!(snap.counter("serve_failed"), 0);
    assert_eq!(report.count(SimStatus::Ok), 2);
    assert_eq!(report.count(SimStatus::Degraded), 10);

    // Every request got an answer — degraded beats timed-out.
    assert!(report.outcomes.iter().all(|o| o.status != SimStatus::Rejected));
}

#[test]
fn shed_expired_policy_converts_expired_requests_to_typed_sheds() {
    let frozen = Arc::new(FrozenKb::freeze(&tiny_kb()));
    let metrics = Metrics::new();
    let (clock, hand) = Clock::manual();
    let handler = AidaHandler::try_new(
        frozen.clone(),
        Arc::new(MilneWitten::new(frozen.clone())),
        AidaConfig::full(),
        JointConfig::default(),
    )
    .expect("valid config")
    .with_metrics(&metrics)
    .with_clock(clock);

    let obs = ServeObs::new(&metrics);
    let config = OpenLoopConfig {
        workers: 1,
        queue_capacity: 16,
        arrival_interval_ns: 1_000_000,
        default_deadline_ms: Some(8),
        policy: DeadlinePolicy::default(),
        shed_expired: true,
    };
    let requests: Vec<ServeRequest> = (0..12)
        .map(|i| ServeRequest::new(i, "Zanthor met Quorbel at Xylont"))
        .collect();
    let report =
        run_open_loop(&handler, &hand, &requests, &config, &|_, _| 3_000_000, &obs)
            .expect("valid config");
    report.check_conservation().expect("books balance");

    // Same burn-down as above, but expired requests are now shed instead
    // of served prior-only; sheds free the worker immediately, so the
    // backlog stops growing once expiry sets in.
    assert!(report.count(SimStatus::Shed) > 0, "expired requests shed");
    assert_eq!(report.count(SimStatus::Ok) + report.count(SimStatus::Degraded) + report.count(SimStatus::Shed), 12);
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("serve_shed_deadline"), report.count(SimStatus::Shed));
    assert_eq!(snap.counter("serve_degraded_prior_only"), 0, "prior-only replaced by sheds");
}
