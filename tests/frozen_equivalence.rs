//! Property-based equivalence of the frozen columnar KB and the legacy KB.
//!
//! [`FrozenKb::freeze`] is a pure re-layout: every read answer — candidate
//! lists, priors, link neighborhoods, keyphrase sets, interner lookups,
//! similarity scores, and full joint disambiguation — must be *identical*
//! to the legacy [`KnowledgeBase`], down to the bit pattern of every float.
//! These properties drive randomly built worlds through both
//! representations side by side.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use aida_ned::aida::context::DocumentContext;
use aida_ned::aida::cover::CoverScratch;
use aida_ned::aida::similarity::{
    phrase_score, phrase_score_run, simscore, simscore_exhaustive, simscores_batch,
};
use aida_ned::aida::{AidaConfig, Disambiguator, KeywordWeighting, NedMethod, SimObs};
use aida_ned::kb::{EntityKind, FrozenKb, KbBuilder, KbView, KnowledgeBase, WordId};
use aida_ned::obs::Metrics;
use aida_ned::relatedness::MilneWitten;
use aida_ned::text::{tokenize, Mention};
use proptest::prelude::*;

/// (surface, anchor/occurrence count) pairs of one entity.
type WeightedSurfaces = Vec<(String, u64)>;

/// A randomly generated world, small enough to disambiguate in
/// milliseconds but rich enough to cover ambiguity, links, and keyphrases.
#[derive(Debug, Clone)]
struct WorldSpec {
    /// Per entity: (names with counts, keyphrases with counts).
    entities: Vec<(WeightedSurfaces, WeightedSurfaces)>,
    /// Directed links as index pairs (taken modulo the entity count).
    links: Vec<(usize, usize)>,
    /// Document context words.
    context: Vec<String>,
    /// Indexes into the name pool, selecting mention surfaces.
    mention_picks: Vec<usize>,
}

fn world_strategy() -> impl Strategy<Value = WorldSpec> {
    let name = "[a-d]{1,3}";
    let phrase = proptest::collection::vec("[a-e]{1,4}", 1..4);
    let entity = (
        proptest::collection::vec((name, 1u64..100), 1..3),
        proptest::collection::vec((phrase, 1u64..6), 0..4),
    )
        .prop_map(|(names, phrases)| {
            let phrases =
                phrases.into_iter().map(|(ws, c)| (ws.join(" "), c)).collect::<Vec<_>>();
            (names, phrases)
        });
    (
        proptest::collection::vec(entity, 1..10),
        proptest::collection::vec((0usize..64, 0usize..64), 0..30),
        proptest::collection::vec("[a-g]{1,4}", 0..25),
        proptest::collection::vec(0usize..64, 0..5),
    )
        .prop_map(|(entities, links, context, mention_picks)| WorldSpec {
            entities,
            links,
            context,
            mention_picks,
        })
}

/// Builds the legacy KB from a spec; returns the KB and its name pool.
fn build_world(spec: &WorldSpec) -> (KnowledgeBase, Vec<String>) {
    let mut builder = KbBuilder::new();
    let mut ids = Vec::new();
    let mut name_pool = Vec::new();
    for (i, (names, phrases)) in spec.entities.iter().enumerate() {
        let e = builder.add_entity(&format!("Entity {i}"), EntityKind::Other);
        for (name, count) in names {
            builder.add_name(e, name, *count);
            name_pool.push(name.clone());
        }
        for (surface, count) in phrases {
            builder.add_keyphrase(e, surface, *count);
        }
        ids.push(e);
    }
    for &(a, b) in &spec.links {
        let (src, dst) = (ids[a % ids.len()], ids[b % ids.len()]);
        if src != dst {
            builder.add_link(src, dst);
        }
    }
    (builder.build(), name_pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every primitive read answer agrees between the representations:
    /// entities, dictionary (candidates + priors + iteration order), link
    /// neighborhoods, keyphrase sets, interners, and weights-backed
    /// similarity.
    #[test]
    fn frozen_reads_match_legacy(spec in world_strategy()) {
        let (kb, name_pool) = build_world(&spec);
        let frozen = FrozenKb::freeze(&kb);

        // Entity table and canonical-name index.
        prop_assert_eq!(frozen.entity_count(), kb.entity_count());
        for e in kb.entity_ids() {
            prop_assert_eq!(frozen.entity(e), kb.entity(e));
            let name = &kb.entity(e).canonical_name;
            prop_assert_eq!(frozen.entity_by_name(name), kb.entity_by_name(name));
        }

        // Dictionary: candidates and priors per surface (known and unknown),
        // and the full iteration in ascending key order.
        for surface in name_pool.iter().map(String::as_str).chain(["zz", "Qx"]) {
            prop_assert_eq!(
                KbView::candidates(&frozen, surface),
                KbView::candidates(&kb, surface)
            );
            for e in kb.entity_ids() {
                let fp = KbView::prior(&frozen, surface, e);
                let lp = KbView::prior(&kb, surface, e);
                prop_assert_eq!(fp.to_bits(), lp.to_bits(), "prior({}, {:?})", surface, e);
            }
        }
        let frozen_entries: Vec<_> = KbView::dictionary(&frozen).iter().collect();
        let legacy_entries: Vec<_> = KbView::dictionary(&kb).iter().collect();
        prop_assert_eq!(frozen_entries, legacy_entries);

        // Link neighborhoods, sorted slices on both sides.
        prop_assert_eq!(frozen.links().edge_count(), kb.links().edge_count());
        for e in kb.entity_ids() {
            prop_assert_eq!(frozen.links().inlinks(e), kb.links().inlinks(e));
            prop_assert_eq!(frozen.links().outlinks(e), kb.links().outlinks(e));
        }

        // Keyphrase sets, phrase decompositions, and interners.
        prop_assert_eq!(frozen.word_count(), KbView::word_count(&kb));
        prop_assert_eq!(frozen.phrase_count(), KbView::phrase_count(&kb));
        for e in kb.entity_ids() {
            prop_assert_eq!(KbView::keyphrases(&frozen, e), KbView::keyphrases(&kb, e));
            for ep in KbView::keyphrases(&kb, e) {
                prop_assert_eq!(
                    KbView::phrase_words(&frozen, ep.phrase),
                    KbView::phrase_words(&kb, ep.phrase)
                );
                prop_assert_eq!(
                    KbView::phrase_surface(&frozen, ep.phrase),
                    KbView::phrase_surface(&kb, ep.phrase)
                );
            }
        }

        // Similarity: the weights and the kp-index survive freezing bit for
        // bit.
        let tokens = tokenize(&spec.context.join(" "));
        let legacy_ctx = DocumentContext::build(&kb, &tokens).words;
        let frozen_ctx = DocumentContext::build(&frozen, &tokens).words;
        prop_assert_eq!(&frozen_ctx, &legacy_ctx);
        for e in kb.entity_ids() {
            for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
                let f = simscore(&frozen, e, &frozen_ctx, weighting);
                let l = simscore(&kb, e, &legacy_ctx, weighting);
                prop_assert_eq!(f.to_bits(), l.to_bits(), "simscore({:?}) {} vs {}", e, f, l);
            }
        }
    }

    /// The precomputed phrase runs (PR 6 hot path) are pure re-derivations:
    /// on both backends, every run is the sorted-deduplicated word set of
    /// the raw phrase, and the precomputed IDF / per-entity NPMI masses
    /// equal the reference sums bit for bit.
    #[test]
    fn phrase_runs_match_reference_across_backends(spec in world_strategy()) {
        let (kb, _) = build_world(&spec);
        let frozen = FrozenKb::freeze(&kb);
        prop_assert_eq!(kb.phrase_runs().phrase_count(), KbView::phrase_count(&kb));
        prop_assert_eq!(frozen.phrase_runs().phrase_count(), KbView::phrase_count(&kb));
        for e in kb.entity_ids() {
            for ep in KbView::keyphrases(&kb, e) {
                let p = ep.phrase;
                let mut reference: Vec<WordId> = KbView::phrase_words(&kb, p).to_vec();
                reference.sort_unstable();
                reference.dedup();
                prop_assert_eq!(kb.phrase_runs().run(p), reference.as_slice());
                prop_assert_eq!(frozen.phrase_runs().run(p), reference.as_slice());

                let idf_ref: f64 =
                    reference.iter().map(|&w| kb.weights().word_idf(w)).sum();
                prop_assert_eq!(kb.phrase_runs().idf_mass(p).to_bits(), idf_ref.to_bits());
                prop_assert_eq!(frozen.phrase_runs().idf_mass(p).to_bits(), idf_ref.to_bits());

                let npmi_ref: f64 =
                    reference.iter().map(|&w| kb.weights().keyword_npmi(e, w)).sum();
                let legacy_mass = kb.phrase_runs().npmi_mass(e, p).map(f64::to_bits);
                let frozen_mass = frozen.phrase_runs().npmi_mass(e, p).map(f64::to_bits);
                prop_assert_eq!(legacy_mass, Some(npmi_ref.to_bits()));
                prop_assert_eq!(frozen_mass, Some(npmi_ref.to_bits()));
            }
        }
    }

    /// Scratch-arena reuse and batching change nothing: scoring through the
    /// reused per-thread arena (run-based phrase scores, batched candidate
    /// scoring — including a second pass over buffers the first call
    /// dirtied, and across backends) is bit-identical to the
    /// fresh-allocation reference implementations.
    #[test]
    fn scratch_reuse_and_batching_match_fresh_scoring(spec in world_strategy()) {
        let (kb, _) = build_world(&spec);
        let frozen = FrozenKb::freeze(&kb);
        let tokens = tokenize(&spec.context.join(" "));
        let ctx = DocumentContext::build(&frozen, &tokens).words;
        let entities: Vec<_> = kb.entity_ids().collect();
        let metrics = Metrics::new();
        let obs = SimObs::new(&metrics);
        // One cover scratch reused across every phrase, entity, weighting,
        // and backend below — maximally dirty between calls. The batch path
        // reuses the thread-local arena, which also persists across
        // proptest cases in this thread.
        let mut cover = CoverScratch::new();
        for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
            let reference: Vec<f64> = entities
                .iter()
                .map(|&e| simscore_exhaustive(&frozen, e, &ctx, weighting))
                .collect();
            for pass in 0..2 {
                let batched = simscores_batch(&frozen, &entities, &ctx, weighting, &obs);
                prop_assert_eq!(batched.len(), reference.len());
                for (i, (b, r)) in batched.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        b.to_bits(), r.to_bits(),
                        "batched pass {} entity #{}: {} vs {}", pass, i, b, r
                    );
                }
            }
            let legacy_batched = simscores_batch(&kb, &entities, &ctx, weighting, &obs);
            for (b, r) in legacy_batched.iter().zip(&reference) {
                prop_assert_eq!(b.to_bits(), r.to_bits());
            }
            for &e in &entities {
                for ep in KbView::keyphrases(&kb, e) {
                    let fresh = phrase_score(
                        &kb, e, KbView::phrase_words(&kb, ep.phrase), &ctx, weighting,
                    );
                    let run_frozen =
                        phrase_score_run(&frozen, e, ep.phrase, &ctx, weighting, &mut cover);
                    let run_legacy =
                        phrase_score_run(&kb, e, ep.phrase, &ctx, weighting, &mut cover);
                    prop_assert_eq!(run_frozen.to_bits(), fresh.to_bits());
                    prop_assert_eq!(run_legacy.to_bits(), fresh.to_bits());
                }
            }
        }
    }

    /// Full joint disambiguation through an `Arc<FrozenKb>` service handle
    /// is byte-identical to the borrowed legacy path: same entity choices,
    /// same score bits, same per-candidate score lists, same degradation.
    #[test]
    fn frozen_disambiguation_is_byte_identical(spec in world_strategy()) {
        let (kb, name_pool) = build_world(&spec);
        let frozen = Arc::new(FrozenKb::freeze(&kb));

        // Compose a document: the context words followed by the mention
        // surfaces (single-token by construction), each mention spanning its
        // own token. Always at least one mention, so the joint solver runs.
        let mut words = spec.context.clone();
        let mut mentions = Vec::new();
        for &pick in spec.mention_picks.iter().chain([&0usize]) {
            let surface = &name_pool[pick % name_pool.len()];
            mentions.push(Mention::new(surface.clone(), words.len(), words.len() + 1));
            words.push(surface.clone());
        }
        let tokens = tokenize(&words.join(" "));

        let legacy_aida = Disambiguator::new(&kb, MilneWitten::new(&kb), AidaConfig::full());
        let frozen_aida =
            Disambiguator::new(frozen.clone(), MilneWitten::new(frozen.clone()), AidaConfig::full());
        let legacy = legacy_aida.disambiguate(&tokens, &mentions);
        let frozen_result = frozen_aida.disambiguate(&tokens, &mentions);

        prop_assert_eq!(frozen_result.degradation, legacy.degradation);
        prop_assert_eq!(frozen_result.assignments.len(), legacy.assignments.len());
        for (fa, la) in frozen_result.assignments.iter().zip(&legacy.assignments) {
            prop_assert_eq!(fa.mention_index, la.mention_index);
            prop_assert_eq!(fa.entity, la.entity);
            prop_assert_eq!(fa.score.to_bits(), la.score.to_bits());
            prop_assert_eq!(fa.candidate_scores.len(), la.candidate_scores.len());
            for (&(fe, fs), &(le, ls)) in fa.candidate_scores.iter().zip(&la.candidate_scores) {
                prop_assert_eq!(fe, le);
                prop_assert_eq!(fs.to_bits(), ls.to_bits());
            }
        }
    }
}
