//! The observability layer's determinism contract: a metrics snapshot is a
//! pure function of the workload. Counter totals are u64 atomic additions,
//! which commute, so the snapshot must be bit-identical across thread
//! counts; the registry is keyed by a `BTreeMap`, so snapshot ordering is
//! lexicographic and stable; and under the default null clock the stage
//! histograms are interleaving-independent too. The same snapshot must also
//! come out of both KB backends (legacy row-oriented `KnowledgeBase` and
//! the frozen columnar `FrozenKb`) — storage layout must not move a single
//! counter. Finally, the zero-overhead contract: attaching a registry must
//! not change one bit of annotation output.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Arc, OnceLock};

use aida_ned::aida::{AidaConfig, Disambiguator};
use aida_ned::kb::FrozenKb;
use aida_ned::obs::{Metrics, MetricsSnapshot};
use aida_ned::relatedness::{CachedRelatedness, MilneWitten};
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};
use ned_bench::runner::{run_method_with_threads, Evaluation};
use ned_eval::gold::GoldDoc;
use proptest::prelude::*;

/// One world, built once per test binary: the corpus seeds vary per test,
/// the KB does not need to.
fn world() -> &'static (World, ExportedKb, Arc<FrozenKb>) {
    static WORLD: OnceLock<(World, ExportedKb, Arc<FrozenKb>)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let world =
            World::generate(WorldConfig { entities_per_topic: 100, ..WorldConfig::default() });
        let exported = ExportedKb::build(&world);
        let frozen = Arc::new(FrozenKb::freeze(&exported.kb));
        (world, exported, frozen)
    })
}

fn corpus(seed: u64, docs: usize) -> Vec<GoldDoc> {
    let (world, exported, _) = world();
    conll_like(world, exported, seed, docs).docs
}

/// Runs the full pipeline (cached relatedness + disambiguator, both
/// instrumented) over `docs` through the frozen KB path and returns the
/// outcomes plus the complete metrics snapshot.
fn run_frozen(docs: &[GoldDoc], threads: usize) -> (Evaluation, MetricsSnapshot) {
    let (_, _, frozen) = world();
    let metrics = Metrics::new();
    let cached = CachedRelatedness::with_metrics(MilneWitten::new(frozen.clone()), &metrics);
    let aida =
        Disambiguator::new(frozen.clone(), &cached, AidaConfig::full()).with_metrics(&metrics);
    let eval = run_method_with_threads(&aida, docs, threads).expect("thread pool");
    eval.record_metrics(&metrics);
    (eval, metrics.snapshot())
}

/// Same pipeline over the legacy borrowed `KnowledgeBase` backend.
fn run_legacy(docs: &[GoldDoc], threads: usize) -> (Evaluation, MetricsSnapshot) {
    let (_, exported, _) = world();
    let kb = &exported.kb;
    let metrics = Metrics::new();
    let cached = CachedRelatedness::with_metrics(MilneWitten::new(kb), &metrics);
    let aida = Disambiguator::new(kb, &cached, AidaConfig::full()).with_metrics(&metrics);
    let eval = run_method_with_threads(&aida, docs, threads).expect("thread pool");
    eval.record_metrics(&metrics);
    (eval, metrics.snapshot())
}

/// Bitwise outcome equality (confidences compared by bits).
fn assert_identical(a: &Evaluation, b: &Evaluation) {
    assert_eq!(a.docs.len(), b.docs.len());
    for (da, db) in a.docs.iter().zip(&b.docs) {
        assert_eq!(da.gold, db.gold);
        assert_eq!(da.predicted, db.predicted);
        assert_eq!(da.status, db.status);
        assert_eq!(da.confidence.len(), db.confidence.len());
        for (ca, cb) in da.confidence.iter().zip(&db.confidence) {
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }
}

#[test]
fn snapshot_is_identical_across_thread_counts() {
    // 1/2/4/8 threads: with the per-worker scratch arenas live (PR 6),
    // every thread count must still produce the same outcomes and the same
    // snapshot — arena reuse is invisible to both.
    let docs = corpus(17, 12);
    let (eval1, snap1) = run_frozen(&docs, 1);
    assert!(snap1.counter("aida_docs") > 0, "the run must record work");
    for threads in [2usize, 4, 8] {
        let (eval, snap) = run_frozen(&docs, threads);
        assert_identical(&eval1, &eval);
        assert_eq!(snap1, snap, "metrics snapshot diverged at {threads} threads");
    }
}

#[test]
fn snapshot_is_identical_across_kb_backends() {
    let docs = corpus(23, 10);
    let (frozen_eval, frozen_snap) = run_frozen(&docs, 2);
    let (legacy_eval, legacy_snap) = run_legacy(&docs, 2);
    assert_identical(&frozen_eval, &legacy_eval);
    assert_eq!(
        frozen_snap, legacy_snap,
        "the storage backend moved a counter: legacy vs frozen snapshots differ"
    );
}

#[test]
fn attaching_metrics_does_not_change_outcomes() {
    let (_, _, frozen) = world();
    let docs = corpus(29, 10);

    // Metrics off: the default disabled registry — every counter is a
    // no-op handle and the pipeline must behave identically.
    let cached = CachedRelatedness::new(MilneWitten::new(frozen.clone()));
    let aida = Disambiguator::new(frozen.clone(), &cached, AidaConfig::full());
    let off = run_method_with_threads(&aida, &docs, 1).expect("thread pool");

    let (on, snap) = run_frozen(&docs, 1);
    assert_identical(&off, &on);
    assert!(snap.counter("aida_mentions") > 0);
}

#[test]
fn capped_cache_is_invisible_to_outcomes_and_conserves_lookups() {
    let (_, _, frozen) = world();
    let docs = corpus(31, 10);
    // A cap small enough to bind on this corpus.
    let run_capped = |threads: usize| {
        let metrics = Metrics::new();
        let cached = CachedRelatedness::with_metrics_and_capacity(
            MilneWitten::new(frozen.clone()),
            &metrics,
            500,
        );
        let aida = Disambiguator::new(frozen.clone(), &cached, AidaConfig::full())
            .with_metrics(&metrics);
        let eval = run_method_with_threads(&aida, &docs, threads).expect("thread pool");
        eval.record_metrics(&metrics);
        (eval, metrics.snapshot())
    };

    // Eviction-free determinism: annotation outcomes are byte-identical to
    // the unbounded cache (memoization is an optimization, never a result).
    let (unbounded, _) = run_frozen(&docs, 1);
    let (capped, snap1) = run_capped(1);
    assert_identical(&unbounded, &capped);
    assert!(snap1.counter("relatedness_cache_full") > 0, "cap must bind for this test");

    // For a fixed single-threaded sequence the accounting is exact.
    let (_, snap1_again) = run_capped(1);
    assert_eq!(snap1, snap1_again, "capped single-threaded snapshot must be reproducible");

    let lookups = |s: &MetricsSnapshot| {
        s.counter("relatedness_cache_hits")
            + s.counter("relatedness_cache_misses")
            + s.counter("relatedness_cache_full")
    };
    for threads in [2usize, 4] {
        let (eval, snap) = run_capped(threads);
        assert_identical(&capped, &eval);
        // Under concurrency the hit/miss/full split may shift (which pairs
        // win memoization depends on arrival order) but lookups conserve
        // and every miss still inserts exactly once.
        assert_eq!(lookups(&snap), lookups(&snap1), "lookup total drifted at {threads} threads");
        assert_eq!(
            snap.counter("relatedness_cache_misses"),
            snap.counter("relatedness_cache_inserts")
        );
    }
}

#[test]
fn disabled_registry_snapshot_is_empty() {
    let m = Metrics::default();
    assert!(!m.is_enabled());
    m.counter("anything").add(7);
    let snap = m.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Over arbitrary corpora (and a starved solver on odd seeds, so the
    /// degraded rungs of the ladder are exercised too), one thread and
    /// four threads produce the same snapshot.
    #[test]
    fn snapshot_determinism_over_arbitrary_corpora(
        seed in 0u64..1000,
        n_docs in 2usize..8,
    ) {
        let (_, _, frozen) = world();
        let docs = corpus(seed, n_docs);
        let config = if seed % 2 == 1 {
            AidaConfig { solver_max_iterations: 8, ..AidaConfig::full() }
        } else {
            AidaConfig::full()
        };
        let run = |threads: usize| {
            let metrics = Metrics::new();
            let cached =
                CachedRelatedness::with_metrics(MilneWitten::new(frozen.clone()), &metrics);
            let aida = Disambiguator::new(frozen.clone(), &cached, config.clone())
                .with_metrics(&metrics);
            let eval = run_method_with_threads(&aida, &docs, threads).expect("thread pool");
            eval.record_metrics(&metrics);
            metrics.snapshot()
        };
        let one = run(1);
        let four = run(4);
        prop_assert_eq!(one, four);
    }
}
