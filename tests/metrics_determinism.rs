//! The observability layer's determinism contract: a metrics snapshot is a
//! pure function of the workload. Counter totals are u64 atomic additions,
//! which commute, so the snapshot must be bit-identical across thread
//! counts; the registry is keyed by a `BTreeMap`, so snapshot ordering is
//! lexicographic and stable; and under the default null clock the stage
//! histograms are interleaving-independent too. The same snapshot must also
//! come out of both KB backends (legacy row-oriented `KnowledgeBase` and
//! the frozen columnar `FrozenKb`) — storage layout must not move a single
//! counter. Finally, the zero-overhead contract: attaching a registry must
//! not change one bit of annotation output.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Arc, OnceLock};

use aida_ned::aida::{AidaConfig, Disambiguator};
use aida_ned::kb::FrozenKb;
use aida_ned::obs::{Metrics, MetricsSnapshot};
use aida_ned::relatedness::{CacheConfig, CachedRelatedness, MilneWitten};
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};
use ned_bench::runner::{run_method_with_threads, Evaluation};
use ned_eval::gold::GoldDoc;
use proptest::prelude::*;

/// One world, built once per test binary: the corpus seeds vary per test,
/// the KB does not need to.
fn world() -> &'static (World, ExportedKb, Arc<FrozenKb>) {
    static WORLD: OnceLock<(World, ExportedKb, Arc<FrozenKb>)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let world =
            World::generate(WorldConfig { entities_per_topic: 100, ..WorldConfig::default() });
        let exported = ExportedKb::build(&world);
        let frozen = Arc::new(FrozenKb::freeze(&exported.kb));
        (world, exported, frozen)
    })
}

fn corpus(seed: u64, docs: usize) -> Vec<GoldDoc> {
    let (world, exported, _) = world();
    conll_like(world, exported, seed, docs).docs
}

/// Runs the full pipeline (cached relatedness + disambiguator, both
/// instrumented) over `docs` through the frozen KB path and returns the
/// outcomes plus the complete metrics snapshot.
fn run_frozen(docs: &[GoldDoc], threads: usize) -> (Evaluation, MetricsSnapshot) {
    let (_, _, frozen) = world();
    let metrics = Metrics::new();
    let cached = CachedRelatedness::with_metrics(MilneWitten::new(frozen.clone()), &metrics);
    let aida =
        Disambiguator::new(frozen.clone(), &cached, AidaConfig::full()).with_metrics(&metrics);
    let eval = run_method_with_threads(&aida, docs, threads).expect("thread pool");
    eval.record_metrics(&metrics);
    (eval, metrics.snapshot())
}

/// Same pipeline over the legacy borrowed `KnowledgeBase` backend.
fn run_legacy(docs: &[GoldDoc], threads: usize) -> (Evaluation, MetricsSnapshot) {
    let (_, exported, _) = world();
    let kb = &exported.kb;
    let metrics = Metrics::new();
    let cached = CachedRelatedness::with_metrics(MilneWitten::new(kb), &metrics);
    let aida = Disambiguator::new(kb, &cached, AidaConfig::full()).with_metrics(&metrics);
    let eval = run_method_with_threads(&aida, docs, threads).expect("thread pool");
    eval.record_metrics(&metrics);
    (eval, metrics.snapshot())
}

/// Bitwise outcome equality (confidences compared by bits).
fn assert_identical(a: &Evaluation, b: &Evaluation) {
    assert_eq!(a.docs.len(), b.docs.len());
    for (da, db) in a.docs.iter().zip(&b.docs) {
        assert_eq!(da.gold, db.gold);
        assert_eq!(da.predicted, db.predicted);
        assert_eq!(da.status, db.status);
        assert_eq!(da.confidence.len(), db.confidence.len());
        for (ca, cb) in da.confidence.iter().zip(&db.confidence) {
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }
}

#[test]
fn snapshot_is_identical_across_thread_counts() {
    // 1/2/4/8 threads: with the per-worker scratch arenas live (PR 6),
    // every thread count must still produce the same outcomes and the same
    // snapshot — arena reuse is invisible to both.
    let docs = corpus(17, 12);
    let (eval1, snap1) = run_frozen(&docs, 1);
    assert!(snap1.counter("aida_docs") > 0, "the run must record work");
    for threads in [2usize, 4, 8] {
        let (eval, snap) = run_frozen(&docs, threads);
        assert_identical(&eval1, &eval);
        assert_eq!(snap1, snap, "metrics snapshot diverged at {threads} threads");
    }
}

#[test]
fn snapshot_is_identical_across_kb_backends() {
    let docs = corpus(23, 10);
    let (frozen_eval, frozen_snap) = run_frozen(&docs, 2);
    let (legacy_eval, legacy_snap) = run_legacy(&docs, 2);
    assert_identical(&frozen_eval, &legacy_eval);
    assert_eq!(
        frozen_snap, legacy_snap,
        "the storage backend moved a counter: legacy vs frozen snapshots differ"
    );
}

#[test]
fn attaching_metrics_does_not_change_outcomes() {
    let (_, _, frozen) = world();
    let docs = corpus(29, 10);

    // Metrics off: the default disabled registry — every counter is a
    // no-op handle and the pipeline must behave identically.
    let cached = CachedRelatedness::new(MilneWitten::new(frozen.clone()));
    let aida = Disambiguator::new(frozen.clone(), &cached, AidaConfig::full());
    let off = run_method_with_threads(&aida, &docs, 1).expect("thread pool");

    let (on, snap) = run_frozen(&docs, 1);
    assert_identical(&off, &on);
    assert!(snap.counter("aida_mentions") > 0);
}

/// Stats read directly off the cache after a bounded pipeline run, so
/// conservation can be checked against live occupancy without publishing
/// gauges mid-run.
struct CacheRun {
    eval: Evaluation,
    snap: MetricsSnapshot,
    live_entries: u64,
    bytes: u64,
    bytes_peak: u64,
}

/// Runs the frozen-KB pipeline with a bounded relatedness cache.
fn run_frozen_capped(docs: &[GoldDoc], threads: usize, config: CacheConfig) -> CacheRun {
    let (_, _, frozen) = world();
    let metrics = Metrics::new();
    let cached =
        CachedRelatedness::with_config(MilneWitten::new(frozen.clone()), &metrics, config);
    let aida =
        Disambiguator::new(frozen.clone(), &cached, AidaConfig::full()).with_metrics(&metrics);
    let eval = run_method_with_threads(&aida, docs, threads).expect("thread pool");
    eval.record_metrics(&metrics);
    cached.cache().publish_gauges();
    CacheRun {
        eval,
        snap: metrics.snapshot(),
        live_entries: cached.cache().len() as u64,
        bytes: cached.cache().bytes_used(),
        bytes_peak: cached.cache().bytes_peak(),
    }
}

/// Asserts the cache-counter conservation laws on a snapshot.
fn assert_cache_conservation(snap: &MetricsSnapshot, live_entries: u64) {
    assert_eq!(
        snap.counter("relatedness_cache_misses"),
        snap.counter("relatedness_cache_inserts")
            + snap.counter("relatedness_cache_admit_rejected")
            + snap.counter("relatedness_cache_stale_discards"),
        "misses must split exactly into inserts + admit-rejects + stale discards"
    );
    assert_eq!(
        snap.counter("relatedness_cache_inserts"),
        snap.counter("relatedness_cache_evictions") + live_entries,
        "every insert is either still live or was evicted"
    );
}

/// A cap small enough to bind on a 10-doc corpus (500 entries' worth).
const TIGHT_CAP: u64 = 500 * aida_ned::relatedness::ENTRY_BYTES;

#[test]
fn capped_cache_is_invisible_to_outcomes_and_conserves_lookups() {
    use aida_ned::relatedness::EvictionPolicy;
    let docs = corpus(31, 10);
    let (unbounded, unbounded_snap) = run_frozen(&docs, 1);

    for policy in [EvictionPolicy::Lru, EvictionPolicy::TinyLfuSlru] {
        let config = CacheConfig::bounded(TIGHT_CAP).with_policy(policy);
        let one = run_frozen_capped(&docs, 1, config);

        // Eviction-free determinism: annotation outcomes are byte-identical
        // to the unbounded cache (memoization is an optimization, never a
        // result), even while the cap binds and entries churn.
        assert_identical(&unbounded, &one.eval);
        assert!(
            one.snap.counter("relatedness_cache_evictions")
                + one.snap.counter("relatedness_cache_admit_rejected")
                > 0,
            "cap must bind for this test ({policy:?})"
        );
        assert_cache_conservation(&one.snap, one.live_entries);
        assert!(one.bytes <= TIGHT_CAP, "byte cap violated ({policy:?})");
        assert!(one.bytes_peak <= TIGHT_CAP, "peak bytes exceeded the cap ({policy:?})");

        // For a fixed single-threaded sequence the accounting is exact:
        // repeated runs produce bit-identical snapshots, gauges included.
        let again = run_frozen_capped(&docs, 1, config);
        assert_eq!(
            one.snap, again.snap,
            "capped single-threaded snapshot must be reproducible ({policy:?})"
        );

        let lookups = |s: &MetricsSnapshot| {
            s.counter("relatedness_cache_hits") + s.counter("relatedness_cache_misses")
        };
        assert_eq!(
            lookups(&one.snap),
            lookups(&unbounded_snap),
            "the cap must not change how many lookups the pipeline issues"
        );
        for threads in [2usize, 4] {
            let multi = run_frozen_capped(&docs, threads, config);
            assert_identical(&one.eval, &multi.eval);
            // Under concurrency the hit/miss split may shift (which pairs
            // win memoization depends on arrival order) but the totals
            // conserve and the byte bound holds at every observation point.
            assert_eq!(
                lookups(&multi.snap),
                lookups(&one.snap),
                "lookup total drifted at {threads} threads ({policy:?})"
            );
            assert_cache_conservation(&multi.snap, multi.live_entries);
            assert!(multi.bytes <= TIGHT_CAP);
            assert!(multi.bytes_peak <= TIGHT_CAP);
        }
    }
}

#[test]
fn capped_snapshot_is_identical_across_kb_backends() {
    // The storage backend must not move a cache counter even when the cap
    // binds: the frozen and legacy KBs drive identical access sequences, so
    // evictions, admissions, and gauges land identically.
    let docs = corpus(37, 8);
    let config = CacheConfig::bounded(TIGHT_CAP);

    let frozen = run_frozen_capped(&docs, 1, config);

    let (_, exported, _) = world();
    let kb = &exported.kb;
    let metrics = Metrics::new();
    let cached = CachedRelatedness::with_config(MilneWitten::new(kb), &metrics, config);
    let aida = Disambiguator::new(kb, &cached, AidaConfig::full()).with_metrics(&metrics);
    let eval = run_method_with_threads(&aida, &docs, 1).expect("thread pool");
    eval.record_metrics(&metrics);
    cached.cache().publish_gauges();

    assert_identical(&frozen.eval, &eval);
    assert_eq!(
        frozen.snap,
        metrics.snapshot(),
        "legacy vs frozen bounded snapshots differ: backend layout leaked into eviction"
    );
}

/// Shard-partitioned trace replay: each shard's access sub-sequence is a
/// pure function of the trace, so replaying shards on 1, 2, 4, or 8
/// threads (threads own disjoint shard groups) must produce bit-identical
/// metrics snapshots, contents, and gauges. This is the cross-thread half
/// of the determinism contract: eviction state never leaks across shards.
#[test]
fn bounded_cache_snapshots_are_bit_identical_across_1_2_4_8_threads() {
    use aida_ned::obs::names;
    use aida_ned::relatedness::{
        canonical_key, shard_index, CacheConfig, EvictionPolicy, PairCache, PairKey,
        ENTRY_BYTES, SHARD_COUNT,
    };
    use aida_ned::kb::EntityId;

    // A deterministic trace over a universe wide enough to touch every
    // shard, hot enough to produce hits, and long enough to force
    // evictions under the tight cap. Two phases separated by a generation
    // advance, so PR 9 invalidation composes with eviction.
    let trace: Vec<PairKey> = {
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..6000)
            .map(|_| {
                // Zipf-ish: half the draws from a hot set of 8 entities.
                let hot = step() % 2 == 0;
                let span = if hot { 8 } else { 64 };
                let a = EntityId((step() % span) as u32);
                let b = EntityId((step() % span) as u32);
                canonical_key(a, b)
            })
            .collect()
    };
    let value_of = |key: PairKey, generation: u64| -> f64 {
        f64::from(key.0 .0) * 31.0 + f64::from(key.1 .0) + generation as f64 * 0.5
    };

    let replay = |config: CacheConfig, threads: usize| {
        let metrics = Metrics::new();
        let cache = PairCache::new(config, &metrics);
        // Partition the trace by shard, preserving per-shard order.
        let mut by_shard: Vec<Vec<PairKey>> = vec![Vec::new(); SHARD_COUNT];
        for &key in &trace {
            by_shard[shard_index(key)].push(key);
        }
        for generation in [0u64, 1] {
            if generation > 0 {
                cache.advance_generation(generation);
            }
            std::thread::scope(|s| {
                for t in 0..threads {
                    let shards: Vec<&[PairKey]> = by_shard
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % threads == t)
                        .map(|(_, v)| v.as_slice())
                        .collect();
                    let cache = &cache;
                    s.spawn(move || {
                        for shard_trace in shards {
                            for &key in shard_trace {
                                cache.get_or_insert_with(key.0, key.1, || {
                                    value_of(key, generation)
                                });
                            }
                        }
                    });
                }
            });
        }
        cache.publish_gauges();
        let mut contents = cache.contents();
        contents.sort_unstable_by_key(|entry| entry.0);
        (metrics.snapshot(), contents)
    };

    for policy in [EvictionPolicy::Lru, EvictionPolicy::TinyLfuSlru] {
        for cap in [Some(4 * SHARD_COUNT as u64 * ENTRY_BYTES), Some(0), Some(1 << 24), None] {
            let config = match cap {
                Some(bytes) => CacheConfig::bounded(bytes).with_policy(policy),
                None => CacheConfig::unbounded().with_policy(policy),
            };
            let (snap1, contents1) = replay(config, 1);
            assert_eq!(
                snap1.counter(names::RELATEDNESS_CACHE_HITS)
                    + snap1.counter(names::RELATEDNESS_CACHE_MISSES),
                2 * trace.len() as u64,
                "every replayed lookup is exactly one hit or miss"
            );
            for threads in [2usize, 4, 8] {
                let (snap, contents) = replay(config, threads);
                assert_eq!(
                    snap1, snap,
                    "cache snapshot diverged at {threads} threads ({policy:?}, cap {cap:?})"
                );
                assert_eq!(
                    contents1, contents,
                    "cache contents diverged at {threads} threads ({policy:?}, cap {cap:?})"
                );
            }
        }
    }
}

#[test]
fn disabled_registry_snapshot_is_empty() {
    let m = Metrics::default();
    assert!(!m.is_enabled());
    m.counter("anything").add(7);
    let snap = m.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Over arbitrary corpora (and a starved solver on odd seeds, so the
    /// degraded rungs of the ladder are exercised too), one thread and
    /// four threads produce the same snapshot.
    #[test]
    fn snapshot_determinism_over_arbitrary_corpora(
        seed in 0u64..1000,
        n_docs in 2usize..8,
    ) {
        let (_, _, frozen) = world();
        let docs = corpus(seed, n_docs);
        let config = if seed % 2 == 1 {
            AidaConfig { solver_max_iterations: 8, ..AidaConfig::full() }
        } else {
            AidaConfig::full()
        };
        let run = |threads: usize| {
            let metrics = Metrics::new();
            let cached =
                CachedRelatedness::with_metrics(MilneWitten::new(frozen.clone()), &metrics);
            let aida = Disambiguator::new(frozen.clone(), &cached, config.clone())
                .with_metrics(&metrics);
            let eval = run_method_with_threads(&aida, &docs, threads).expect("thread pool");
            eval.record_metrics(&metrics);
            metrics.snapshot()
        };
        let one = run(1);
        let four = run(4);
        prop_assert_eq!(one, four);
    }
}
