//! Snapshot decode must rebuild the transient (`serde(skip)`) indexes.
//!
//! The by-name entity index and the keyphrase inverted index are derived
//! structures: snapshots never store them, and every load path rebuilds
//! them before handing the KB out. A regression here is silent — lookups
//! return `None` and the kp-index-pruned similarity returns 0.0 instead of
//! the true score — so these tests pin the behaviour on all three load
//! paths: the legacy v2 reader, the v2 freeze-on-load reader, and the v3
//! sectioned reader.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use aida_ned::aida::context::DocumentContext;
use aida_ned::aida::similarity::{simscore, simscore_exhaustive};
use aida_ned::aida::KeywordWeighting;
use aida_ned::kb::snapshot::{
    read_frozen_snapshot, read_snapshot, write_frozen_snapshot, write_snapshot,
};
use aida_ned::kb::{EntityKind, FrozenKb, KbBuilder, KbView, KnowledgeBase};
use aida_ned::text::tokenize;

/// A small world with name ambiguity, keyphrases, and links — enough for
/// both transient indexes to have observable behaviour.
fn sample_kb() -> KnowledgeBase {
    let mut builder = KbBuilder::new();
    let song = builder.add_entity("Kashmir (song)", EntityKind::Work);
    let region = builder.add_entity("Kashmir (region)", EntityKind::Location);
    let band = builder.add_entity("Led Zeppelin", EntityKind::Organization);
    builder.add_name(song, "Kashmir", 30);
    builder.add_name(region, "Kashmir", 70);
    builder.add_name(band, "Led Zeppelin", 40);
    builder.add_name(band, "Zeppelin", 10);
    builder.add_keyphrase(song, "hard rock", 2);
    builder.add_keyphrase(song, "unusual chords", 2);
    builder.add_keyphrase(region, "Himalaya mountains", 4);
    builder.add_keyphrase(band, "hard rock", 5);
    builder.add_keyphrase(band, "english rock band", 3);
    builder.add_link(song, band);
    builder.add_link(band, song);
    builder.add_link(region, song);
    builder.build()
}

/// The context window used for the similarity probes.
fn window_for<K: KbView + ?Sized>(kb: &K) -> Vec<(usize, aida_ned::kb::WordId)> {
    let tokens = tokenize("the hard rock band played unusual chords near the Himalaya mountains");
    DocumentContext::build(kb, &tokens).words
}

/// Asserts the two transient indexes answer correctly on `kb`, comparing
/// similarity scores bitwise against the pre-snapshot `reference`.
fn assert_transients_rebuilt<K: KbView + ?Sized>(kb: &K, reference: &KnowledgeBase, path: &str) {
    // `by_name` (serde(skip)): canonical-name lookup must work immediately.
    for name in ["Kashmir (song)", "Kashmir (region)", "Led Zeppelin"] {
        assert_eq!(
            kb.entity_by_name(name),
            reference.entity_by_name(name),
            "{path}: entity_by_name({name:?}) not rebuilt after load"
        );
    }
    assert_eq!(kb.entity_by_name("No Quarter"), None, "{path}: phantom entity");

    // `kp_index` (serde(skip)): the index-pruned similarity must agree
    // bitwise with the exhaustive scan AND with the pre-snapshot score. An
    // empty rebuilt index would score 0.0 here while exhaustive scores > 0.
    let window = window_for(kb);
    let ref_window = window_for(reference);
    assert_eq!(window, ref_window, "{path}: context window diverged");
    for e in kb.entity_ids() {
        for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
            let loaded = simscore(kb, e, &window, weighting);
            let exhaustive = simscore_exhaustive(kb, e, &window, weighting);
            let expected = simscore(reference, e, &ref_window, weighting);
            assert_eq!(
                loaded.to_bits(),
                exhaustive.to_bits(),
                "{path}: kp-index pruning changed simscore for {e:?}"
            );
            assert_eq!(
                loaded.to_bits(),
                expected.to_bits(),
                "{path}: simscore diverged from pre-snapshot KB for {e:?}"
            );
        }
    }
    // The probe is only meaningful if some entity actually matches.
    let scored = kb
        .entity_ids()
        .filter(|&e| simscore(kb, e, &window, KeywordWeighting::Npmi) > 0.0)
        .count();
    assert!(scored > 0, "{path}: similarity probe matched nothing");
}

#[test]
fn v2_decode_rebuilds_transient_indexes() {
    let kb = sample_kb();
    let mut bytes = Vec::new();
    write_snapshot(&kb, &mut bytes).expect("write v2");

    let loaded = read_snapshot(&bytes[..]).expect("read v2");
    assert_transients_rebuilt(&loaded, &kb, "v2 legacy reader");
}

#[test]
fn v2_freeze_on_load_rebuilds_transient_indexes() {
    let kb = sample_kb();
    let mut bytes = Vec::new();
    write_snapshot(&kb, &mut bytes).expect("write v2");

    let frozen = read_frozen_snapshot(&bytes[..]).expect("freeze-on-load v2");
    assert_transients_rebuilt(&frozen, &kb, "v2 freeze-on-load reader");
}

#[test]
fn v3_decode_rebuilds_transient_indexes() {
    let kb = sample_kb();
    let frozen = FrozenKb::freeze(&kb);
    let mut bytes = Vec::new();
    write_frozen_snapshot(&frozen, &mut bytes).expect("write v3");

    let loaded = read_frozen_snapshot(&bytes[..]).expect("read v3");
    assert_transients_rebuilt(&loaded, &kb, "v3 sectioned reader");
    assert_eq!(loaded.stats(), frozen.stats(), "v3 round-trip changed section stats");
}
