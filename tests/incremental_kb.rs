//! Equivalence suite for the incremental KB (DESIGN.md §15).
//!
//! The copy-on-write overlay is only allowed to exist because it is
//! *indistinguishable* from rebuilding the knowledge base from scratch.
//! This suite pins that contract at the integration level:
//!
//! 1. **Read equivalence** (property-tested): for arbitrary valid mutation
//!    batches, every `KbView` read — entities, dictionary candidates,
//!    priors, links, keyphrases, interners — is bitwise-identical across
//!    four backends: the [`DeltaKb`] overlay, its [`DeltaKb::compact`]
//!    output, a from-scratch legacy [`KnowledgeBase`] built with the same
//!    operations, and that KB frozen.
//! 2. **Disambiguation equivalence**: a WAL-replayed overlay and its
//!    compacted snapshot annotate the quick corpus identically — same
//!    assignments (confidences compared by bits), same ned-obs counters —
//!    across 1/2/4/8 worker threads.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use aida_ned::aida::{AidaConfig, Disambiguator};
use aida_ned::kb::{
    DeltaKb, EntityId, EntityKind, FrozenKb, KbBuilder, KbMutation, KbView, KnowledgeBase, Wal,
};
use aida_ned::obs::Metrics;
use aida_ned::relatedness::MilneWitten;
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};
use ned_bench::runner::{run_method_with_threads, DocOutcome};
use ned_eval::gold::GoldDoc;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Read equivalence over arbitrary mutation batches
// ---------------------------------------------------------------------------

/// The base world the overlay grows over: a handful of entities with
/// names, keyphrases, and links, plus the operation list that built it so
/// the from-scratch reference can replay base + mutations in one pass.
fn base_ops() -> Vec<KbMutation> {
    let mut ops = Vec::new();
    for (i, name) in ["Alpha", "Beta", "Gamma", "Delta Co", "Epsilon FC"].iter().enumerate() {
        ops.push(KbMutation::AddEntity {
            canonical_name: (*name).into(),
            kind: EntityKind::Other,
        });
        ops.push(KbMutation::AddDictionarySurface {
            entity: (*name).into(),
            surface: format!("base surface {i}"),
            count: i as u64 + 2,
        });
        ops.push(KbMutation::AddKeyphrase {
            entity: (*name).into(),
            surface: "rock guitar solo".into(),
            count: i as u64 + 1,
        });
    }
    ops.push(KbMutation::AddLink { src: "Alpha".into(), dst: "Beta".into() });
    ops.push(KbMutation::AddLink { src: "Beta".into(), dst: "Gamma".into() });
    ops.push(KbMutation::AddLink { src: "Gamma".into(), dst: "Alpha".into() });
    ops
}

/// Applies one mutation through the build-time [`KbBuilder`] API — the
/// from-scratch reference path the overlay must agree with. `ids` carries
/// the name→id assignments of every entity added so far.
fn apply_to_builder(b: &mut KbBuilder, ids: &mut HashMap<String, EntityId>, m: &KbMutation) {
    match m {
        KbMutation::AddEntity { canonical_name, kind } => {
            let e = b.add_entity(canonical_name, *kind);
            ids.insert(canonical_name.clone(), e);
        }
        KbMutation::AddLink { src, dst } => {
            b.add_link(ids[src], ids[dst]);
        }
        KbMutation::AddKeyphrase { entity, surface, count } => {
            b.add_keyphrase(ids[entity], surface, *count);
        }
        KbMutation::AddDictionarySurface { entity, surface, count } => {
            b.add_name(ids[entity], surface, *count);
        }
        KbMutation::ReweightKeyphrase { .. } => {
            unreachable!("reweight has no from-scratch builder mirror")
        }
    }
}

/// Decodes a seed tuple into one valid mutation against `known` entity
/// names (base + previously added), registering any new entity it adds.
/// Cycles through every builder-mirrorable variant.
fn decode_mutation(
    op: u8,
    a: u8,
    b: u8,
    count: u8,
    known: &mut Vec<String>,
    fresh: &mut u32,
) -> KbMutation {
    let pick = |i: u8, known: &[String]| known[i as usize % known.len()].clone();
    match op % 4 {
        0 => {
            *fresh += 1;
            let name = format!("Grown {fresh}");
            known.push(name.clone());
            KbMutation::AddEntity { canonical_name: name, kind: EntityKind::Other }
        }
        1 => KbMutation::AddLink { src: pick(a, known), dst: pick(b, known) },
        2 => KbMutation::AddKeyphrase {
            entity: pick(a, known),
            surface: format!("keyphrase topic {}", b % 6),
            count: u64::from(count) + 1,
        },
        _ => KbMutation::AddDictionarySurface {
            entity: pick(a, known),
            surface: format!("surface {}", b % 8),
            count: u64::from(count) + 1,
        },
    }
}

/// Asserts every `KbView` read of `a` and `b` is bitwise-identical.
/// `surfaces` is the probe set for dictionary lookups.
fn assert_reads_identical<K1: KbView, K2: KbView>(a: &K1, b: &K2, surfaces: &[String], tag: &str) {
    assert_eq!(a.entity_count(), b.entity_count(), "{tag}: entity_count");
    assert_eq!(a.word_count(), b.word_count(), "{tag}: word_count");
    assert_eq!(a.phrase_count(), b.phrase_count(), "{tag}: phrase_count");
    assert_eq!(a.dictionary().name_count(), b.dictionary().name_count(), "{tag}: name_count");
    assert_eq!(a.dictionary().pair_count(), b.dictionary().pair_count(), "{tag}: pair_count");
    assert_eq!(a.links().edge_count(), b.links().edge_count(), "{tag}: edge_count");
    for e in a.entity_ids() {
        assert_eq!(a.entity(e), b.entity(e), "{tag}: entity {e:?}");
        assert_eq!(a.keyphrases(e), b.keyphrases(e), "{tag}: keyphrases {e:?}");
        assert_eq!(a.links().inlinks(e), b.links().inlinks(e), "{tag}: inlinks {e:?}");
        assert_eq!(a.links().outlinks(e), b.links().outlinks(e), "{tag}: outlinks {e:?}");
        let name = &a.entity(e).canonical_name;
        assert_eq!(a.entity_by_name(name), Some(e), "{tag}: by-name {name}");
        assert_eq!(b.entity_by_name(name), Some(e), "{tag}: by-name {name}");
        for kp in a.keyphrases(e) {
            assert_eq!(a.phrase_words(kp.phrase), b.phrase_words(kp.phrase), "{tag}: words");
            assert_eq!(
                a.phrase_surface(kp.phrase),
                b.phrase_surface(kp.phrase),
                "{tag}: phrase surface"
            );
        }
    }
    for surface in surfaces {
        let ca = a.candidates(surface);
        let cb = b.candidates(surface);
        assert_eq!(ca, cb, "{tag}: candidates for {surface:?}");
        for c in ca {
            let pa = a.prior(surface, c.entity);
            let pb = b.prior(surface, c.entity);
            assert_eq!(pa.to_bits(), pb.to_bits(), "{tag}: prior for {surface:?}");
        }
    }
    // The merged dictionaries iterate the same keys in the same order.
    let keys_a: Vec<String> = a.dictionary().iter().map(|(k, _)| k.to_string()).collect();
    let keys_b: Vec<String> = b.dictionary().iter().map(|(k, _)| k.to_string()).collect();
    assert_eq!(keys_a, keys_b, "{tag}: dictionary iteration order");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary valid mutation batches, the overlay, its compaction,
    /// the from-scratch legacy KB, and the from-scratch frozen KB are
    /// bitwise-indistinguishable through every `KbView` read.
    #[test]
    fn overlay_reads_match_every_from_scratch_backend(
        seeds in proptest::collection::vec(
            (0u8..255, 0u8..255, 0u8..255, 0u8..255), 1..14),
    ) {
        let base = base_ops();
        let mut known: Vec<String> =
            ["Alpha", "Beta", "Gamma", "Delta Co", "Epsilon FC"]
                .iter().map(|s| s.to_string()).collect();
        let mut fresh = 0u32;
        let muts: Vec<KbMutation> = seeds
            .iter()
            .map(|&(op, a, b, c)| decode_mutation(op, a, b, c, &mut known, &mut fresh))
            .collect();

        // Base KB, frozen; overlay over it.
        let mut builder = KbBuilder::new();
        let mut base_ids = HashMap::new();
        for op in &base {
            apply_to_builder(&mut builder, &mut base_ids, op);
        }
        let frozen_base = Arc::new(FrozenKb::freeze(&builder.build()));
        let delta = DeltaKb::build(Arc::clone(&frozen_base), muts.clone())
            .expect("generated batches are valid");
        let compacted = delta.compact().expect("compaction succeeds");

        // From-scratch reference: base ops + mutations in one build.
        let mut scratch = KbBuilder::new();
        let mut scratch_ids = HashMap::new();
        for op in base.iter().chain(&muts) {
            apply_to_builder(&mut scratch, &mut scratch_ids, op);
        }
        let scratch_kb: KnowledgeBase = scratch.build();
        let scratch_frozen = FrozenKb::freeze(&scratch_kb);

        // Probe surfaces: every surface either side ever added, plus a miss.
        let mut surfaces: Vec<String> = (0..8).map(|i| format!("surface {i}")).collect();
        surfaces.extend((0..5).map(|i| format!("base surface {i}")));
        surfaces.extend(known.iter().cloned());
        surfaces.push("never mentioned anywhere".into());

        assert_reads_identical(&delta, &scratch_kb, &surfaces, "delta vs legacy");
        assert_reads_identical(&delta, &scratch_frozen, &surfaces, "delta vs frozen");
        assert_reads_identical(&delta, &compacted, &surfaces, "delta vs compacted");
        prop_assert_eq!(delta.entity_count(), 5 + fresh as usize);
    }
}

// ---------------------------------------------------------------------------
// Disambiguation equivalence on the quick corpus
// ---------------------------------------------------------------------------

fn corpus_env() -> &'static (ExportedKb, Vec<GoldDoc>) {
    static ENV: OnceLock<(ExportedKb, Vec<GoldDoc>)> = OnceLock::new();
    ENV.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny(77));
        let exported = ExportedKb::build(&world);
        let corpus = conll_like(&world, &exported, 7, 16);
        (exported, corpus.docs)
    })
}

/// A promotion-shaped mutation batch over the exported world: emerging
/// entities whose surfaces are the corpus' real out-of-KB mentions, so the
/// overlay genuinely changes candidate sets (the equivalence is not
/// vacuous), linked into the existing graph.
fn promotion_batch(exported: &ExportedKb, docs: &[GoldDoc]) -> Vec<KbMutation> {
    let kb = &exported.kb;
    let out_of_kb: BTreeSet<String> = docs
        .iter()
        .flat_map(|d| d.mentions.iter())
        .filter(|m| m.label.is_none())
        .map(|m| m.mention.surface.clone())
        .collect();
    let mut muts = Vec::new();
    for (i, surface) in out_of_kb.into_iter().take(6).enumerate() {
        let name = format!("{surface} (emerging)");
        let anchor = kb.entity(EntityId(i as u32)).canonical_name.clone();
        muts.push(KbMutation::AddEntity {
            canonical_name: name.clone(),
            kind: EntityKind::Other,
        });
        muts.push(KbMutation::AddDictionarySurface {
            entity: name.clone(),
            surface,
            count: 3 + i as u64,
        });
        muts.push(KbMutation::AddKeyphrase {
            entity: name.clone(),
            surface: "breaking wire coverage".into(),
            count: 2,
        });
        muts.push(KbMutation::ReweightKeyphrase {
            entity: name.clone(),
            surface: "breaking wire coverage".into(),
            delta: i as i64,
        });
        muts.push(KbMutation::AddLink { src: name.clone(), dst: anchor.clone() });
        muts.push(KbMutation::AddLink { src: anchor, dst: name });
    }
    assert!(!muts.is_empty(), "the corpus must contain out-of-KB mentions");
    muts
}

/// Bitwise outcome equality (confidences compared by bits).
fn outcomes_identical(a: &DocOutcome, b: &DocOutcome) -> bool {
    a.gold == b.gold
        && a.predicted == b.predicted
        && a.status == b.status
        && a.confidence.len() == b.confidence.len()
        && a.confidence.iter().zip(&b.confidence).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// Runs the quick corpus through full AIDA over `kb` with `threads`
/// workers, returning the outcomes and the recorded ned-obs snapshot.
fn annotate_corpus<K: KbView + Clone>(
    kb: K,
    docs: &[GoldDoc],
    threads: usize,
) -> (Vec<DocOutcome>, aida_ned::obs::MetricsSnapshot) {
    let aida = Disambiguator::new(kb.clone(), MilneWitten::new(kb), AidaConfig::full());
    let eval = run_method_with_threads(&aida, docs, threads).expect("thread pool");
    assert_eq!(eval.failed_count(), 0);
    let metrics = Metrics::new();
    eval.record_metrics(&metrics);
    (eval.docs, metrics.snapshot())
}

/// The WAL-replayed overlay and its compacted snapshot annotate the corpus
/// identically — assignments and ned-obs counters — at every thread count.
#[test]
fn wal_replayed_overlay_and_compaction_annotate_identically() {
    let (exported, docs) = corpus_env();
    let frozen = Arc::new(FrozenKb::freeze(&exported.kb));
    let muts = promotion_batch(exported, docs);

    // Round-trip the batch through a real WAL file, as a live promotion
    // pipeline would persist it.
    let dir = std::env::temp_dir().join("ned-incremental-kb-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("equivalence.wal");
    let _ = std::fs::remove_file(&path);
    {
        let (mut wal, _) = Wal::open(&path).unwrap();
        for m in &muts {
            wal.append(m).unwrap();
        }
    }
    let (_, replay) = Wal::open(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(replay.mutations, muts, "the WAL must replay exactly what was appended");

    let delta =
        Arc::new(DeltaKb::build(Arc::clone(&frozen), replay.mutations).expect("batch applies"));
    let compacted = Arc::new(delta.compact().expect("compaction succeeds"));
    assert_eq!(delta.delta_entity_count(), 6);

    // The overlay must actually change the corpus' candidate sets —
    // otherwise this equivalence would hold trivially.
    let base_run = annotate_corpus(Arc::clone(&frozen), docs, 1);
    let (reference, reference_metrics) = annotate_corpus(Arc::clone(&delta), docs, 1);
    assert!(
        base_run.0.iter().zip(&reference).any(|(a, b)| !outcomes_identical(a, b)),
        "promotions should change at least one document's outcome"
    );

    for threads in [1usize, 2, 4, 8] {
        let (delta_docs, delta_metrics) = annotate_corpus(Arc::clone(&delta), docs, threads);
        let (compact_docs, compact_metrics) =
            annotate_corpus(Arc::clone(&compacted), docs, threads);
        assert_eq!(delta_docs.len(), compact_docs.len());
        for (i, (a, b)) in delta_docs.iter().zip(&compact_docs).enumerate() {
            assert!(
                outcomes_identical(a, b),
                "doc {i} diverged between overlay and compaction at {threads} threads"
            );
            assert!(
                outcomes_identical(a, &reference[i]),
                "doc {i} diverged across thread counts ({threads} vs 1)"
            );
        }
        assert_eq!(
            delta_metrics, compact_metrics,
            "ned-obs counters diverged at {threads} threads"
        );
        assert_eq!(delta_metrics, reference_metrics, "counters diverged across thread counts");
    }
}
