//! The parallel engine must be a pure speedup: running the disambiguator
//! over a corpus with any thread count produces byte-identical outcomes,
//! and the keyphrase inverted index prunes the similarity scan without
//! changing a single bit of any score. This must hold on the degraded
//! rungs of the fault-tolerance ladder too: a solver budget that forces
//! fallbacks fires at deterministic algorithmic points, so degraded runs
//! are just as reproducible. The frozen columnar read path is held to the
//! same bar: an `Arc<FrozenKb>` service handle must reproduce the
//! borrowed-KB outcomes bit for bit at every thread count.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use aida_ned::aida::context::DocumentContext;
use aida_ned::aida::similarity::{simscore, simscore_exhaustive};
use aida_ned::aida::{AidaConfig, Disambiguator, KeywordWeighting};
use aida_ned::kb::{EntityKind, FrozenKb, KbBuilder};
use aida_ned::relatedness::{CachedRelatedness, MilneWitten};
use aida_ned::text::tokenize;
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};
use ned_bench::runner::{run_method_with_threads, Evaluation};
use proptest::prelude::*;

/// Outcomes are equal down to the sign bit of every confidence value.
fn assert_identical(a: &Evaluation, b: &Evaluation, threads: usize) {
    assert_eq!(a.docs.len(), b.docs.len());
    for (da, db) in a.docs.iter().zip(&b.docs) {
        assert_eq!(da.gold, db.gold);
        assert_eq!(da.predicted, db.predicted, "labels diverge at {threads} threads");
        assert_eq!(da.status, db.status, "statuses diverge at {threads} threads");
        assert_eq!(da.confidence.len(), db.confidence.len());
        for (ca, cb) in da.confidence.iter().zip(&db.confidence) {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "confidence diverges at {threads} threads: {ca} vs {cb}"
            );
        }
    }
}

#[test]
fn thread_count_does_not_change_outcomes() {
    let world = World::generate(WorldConfig {
        entities_per_topic: 120,
        ..WorldConfig::default()
    });
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 11, 16);
    let kb = &exported.kb;

    let cached = CachedRelatedness::new(MilneWitten::new(kb));
    let method = Disambiguator::new(kb, &cached, AidaConfig::full());

    let baseline = run_method_with_threads(&method, &corpus.docs, 1).expect("thread pool");
    assert!(!baseline.docs.is_empty());
    for threads in [2usize, 4, 8] {
        let parallel =
            run_method_with_threads(&method, &corpus.docs, threads).expect("thread pool");
        assert_identical(&baseline, &parallel, threads);
    }
}

#[test]
fn frozen_kb_path_is_byte_identical_to_legacy_at_every_thread_count() {
    let world = World::generate(WorldConfig {
        entities_per_topic: 120,
        ..WorldConfig::default()
    });
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 11, 16);
    let kb = &exported.kb;

    // The legacy borrowed-KB path is the reference.
    let cached = CachedRelatedness::new(MilneWitten::new(kb));
    let method = Disambiguator::new(kb, &cached, AidaConfig::full());
    let baseline = run_method_with_threads(&method, &corpus.docs, 1).expect("thread pool");
    assert!(!baseline.docs.is_empty());

    // The service configuration: one frozen KB behind a shared Arc handle,
    // fanned out across rayon workers. Same labels, same statuses, same
    // confidence bits, for any thread count.
    let frozen = Arc::new(FrozenKb::freeze(kb));
    let frozen_cached = CachedRelatedness::new(MilneWitten::new(frozen.clone()));
    let frozen_method = Disambiguator::new(frozen.clone(), &frozen_cached, AidaConfig::full());
    for threads in [1usize, 2, 4, 8] {
        let run =
            run_method_with_threads(&frozen_method, &corpus.docs, threads).expect("thread pool");
        assert_identical(&baseline, &run, threads);
    }
}

#[test]
fn degraded_runs_are_deterministic_across_thread_counts() {
    let world = World::generate(WorldConfig {
        entities_per_topic: 120,
        ..WorldConfig::default()
    });
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 11, 16);
    let kb = &exported.kb;

    // A solver budget this tight exhausts on every nontrivial document,
    // forcing the no-coherence fallback. The budget is charged at
    // deterministic algorithmic points, so the degraded outcomes — labels,
    // confidences, and degradation tags — must still be byte-identical
    // for any thread count.
    let config = AidaConfig { solver_max_iterations: 8, ..AidaConfig::full() };
    let cached = CachedRelatedness::new(MilneWitten::new(kb));
    let method = Disambiguator::new(kb, &cached, config);

    let baseline = run_method_with_threads(&method, &corpus.docs, 1).expect("thread pool");
    assert!(!baseline.docs.is_empty());
    assert!(
        baseline.degraded_count() > 0,
        "a tight solver budget must force degraded documents"
    );
    assert_eq!(baseline.failed_count(), 0, "degradation is not failure");
    for threads in [2usize, 4, 8] {
        let parallel =
            run_method_with_threads(&method, &corpus.docs, threads).expect("thread pool");
        assert_identical(&baseline, &parallel, threads);
    }
}

proptest! {
    /// The inverted index only skips keyphrases whose score is exactly
    /// 0.0 (no word in context ⇒ no shortest cover), so the indexed and
    /// exhaustive similarity scores agree bitwise.
    #[test]
    fn indexed_similarity_matches_exhaustive(
        phrases in proptest::collection::vec(
            proptest::collection::vec("[a-e]{1,4}", 1..4),
            1..8,
        ),
        context in proptest::collection::vec("[a-g]{1,4}", 0..20),
    ) {
        let mut builder = KbBuilder::new();
        let mut entities = Vec::new();
        for (i, words) in phrases.iter().enumerate() {
            let e = builder.add_entity(&format!("E{i}"), EntityKind::Other);
            builder.add_name(e, &format!("E{i}"), 1);
            builder.add_keyphrase(e, &words.join(" "), (i % 5 + 1) as u64);
            entities.push(e);
        }
        let kb = builder.build();

        let tokens = tokenize(&context.join(" "));
        let ctx = DocumentContext::build(&kb, &tokens);
        let window = ctx.words.clone();
        for &e in &entities {
            for weighting in [KeywordWeighting::Npmi, KeywordWeighting::Idf] {
                let fast = simscore(&kb, e, &window, weighting);
                let slow = simscore_exhaustive(&kb, e, &window, weighting);
                prop_assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "indexed {} vs exhaustive {}",
                    fast,
                    slow
                );
            }
        }
    }
}
