//! Property-based tests over the core data structures and invariants
//! (proptest), spanning crate boundaries.

use proptest::prelude::*;

use aida_ned::eval::map::{interpolated_map, RankedItem};
use aida_ned::eval::spearman::spearman;
use aida_ned::kb::{EntityKind, KbBuilder};
use aida_ned::relatedness::minhash::{exact_jaccard, MinHasher};
use aida_ned::relatedness::{Kore, MilneWitten, Relatedness};
use aida_ned::text::normalize::{match_key, names_match};
use aida_ned::text::tokenize;

proptest! {
    /// Token spans always slice back to the token text.
    #[test]
    fn tokenizer_spans_roundtrip(input in "[ a-zA-Z0-9,.'()-]{0,120}") {
        let tokens = tokenize(&input);
        for t in &tokens {
            prop_assert!(t.start <= t.end && t.end <= input.len());
            prop_assert_eq!(&input[t.start..t.end], t.text.as_str());
        }
        // Spans are strictly increasing.
        for w in tokens.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Name matching is an equivalence relation on the match key.
    #[test]
    fn name_matching_is_consistent(a in "[a-zA-Z]{1,10}", b in "[a-zA-Z]{1,10}") {
        prop_assert!(names_match(&a, &a));
        prop_assert_eq!(names_match(&a, &b), names_match(&b, &a));
        prop_assert_eq!(names_match(&a, &b), match_key(&a) == match_key(&b));
    }

    /// Min-hash estimates converge toward exact Jaccard.
    #[test]
    fn minhash_estimates_jaccard(
        xs in proptest::collection::hash_set(0u64..500, 1..60),
        ys in proptest::collection::hash_set(0u64..500, 1..60),
    ) {
        let hasher = MinHasher::new(256, 7);
        let sa = hasher.sketch(xs.iter().copied());
        let sb = hasher.sketch(ys.iter().copied());
        let estimate = MinHasher::estimate_jaccard(&sa, &sb);
        let mut va: Vec<u64> = xs.into_iter().collect();
        let mut vb: Vec<u64> = ys.into_iter().collect();
        va.sort_unstable();
        vb.sort_unstable();
        let exact = exact_jaccard(&va, &vb);
        prop_assert!((estimate - exact).abs() < 0.25, "est {estimate} vs exact {exact}");
    }

    /// MAP is bounded and monotone under a perfect ranking.
    #[test]
    fn map_bounds(flags in proptest::collection::vec(any::<bool>(), 1..60)) {
        let n = flags.len();
        let items: Vec<RankedItem> = flags
            .iter()
            .enumerate()
            .map(|(i, &correct)| RankedItem { confidence: 1.0 - i as f64 / n as f64, correct })
            .collect();
        let map = interpolated_map(&items);
        prop_assert!((0.0..=1.0).contains(&map));
        // A perfect ranking of the same labels scores at least as high.
        let mut sorted = items.clone();
        sorted.sort_by_key(|i| !i.correct);
        for (rank, item) in sorted.iter_mut().enumerate() {
            item.confidence = 1.0 - rank as f64 / n as f64;
        }
        prop_assert!(interpolated_map(&sorted) + 1e-9 >= map);
    }

    /// Spearman is bounded and equal to 1 against itself for distinct values.
    #[test]
    fn spearman_bounds(values in proptest::collection::vec(-100.0f64..100.0, 2..40)) {
        let other: Vec<f64> = values.iter().rev().copied().collect();
        let rho = spearman(&values, &other);
        prop_assert!((-1.0..=1.0).contains(&rho), "{rho}");
    }

    /// KB relatedness measures stay within bounds on arbitrary small KBs.
    #[test]
    fn relatedness_invariants(
        phrase_picks in proptest::collection::vec(
            (0usize..6, 0usize..8, 1u64..4), 4..30,
        ),
        links in proptest::collection::vec((0usize..6, 0usize..6), 0..20),
    ) {
        const WORDS: [&str; 8] =
            ["rock", "guitar", "river", "valley", "election", "senate", "album", "tour"];
        let mut b = KbBuilder::new();
        let ids: Vec<_> =
            (0..6).map(|i| b.add_entity(&format!("E{i}"), EntityKind::Other)).collect();
        for (e, w, count) in phrase_picks {
            let phrase = format!("{} {}", WORDS[w], WORDS[(w + 3) % WORDS.len()]);
            b.add_keyphrase(ids[e], &phrase, count);
        }
        for (src, dst) in links {
            b.add_link(ids[src], ids[dst]);
        }
        let kb = b.build();
        let mw = MilneWitten::new(&kb);
        let kore = Kore::new(&kb);
        for &a in &ids {
            for &bb in &ids {
                let m = mw.relatedness(a, bb);
                prop_assert!((0.0..=1.0).contains(&m), "MW {m}");
                prop_assert!((m - mw.relatedness(bb, a)).abs() < 1e-12);
                let k = kore.relatedness(a, bb);
                prop_assert!(k >= 0.0);
                prop_assert!((k - kore.relatedness(bb, a)).abs() < 1e-12);
            }
        }
    }
}
