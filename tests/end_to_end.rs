//! End-to-end integration: synthetic world → knowledge base → corpus →
//! joint disambiguation → evaluation, exercising every layer of the stack
//! together.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use aida_ned::aida::baselines::PriorOnly;
use aida_ned::aida::{AidaConfig, Disambiguator, NedMethod};
use aida_ned::eval::gold::Label;
use aida_ned::eval::{macro_accuracy, micro_accuracy};
use aida_ned::kb::snapshot::{read_snapshot, write_snapshot};
use aida_ned::relatedness::{Kore, MilneWitten, Relatedness};
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};

fn label_pairs<M: NedMethod>(
    method: &M,
    docs: &[aida_ned::eval::gold::GoldDoc],
) -> Vec<(Vec<Label>, Vec<Label>)> {
    docs.iter()
        .map(|d| {
            let labels = method.disambiguate(&d.tokens, &d.bare_mentions()).labels();
            (d.gold_labels(), labels)
        })
        .collect()
}

fn micro(pairs: &[(Vec<Label>, Vec<Label>)]) -> f64 {
    let view: Vec<(&[Label], &[Label])> =
        pairs.iter().map(|(g, p)| (g.as_slice(), p.as_slice())).collect();
    micro_accuracy(view.iter().copied(), false)
}

#[test]
fn full_pipeline_beats_the_prior_baseline() {
    let world = World::generate(WorldConfig::tiny(101));
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 5, 80);
    let docs = &corpus.docs; // all docs: this is a method comparison, not tuning

    let prior = PriorOnly::new(&exported.kb);
    let aida = Disambiguator::new(
        &exported.kb,
        MilneWitten::new(&exported.kb),
        AidaConfig::full(),
    );
    let prior_acc = micro(&label_pairs(&prior, docs));
    let aida_acc = micro(&label_pairs(&aida, docs));
    assert!(
        aida_acc > prior_acc + 0.02,
        "AIDA ({aida_acc:.3}) must clearly beat the prior baseline ({prior_acc:.3})"
    );
    assert!(aida_acc > 0.7, "absolute quality sanity bound, got {aida_acc:.3}");
}

#[test]
fn kore_coherence_works_end_to_end() {
    let world = World::generate(WorldConfig::tiny(102));
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 6, 40);
    let docs = corpus.test();
    let kore = Kore::new(&exported.kb);
    let aida = Disambiguator::new(&exported.kb, &kore, AidaConfig::full());
    let pairs = label_pairs(&aida, docs);
    assert!(micro(&pairs) > 0.65);
    let view: Vec<(&[Label], &[Label])> =
        pairs.iter().map(|(g, p)| (g.as_slice(), p.as_slice())).collect();
    assert!(macro_accuracy(view.iter().copied(), false) > 0.6);
}

#[test]
fn disambiguation_is_deterministic_across_runs() {
    let world = World::generate(WorldConfig::tiny(103));
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 7, 10);
    let aida = Disambiguator::new(
        &exported.kb,
        MilneWitten::new(&exported.kb),
        AidaConfig::full(),
    );
    for doc in &corpus.docs {
        let a = aida.disambiguate(&doc.tokens, &doc.bare_mentions());
        let b = aida.disambiguate(&doc.tokens, &doc.bare_mentions());
        assert_eq!(a, b, "same input must give identical output");
    }
}

#[test]
fn snapshot_roundtrip_preserves_disambiguation_behaviour() {
    let world = World::generate(WorldConfig::tiny(104));
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 8, 6);

    let mut buf = Vec::new();
    write_snapshot(&exported.kb, &mut buf).expect("snapshot written");
    let restored = read_snapshot(buf.as_slice()).expect("snapshot read");
    assert_eq!(restored.entity_count(), exported.kb.entity_count());

    let aida_orig = Disambiguator::new(
        &exported.kb,
        MilneWitten::new(&exported.kb),
        AidaConfig::full(),
    );
    let aida_restored =
        Disambiguator::new(&restored, MilneWitten::new(&restored), AidaConfig::full());
    for doc in &corpus.docs {
        let a = aida_orig.disambiguate(&doc.tokens, &doc.bare_mentions()).labels();
        let b = aida_restored.disambiguate(&doc.tokens, &doc.bare_mentions()).labels();
        assert_eq!(a, b, "restored KB must behave identically");
    }
}

#[test]
fn relatedness_measures_are_symmetric_on_real_kb() {
    let world = World::generate(WorldConfig::tiny(105));
    let exported = ExportedKb::build(&world);
    let kb = &exported.kb;
    let mw = MilneWitten::new(kb);
    let kore = Kore::new(kb);
    let ids: Vec<_> = kb.entity_ids().take(40).collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            assert!((mw.relatedness(a, b) - mw.relatedness(b, a)).abs() < 1e-12);
            assert!((kore.relatedness(a, b) - kore.relatedness(b, a)).abs() < 1e-12);
            assert!(mw.relatedness(a, b) >= 0.0);
            assert!(kore.relatedness(a, b) >= 0.0);
        }
    }
}
