//! Fault-injection harness for the pipeline's robustness guarantees.
//!
//! Injects three fault classes and checks the blast radius of each:
//!
//! 1. **Worker panics** (a faulty relatedness measure, a poisoned
//!    document): the batch completes, exactly the poisoned documents are
//!    reported `Failed`, and every healthy document's outcome is
//!    byte-identical to a fault-free run.
//! 2. **Poisoned float features** (NaN relatedness): no panic anywhere —
//!    `total_cmp` ordering and the degradation ladder keep every document
//!    producing a well-formed outcome.
//! 3. **Corrupt snapshots** (truncation, bit flips, version skew): decode
//!    returns a typed [`SnapshotError`], never panics, never returns
//!    silently-wrong data (property-tested over arbitrary corruptions).
//! 4. **Corrupt WALs** (torn tails, bit flips, duplicated appends): replay
//!    recovers exactly the valid record prefix or fails with a typed
//!    `WalError` — never a panic, never mutations the log did not carry
//!    (property-tested over arbitrary mutation sequences and cut points).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Once, OnceLock};

use aida_ned::aida::{AidaConfig, Disambiguator, NedMethod};
use aida_ned::core::{NedError, SnapshotError};
use aida_ned::kb::snapshot::{
    read_frozen_snapshot, read_snapshot, write_snapshot, FORMAT_VERSION, V2_FORMAT_VERSION,
};
use aida_ned::kb::{EntityId, EntityKind, KbBuilder};
use aida_ned::relatedness::{MilneWitten, Relatedness};
use aida_ned::text::tokenize;
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};
use aida_ned::core::DegradationLevel;
use aida_ned::kb::{KbMutation, Wal};
use aida_ned::obs::{names, Metrics};
use ned_bench::runner::{run_method_with_threads, run_per_doc, DocOutcome, DocStatus};
use ned_eval::gold::GoldDoc;
use proptest::prelude::*;

/// Suppresses panic-hook output for intentionally injected faults while
/// leaving real test panics visible. Installed once per test binary.
fn install_quiet_hook() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload().downcast_ref::<&str>().map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A relatedness measure that misbehaves on demand: panics on one specific
/// call, or returns NaN on every call.
struct FaultyRelatedness<M> {
    inner: M,
    calls: AtomicU64,
    /// Zero-based call index that panics; `u64::MAX` disables.
    panic_at: u64,
    /// When set, every call returns NaN instead of the true score.
    return_nan: bool,
}

impl<M> FaultyRelatedness<M> {
    fn new(inner: M) -> Self {
        FaultyRelatedness { inner, calls: AtomicU64::new(0), panic_at: u64::MAX, return_nan: false }
    }

    fn panicking_at(mut self, n: u64) -> Self {
        self.panic_at = n;
        self
    }

    fn always_nan(mut self) -> Self {
        self.return_nan = true;
        self
    }
}

impl<M: Relatedness> Relatedness for FaultyRelatedness<M> {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if n == self.panic_at {
            panic!("injected fault: relatedness call {n}");
        }
        if self.return_nan {
            return f64::NAN;
        }
        self.inner.relatedness(a, b)
    }
}

fn test_env() -> (ExportedKb, Vec<GoldDoc>) {
    let world = World::generate(WorldConfig { entities_per_topic: 100, ..WorldConfig::default() });
    let exported = ExportedKb::build(&world);
    let corpus = conll_like(&world, &exported, 13, 20);
    (exported, corpus.docs)
}

fn outcome_with<K: ned_kb::KbView, R: Relatedness>(
    aida: &Disambiguator<K, R>,
    doc: &GoldDoc,
) -> DocOutcome {
    let mentions = doc.bare_mentions();
    let result = aida.disambiguate(&doc.tokens, &mentions);
    DocOutcome {
        gold: doc.gold_labels(),
        predicted: result.labels(),
        confidence: result.assignments.iter().map(|a| a.normalized_score()).collect(),
        status: DocStatus::from_degradation(result.degradation),
    }
}

/// Bitwise outcome equality (confidences compared by bits).
fn outcomes_identical(a: &DocOutcome, b: &DocOutcome) -> bool {
    a.gold == b.gold
        && a.predicted == b.predicted
        && a.status == b.status
        && a.confidence.len() == b.confidence.len()
        && a.confidence.iter().zip(&b.confidence).all(|(p, q)| p.to_bits() == q.to_bits())
}

// ---------------------------------------------------------------------------
// Worker-panic isolation
// ---------------------------------------------------------------------------

#[test]
fn ten_percent_poisoned_corpus_completes_with_exact_failure_reporting() {
    install_quiet_hook();
    let (exported, docs) = test_env();
    let kb = &exported.kb;
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());

    // Poison every 10th document — 10% of the corpus.
    let poisoned: HashSet<String> = docs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 10 == 0)
        .map(|(_, d)| d.id.clone())
        .collect();
    assert!(!poisoned.is_empty());

    let fault_free = run_per_doc(&docs, |d| outcome_with(&aida, d));
    let faulty = run_per_doc(&docs, |d| {
        if poisoned.contains(&d.id) {
            panic!("injected fault: poisoned document {}", d.id);
        }
        outcome_with(&aida, d)
    });

    // The batch completed: every document occupies its slot.
    assert_eq!(faulty.docs.len(), docs.len());
    // Exactly the poisoned documents are Failed, with the cause captured.
    assert_eq!(faulty.failed_count(), poisoned.len());
    for (doc, outcome) in docs.iter().zip(&faulty.docs) {
        if poisoned.contains(&doc.id) {
            match &outcome.status {
                DocStatus::Failed { reason } => {
                    assert!(
                        reason.contains(&doc.id),
                        "failure reason should name the document: {reason}"
                    );
                }
                other => panic!("poisoned doc {} not Failed: {other:?}", doc.id),
            }
            assert!(outcome.predicted.iter().all(Option::is_none));
        } else {
            // Healthy documents are byte-identical to the fault-free run.
            let reference = &fault_free.docs
                [docs.iter().position(|d| d.id == doc.id).expect("doc present")];
            assert!(
                outcomes_identical(outcome, reference),
                "healthy doc {} diverged under faults",
                doc.id
            );
        }
    }
}

#[test]
fn poisoned_run_metrics_match_status_accounting() {
    install_quiet_hook();
    let (exported, docs) = test_env();
    let kb = &exported.kb;
    // A starved solver pushes every healthy document down the degradation
    // ladder; the poisoned ones fail outright — so the run exercises every
    // `doc_status_*` counter at once.
    let config = AidaConfig { solver_max_iterations: 1, ..AidaConfig::full() };
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), config);

    let poisoned: HashSet<String> = docs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 10 == 0)
        .map(|(_, d)| d.id.clone())
        .collect();
    let eval = run_per_doc(&docs, |d| {
        if poisoned.contains(&d.id) {
            panic!("injected fault: poisoned document {}", d.id);
        }
        outcome_with(&aida, d)
    });

    let metrics = Metrics::new();
    eval.record_metrics(&metrics);
    let snapshot = metrics.snapshot();

    // Expected per-level counts derived straight from the per-document
    // statuses — the counters must be their exact aggregate.
    let mut ok = 0u64;
    let mut degraded = 0u64;
    let mut failed = 0u64;
    let (mut joint, mut no_coherence, mut prior_only) = (0u64, 0u64, 0u64);
    for doc in &eval.docs {
        match &doc.status {
            DocStatus::Ok => {
                ok += 1;
                joint += 1;
            }
            DocStatus::Degraded(level) => {
                degraded += 1;
                match level {
                    DegradationLevel::None => joint += 1,
                    DegradationLevel::NoCoherence => no_coherence += 1,
                    DegradationLevel::PriorOnly => prior_only += 1,
                }
            }
            DocStatus::Failed { .. } => failed += 1,
        }
    }
    assert!(failed > 0, "the poison must fail at least one document");
    assert!(degraded > 0, "the starved solver must degrade at least one document");
    assert_eq!(failed, poisoned.len() as u64);
    assert_eq!(failed, eval.failed_count() as u64);
    assert_eq!(degraded, eval.degraded_count() as u64);
    assert_eq!(ok + degraded + failed, docs.len() as u64);

    assert_eq!(snapshot.counter(names::DOC_STATUS_OK), ok);
    assert_eq!(snapshot.counter(names::DOC_STATUS_DEGRADED), degraded);
    assert_eq!(snapshot.counter(names::DOC_STATUS_FAILED), failed);
    assert_eq!(snapshot.counter(names::DEGRADATION_LEVEL_JOINT), joint);
    assert_eq!(snapshot.counter(names::DEGRADATION_LEVEL_NO_COHERENCE), no_coherence);
    assert_eq!(snapshot.counter(names::DEGRADATION_LEVEL_PRIOR_ONLY), prior_only);
    // Failed documents carry no degradation level, so the levels partition
    // exactly the non-failed population.
    assert_eq!(joint + no_coherence + prior_only + failed, docs.len() as u64);
}

#[test]
fn nth_relatedness_call_panic_fails_exactly_one_document() {
    install_quiet_hook();
    let (exported, docs) = test_env();
    let kb = &exported.kb;

    // Count the total relatedness traffic of a clean single-threaded run.
    let counting = FaultyRelatedness::new(MilneWitten::new(kb));
    let aida = Disambiguator::new(kb, &counting, AidaConfig::full());
    let clean = run_method_with_threads(&aida, &docs, 1).expect("thread pool");
    let total_calls = counting.calls.load(Ordering::Relaxed);
    assert!(total_calls > 0, "the corpus must exercise the coherence feature");
    assert_eq!(clean.failed_count(), 0);

    // Re-run with a panic planted in the middle of that traffic. Single
    // threaded, so the call order — and thus the victim document — is
    // deterministic.
    let faulty = FaultyRelatedness::new(MilneWitten::new(kb)).panicking_at(total_calls / 2);
    let aida_faulty = Disambiguator::new(kb, &faulty, AidaConfig::full());
    let poisoned = run_method_with_threads(&aida_faulty, &docs, 1).expect("thread pool");

    assert_eq!(poisoned.docs.len(), docs.len());
    assert_eq!(poisoned.failed_count(), 1, "one planted panic fails one document");
    let mut diverged = 0;
    for (a, b) in clean.docs.iter().zip(&poisoned.docs) {
        if b.status.is_failed() {
            diverged += 1;
            assert!(matches!(&b.status, DocStatus::Failed { reason } if reason.contains("injected fault")));
        } else {
            assert!(outcomes_identical(a, b), "non-victim document diverged");
        }
    }
    assert_eq!(diverged, 1);
}

#[test]
fn nan_relatedness_never_panics_the_batch() {
    install_quiet_hook();
    let (exported, docs) = test_env();
    let kb = &exported.kb;
    let nan_measure = FaultyRelatedness::new(MilneWitten::new(kb)).always_nan();
    let aida = Disambiguator::new(kb, &nan_measure, AidaConfig::full());
    let eval = run_method_with_threads(&aida, &docs, 2).expect("thread pool");
    assert_eq!(eval.docs.len(), docs.len());
    assert_eq!(eval.failed_count(), 0, "NaN scores must degrade, not crash");
    for outcome in &eval.docs {
        assert_eq!(outcome.predicted.len(), outcome.gold.len());
    }
}

// ---------------------------------------------------------------------------
// Bounded relatedness cache under faults
// ---------------------------------------------------------------------------

#[test]
fn poisoned_docs_keep_bounded_cache_conservation_exact() {
    use aida_ned::relatedness::{CacheConfig, CachedRelatedness, EvictionPolicy, ENTRY_BYTES};
    install_quiet_hook();
    let (exported, docs) = test_env();
    let kb = &exported.kb;

    let cap = 400 * ENTRY_BYTES; // tight enough to bind on this corpus
    for policy in [EvictionPolicy::Lru, EvictionPolicy::TinyLfuSlru] {
        // Measure the clean single-threaded miss traffic through the same
        // bounded cache, so the planted panic lands mid-stream inside a
        // cache miss's compute (only misses reach the inner measure).
        let counting = FaultyRelatedness::new(MilneWitten::new(kb));
        let clean_cache = CachedRelatedness::with_config(
            &counting,
            &Metrics::new(),
            CacheConfig::bounded(cap).with_policy(policy),
        );
        let aida = Disambiguator::new(kb, &clean_cache, AidaConfig::full());
        let _ = run_method_with_threads(&aida, &docs, 1).expect("thread pool");
        let inner_calls = counting.calls.load(Ordering::Relaxed);
        assert!(inner_calls > 0, "the corpus must miss the cache ({policy:?})");

        for threads in [1usize, 2] {
            let metrics = Metrics::new();
            let faulty =
                FaultyRelatedness::new(MilneWitten::new(kb)).panicking_at(inner_calls / 2);
            let cached = CachedRelatedness::with_config(
                faulty,
                &metrics,
                CacheConfig::bounded(cap).with_policy(policy),
            );
            let aida = Disambiguator::new(kb, &cached, AidaConfig::full());
            let eval = run_method_with_threads(&aida, &docs, threads).expect("thread pool");
            assert_eq!(eval.docs.len(), docs.len());
            assert!(eval.failed_count() >= 1, "the planted panic must fail a document");

            // The aborted lookup (whose compute panicked) counts nothing;
            // every completed lookup is exactly one hit or miss — so the
            // conservation laws stay exact even mid-poisoning.
            let cache = cached.cache();
            assert_eq!(
                cache.misses(),
                cache.inserts() + cache.admit_rejected() + cache.stale_discards(),
                "misses must split exactly ({policy:?}, {threads} threads)"
            );
            assert_eq!(
                cache.inserts(),
                cache.evictions() + cache.len() as u64,
                "inserts must equal evictions + live entries ({policy:?}, {threads} threads)"
            );
            assert!(cache.bytes_used() <= cap);
            assert!(cache.bytes_peak() <= cap);
            assert!(
                cache.evictions() + cache.admit_rejected() > 0,
                "the cap must bind during the poisoned run ({policy:?})"
            );
            // Cross-check: the counters in the registry agree with the
            // cache's own accessors (one source of truth, two views).
            let snap = metrics.snapshot();
            assert_eq!(snap.counter(names::RELATEDNESS_CACHE_HITS), cache.hits());
            assert_eq!(snap.counter(names::RELATEDNESS_CACHE_MISSES), cache.misses());
            assert_eq!(snap.counter(names::RELATEDNESS_CACHE_EVICTIONS), cache.evictions());
        }
    }
}

#[test]
fn panicking_compute_neither_poisons_a_shard_nor_counts_a_lookup() {
    use aida_ned::relatedness::{CacheConfig, PairCache};
    install_quiet_hook();
    let metrics = Metrics::new();
    let cache = PairCache::new(CacheConfig::bounded(64 * 96), &metrics);
    let (a, b) = (EntityId(3), EntityId(7));

    // The compute callback runs with no shard lock held, so its panic
    // unwinds cleanly: no poison, and the aborted lookup counts nothing.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cache.get_or_insert_with(a, b, || panic!("injected fault: compute blew up"))
    }));
    assert!(result.is_err(), "the panic must propagate to the caller");
    assert_eq!(cache.hits(), 0);
    assert_eq!(cache.misses(), 0, "an aborted lookup is neither a hit nor a miss");
    assert!(cache.is_empty());

    // The same key still works afterwards — the shard lock survived.
    let (v, events) = cache.get_or_insert_with(a, b, || 0.625);
    assert_eq!(v.to_bits(), 0.625f64.to_bits());
    assert!(events.inserted);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits() + cache.misses(), 1, "only the completed lookup is counted");
}

// ---------------------------------------------------------------------------
// Empty and mention-free documents
// ---------------------------------------------------------------------------

#[test]
fn empty_and_whitespace_documents_yield_wellformed_empty_results() {
    let (exported, _) = test_env();
    let kb = &exported.kb;
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::full());

    // Completely empty document.
    let result = aida.disambiguate(&[], &[]);
    assert!(result.assignments.is_empty());
    assert!(!result.degradation.is_degraded());

    // Whitespace-only text tokenizes to nothing; zero mentions.
    let tokens = tokenize("   \n\t   \r\n  ");
    let result = aida.disambiguate(&tokens, &[]);
    assert!(result.assignments.is_empty());

    // Text with tokens but no mentions short-circuits the same way.
    let tokens = tokenize("Plain filler text with no annotated spans at all.");
    let result = aida.disambiguate(&tokens, &[]);
    assert!(result.assignments.is_empty());
    assert_eq!(aida.features(&tokens, &[]), Vec::<Vec<_>>::new());

    // And a zero-mention document flows through the batch runner.
    let doc = GoldDoc::new("empty", tokenize("   "), vec![], 0);
    let eval = run_per_doc(&[doc], |d| outcome_with(&aida, d));
    assert_eq!(eval.docs.len(), 1);
    assert_eq!(eval.docs[0].status, DocStatus::Ok);
    assert!(eval.docs[0].predicted.is_empty());
    assert_eq!(eval.failed_count(), 0);
}

// ---------------------------------------------------------------------------
// Snapshot corruption
// ---------------------------------------------------------------------------

fn snapshot_fixture() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut b = KbBuilder::new();
        let alpha = b.add_entity("Alpha", EntityKind::Person);
        let beta = b.add_entity("Beta", EntityKind::Location);
        b.add_name(alpha, "Alpha", 3);
        b.add_name(beta, "Beta", 5);
        b.add_keyphrase(alpha, "rock guitar", 2);
        b.add_keyphrase(beta, "river delta", 4);
        b.add_link(alpha, beta);
        let kb = b.build();
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).expect("snapshot written");
        buf
    })
}

#[test]
fn truncated_snapshot_fixture_yields_typed_errors() {
    let bytes = snapshot_fixture();
    // Every strict prefix must fail with a structured snapshot error.
    for cut in [0, 1, 5, 6, 7, 23, 24, bytes.len() / 2, bytes.len() - 1] {
        let err = read_snapshot(&bytes[..cut]).expect_err("prefix must not decode");
        assert!(
            matches!(
                &err,
                NedError::Snapshot(
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                )
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
}

#[test]
fn bitflipped_snapshot_fixture_yields_typed_errors() {
    let bytes = snapshot_fixture();
    // Flip one bit in every header byte and in a spread of body bytes.
    let positions: Vec<usize> =
        (0..24).chain((24..bytes.len()).step_by(7.max(bytes.len() / 64))).collect();
    for pos in positions {
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 0x10;
        let err = read_snapshot(corrupt.as_slice())
            .err()
            .unwrap_or_else(|| panic!("bit flip at byte {pos} must not decode"));
        assert!(matches!(err, NedError::Snapshot(_)), "flip at {pos}: got {err}");
    }
}

#[test]
fn version_skew_is_reported_as_unsupported() {
    let bytes = snapshot_fixture();

    // A future format version. The legacy reader only speaks v2; the
    // version-dispatching frozen reader speaks v2 and v3.
    let mut future = bytes.to_vec();
    future[6..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match read_snapshot(future.as_slice()) {
        Err(NedError::Snapshot(SnapshotError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, V2_FORMAT_VERSION);
        }
        other => panic!("expected version skew, got {other:?}"),
    }
    match read_frozen_snapshot(future.as_slice()) {
        Err(NedError::Snapshot(SnapshotError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected version skew from frozen reader, got {other:?}"),
    }

    // The legacy v1 layout started with the ASCII tag "AIDAKB01"; its "01"
    // bytes land in the version field and must decode as a *version*
    // mismatch, not a magic mismatch, so operators see the real cause.
    let mut legacy = b"AIDAKB01".to_vec();
    legacy.extend_from_slice(&bytes[8..]);
    match read_snapshot(legacy.as_slice()) {
        Err(NedError::Snapshot(SnapshotError::UnsupportedVersion { .. })) => {}
        other => panic!("legacy prefix should be version skew, got {other:?}"),
    }
}

proptest! {
    /// Any corrupted byte stream — truncated, bit-flipped, or arbitrary
    /// garbage — yields a typed error: no panic, no silent garbage KB.
    #[test]
    fn corrupted_snapshots_always_error_never_panic(
        cut in 0usize..10_000,
        flip_pos in 0usize..10_000,
        flip_bit in 0u32..8,
    ) {
        let bytes = snapshot_fixture();

        // Strict truncation always errors.
        let cut = cut % bytes.len();
        prop_assert!(read_snapshot(&bytes[..cut]).is_err());

        // A single bit flip anywhere always errors: the header fields are
        // all load-bearing and the body is covered by the checksum.
        let pos = flip_pos % bytes.len();
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 1u8 << flip_bit;
        prop_assert!(read_snapshot(corrupt.as_slice()).is_err());
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        data in proptest::collection::vec(0u8..255, 0..512),
    ) {
        // Random data cannot carry a valid magic + checksum; decode must
        // reject it (and in particular must not panic).
        prop_assert!(read_snapshot(data.as_slice()).is_err());
    }
}

// ---------------------------------------------------------------------------
// WAL corruption (incremental KB, DESIGN.md §15)
// ---------------------------------------------------------------------------

use aida_ned::kb::wal::replay as wal_replay;

/// Deterministically maps four seed bytes to a mutation, cycling through
/// every `KbMutation` variant so the codec sees all frame shapes.
fn synth_mutation(op: u8, a: u8, b: u8, count: u8) -> KbMutation {
    let name = |i: u8| format!("Entity {i}");
    let surface = |i: u8| format!("surface {i} of note");
    match op % 5 {
        0 => KbMutation::AddEntity { canonical_name: name(a), kind: EntityKind::Other },
        1 => KbMutation::AddLink { src: name(a), dst: name(b) },
        2 => KbMutation::AddKeyphrase {
            entity: name(a),
            surface: surface(b),
            count: u64::from(count) + 1,
        },
        3 => KbMutation::ReweightKeyphrase {
            entity: name(a),
            surface: surface(b),
            delta: i64::from(count) - 128,
        },
        _ => KbMutation::AddDictionarySurface {
            entity: name(a),
            surface: surface(b),
            count: u64::from(count) + 1,
        },
    }
}

/// Writes `muts` through a real [`Wal`] and returns the on-disk bytes.
/// Replay never checks applicability, so the mutations need not name
/// entities of any particular KB.
fn wal_bytes_for(muts: &[KbMutation], file_tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join("ned-fault-injection-wal");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(file_tag);
    let _ = std::fs::remove_file(&path);
    {
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.records, 0);
        for m in muts {
            wal.append(m).unwrap();
        }
    }
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

/// A fixed mutation sequence covering every variant, with its WAL bytes.
fn wal_fixture() -> &'static (Vec<u8>, Vec<KbMutation>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<KbMutation>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let muts: Vec<KbMutation> =
            (0..10u8).map(|i| synth_mutation(i, i % 4, (i + 1) % 4, i * 17)).collect();
        let bytes = wal_bytes_for(&muts, "fixture.wal");
        (bytes, muts)
    })
}

/// Byte ranges of the individual record frames in a clean WAL stream.
fn wal_frame_ranges(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    const HEADER_LEN: usize = 8;
    const FRAME_PRELUDE_LEN: usize = 17;
    let mut ranges = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bytes[pos + 1..pos + 9]);
        let frame_len = FRAME_PRELUDE_LEN + u64::from_le_bytes(len_bytes) as usize;
        ranges.push(pos..pos + frame_len);
        pos += frame_len;
    }
    assert_eq!(pos, bytes.len(), "fixture stream must parse cleanly");
    ranges
}

proptest! {
    /// Truncating a valid WAL anywhere — mid-header, mid-prelude, mid-body,
    /// or on a frame boundary — always recovers: replay returns exactly the
    /// complete-record prefix and accounts for every byte it discarded.
    #[test]
    fn truncated_wal_recovers_exactly_the_complete_prefix(cut in 0usize..100_000) {
        let (bytes, muts) = wal_fixture();
        let cut = cut % (bytes.len() + 1);
        let replayed = wal_replay(&bytes[..cut]).expect("truncation is recoverable");
        let k = replayed.mutations.len();
        prop_assert!(k <= muts.len());
        prop_assert_eq!(&replayed.mutations, &muts[..k]);
        prop_assert_eq!(replayed.valid_len + replayed.torn_tail_bytes, cut as u64);
        prop_assert_eq!(replayed.next_seq(), k as u64);
        // Full-length "truncation" is the clean log itself.
        if cut == bytes.len() {
            prop_assert_eq!(k, muts.len());
            prop_assert!(!replayed.recovered_torn_tail());
        }
    }

    /// A single bit flip anywhere in a WAL either fails with a typed
    /// `WalError` or recovers a strictly shorter valid prefix (a flipped
    /// frame length can mimic a torn tail) — it never panics and never
    /// produces mutations the log did not carry.
    #[test]
    fn bit_flipped_wal_errors_or_recovers_a_prefix(
        pos in 0usize..100_000,
        bit in 0u32..8,
    ) {
        let (bytes, muts) = wal_fixture();
        let pos = pos % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1u8 << bit;
        match wal_replay(&corrupt) {
            Err(NedError::Wal(_)) => {}
            Err(other) => return Err(TestCaseError::fail(format!(
                "flip at {pos} bit {bit}: non-WAL error {other}"
            ))),
            Ok(replayed) => {
                let k = replayed.mutations.len();
                prop_assert!(
                    k < muts.len(),
                    "flip at {} bit {} went unnoticed", pos, bit
                );
                prop_assert_eq!(&replayed.mutations, &muts[..k]);
            }
        }
    }

    /// Crash-duplicated appends — any schedule of re-appending an already
    /// written frame suffix — replay idempotently: the mutation sequence is
    /// unchanged and every duplicate is counted, not applied.
    #[test]
    fn duplicate_append_schedules_replay_idempotently(
        schedule in proptest::collection::vec(0u8..255, 10..11),
    ) {
        let (bytes, muts) = wal_fixture();
        let frames = wal_frame_ranges(bytes);
        prop_assert_eq!(frames.len(), muts.len());
        let mut stream = bytes[..8].to_vec();
        let mut expected_duplicates = 0u64;
        for (i, frame) in frames.iter().enumerate() {
            stream.extend_from_slice(&bytes[frame.clone()]);
            // After the i-th append, maybe re-append frames j..=i, as a
            // crash between write and acknowledgement would.
            let choice = schedule[i] as usize;
            if choice.is_multiple_of(3) {
                let j = choice % (i + 1);
                for dup in &frames[j..=i] {
                    stream.extend_from_slice(&bytes[dup.clone()]);
                    expected_duplicates += 1;
                }
            }
        }
        let replayed = wal_replay(&stream).expect("duplicates are recoverable");
        prop_assert_eq!(&replayed.mutations, muts);
        prop_assert_eq!(replayed.duplicates_skipped, expected_duplicates);
        prop_assert_eq!(replayed.records, muts.len() as u64 + expected_duplicates);
        prop_assert!(!replayed.recovered_torn_tail());
    }

    /// End-to-end crash recovery over arbitrary mutation sequences: write
    /// through a real `Wal`, tear the file at an arbitrary point, reopen.
    /// The recovered log is exactly a prefix of what was written, the file
    /// is repaired in place, and appends continue from the recovered
    /// sequence number.
    #[test]
    fn torn_wal_reopens_to_a_prefix_and_accepts_new_appends(
        seeds in proptest::collection::vec(
            (0u8..255, 0u8..255, 0u8..255, 0u8..255), 1..9),
        cut in 0usize..100_000,
    ) {
        let muts: Vec<KbMutation> =
            seeds.iter().map(|&(op, a, b, c)| synth_mutation(op, a, b, c)).collect();
        let clean = wal_bytes_for(&muts, "torn-reopen.wal");
        prop_assert_eq!(&wal_replay(&clean).unwrap().mutations, &muts);

        let cut = cut % (clean.len() + 1);
        let dir = std::env::temp_dir().join("ned-fault-injection-wal");
        let path = dir.join("torn-reopen.wal");
        std::fs::write(&path, &clean[..cut]).unwrap();
        let k = {
            let (mut wal, replayed) = Wal::open(&path).expect("torn log reopens");
            let k = replayed.mutations.len();
            prop_assert!(k <= muts.len());
            prop_assert_eq!(&replayed.mutations, &muts[..k]);
            prop_assert_eq!(wal.next_seq(), k as u64);
            // The repaired log accepts the remainder of the sequence.
            wal.append(&muts[k.min(muts.len() - 1)]).unwrap();
            k
        };
        let repaired = std::fs::read(&path).unwrap();
        let replayed = wal_replay(&repaired).expect("repaired log is clean");
        prop_assert!(!replayed.recovered_torn_tail());
        prop_assert_eq!(replayed.mutations.len(), k + 1);
        prop_assert_eq!(&replayed.mutations[..k], &muts[..k]);
        let _ = std::fs::remove_file(&path);
    }
}
