//! Golden-metrics suite: exact counter values for a fixed seed, pinned.
//!
//! Everything in the pipeline is deterministic — synthetic world, corpus,
//! candidate generation, similarity, solver — so the counters recorded by
//! the observability layer are exact constants for a given seed, not
//! ranges. These tests pin them. A diff here means the pipeline's work
//! profile changed (more candidates scanned, different solver trajectory,
//! a counter moved), which is exactly the class of silent behaviour change
//! the observability layer exists to catch.
//!
//! To regenerate after an intended change:
//!   cargo test --test metrics_golden -- --ignored dump_golden --nocapture

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Arc, OnceLock};

use aida_ned::aida::{AidaConfig, Disambiguator};
use aida_ned::kb::FrozenKb;
use aida_ned::obs::{Metrics, MetricsSnapshot};
use aida_ned::relatedness::{CachedRelatedness, MilneWitten};
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::corpus::conll_like;
use aida_ned::wikigen::{ExportedKb, World};
use ned_bench::runner::run_method_with_threads;
use ned_eval::gold::GoldDoc;

/// The fixed environment under test: tiny world (seed 7), CoNLL-like
/// corpus (seed 13, 8 documents), frozen columnar KB — the service path.
fn env() -> &'static (Arc<FrozenKb>, Vec<GoldDoc>) {
    static ENV: OnceLock<(Arc<FrozenKb>, Vec<GoldDoc>)> = OnceLock::new();
    ENV.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny(7));
        let exported = ExportedKb::build(&world);
        let frozen = Arc::new(FrozenKb::freeze(&exported.kb));
        let corpus = conll_like(&world, &exported, 13, 8);
        (frozen, corpus.docs)
    })
}

/// Runs the instrumented pipeline over `docs` and returns the snapshot.
fn run(docs: &[GoldDoc]) -> MetricsSnapshot {
    let (frozen, _) = env();
    let metrics = Metrics::new();
    let cached = CachedRelatedness::with_metrics(MilneWitten::new(frozen.clone()), &metrics);
    let aida =
        Disambiguator::new(frozen.clone(), &cached, AidaConfig::full()).with_metrics(&metrics);
    let eval = run_method_with_threads(&aida, docs, 2).expect("thread pool");
    eval.record_metrics(&metrics);
    metrics.snapshot()
}

/// The counters a golden table pins (the work profile of a run).
const PINNED: &[&str] = &[
    "aida_docs",
    "aida_mentions",
    "aida_candidates_considered",
    "aida_similarity_evaluations",
    "aida_sim_phrases_matched",
    "aida_mentions_fixed",
    "aida_graph_entity_nodes",
    "aida_coherence_edges_built",
    "aida_solver_invocations",
    "aida_solver_iterations",
    "aida_solver_taboo_hits",
    "relatedness_cache_hits",
    "relatedness_cache_misses",
    "doc_status_ok",
];

fn assert_golden(snapshot: &MetricsSnapshot, golden: &[(&str, u64)], what: &str) {
    for &(name, expected) in golden {
        assert_eq!(
            snapshot.counter(name),
            expected,
            "{what}: counter {name} drifted from its pinned value"
        );
    }
}

/// Prints paste-ready golden tables. Run with `--ignored --nocapture`.
#[test]
#[ignore = "regeneration helper, not a check"]
fn dump_golden() {
    let (_, docs) = env();
    let whole = run(docs);
    println!("// whole corpus:");
    for name in PINNED {
        println!("    (\"{name}\", {}),", whole.counter(name));
    }
    for (i, doc) in docs.iter().take(3).enumerate() {
        let snap = run(std::slice::from_ref(doc));
        println!("// doc {i}:");
        for name in PINNED {
            println!("    (\"{name}\", {}),", snap.counter(name));
        }
    }
}

#[test]
fn whole_corpus_counters_are_pinned() {
    let (_, docs) = env();
    let snapshot = run(docs);
    let golden: &[(&str, u64)] = &[
        ("aida_docs", 8),
        ("aida_mentions", 161),
        ("aida_candidates_considered", 312),
        ("aida_similarity_evaluations", 312),
        ("aida_sim_phrases_matched", 2696),
        ("aida_mentions_fixed", 146),
        ("aida_graph_entity_nodes", 104),
        ("aida_coherence_edges_built", 124),
        ("aida_solver_invocations", 8),
        ("aida_solver_iterations", 36),
        ("aida_solver_taboo_hits", 295),
        ("relatedness_cache_hits", 5515),
        ("relatedness_cache_misses", 1360),
        ("doc_status_ok", 8),
    ];
    assert_golden(&snapshot, golden, "whole corpus");

    // Structural invariants that must hold in any snapshot of this run.
    assert_eq!(
        snapshot.counter("aida_similarity_evaluations"),
        snapshot.counter("aida_sim_plan_entity_side")
            + snapshot.counter("aida_sim_plan_word_side"),
        "every similarity evaluation picks exactly one plan"
    );
    assert_eq!(
        snapshot.counter("relatedness_cache_misses"),
        snapshot.counter("relatedness_cache_inserts"),
        "deterministic cache accounting: every miss inserts exactly once"
    );
    assert_eq!(
        snapshot.counter("doc_status_ok")
            + snapshot.counter("doc_status_degraded")
            + snapshot.counter("doc_status_failed"),
        snapshot.counter("aida_docs"),
        "statuses partition the corpus"
    );
}

#[test]
fn per_document_counters_are_pinned() {
    let (_, docs) = env();
    let golden_docs: &[&[(&str, u64)]] = &[
        &[
            ("aida_docs", 1),
            ("aida_mentions", 16),
            ("aida_candidates_considered", 23),
            ("aida_similarity_evaluations", 23),
            ("aida_sim_phrases_matched", 165),
            ("aida_mentions_fixed", 13),
            ("aida_graph_entity_nodes", 14),
            ("aida_coherence_edges_built", 10),
            ("aida_solver_invocations", 1),
            ("aida_solver_iterations", 5),
            ("aida_solver_taboo_hits", 39),
            ("relatedness_cache_hits", 224),
            ("relatedness_cache_misses", 142),
            ("doc_status_ok", 1),
        ],
        &[
            ("aida_docs", 1),
            ("aida_mentions", 21),
            ("aida_candidates_considered", 44),
            ("aida_similarity_evaluations", 44),
            ("aida_sim_phrases_matched", 483),
            ("aida_mentions_fixed", 20),
            ("aida_graph_entity_nodes", 11),
            ("aida_coherence_edges_built", 20),
            ("aida_solver_invocations", 1),
            ("aida_solver_iterations", 3),
            ("aida_solver_taboo_hits", 19),
            ("relatedness_cache_hits", 729),
            ("relatedness_cache_misses", 205),
            ("doc_status_ok", 1),
        ],
        &[
            ("aida_docs", 1),
            ("aida_mentions", 20),
            ("aida_candidates_considered", 46),
            ("aida_similarity_evaluations", 46),
            ("aida_sim_phrases_matched", 294),
            ("aida_mentions_fixed", 20),
            ("aida_graph_entity_nodes", 12),
            ("aida_coherence_edges_built", 12),
            ("aida_solver_invocations", 1),
            ("aida_solver_iterations", 2),
            ("aida_solver_taboo_hits", 12),
            ("relatedness_cache_hits", 695),
            ("relatedness_cache_misses", 245),
            ("doc_status_ok", 1),
        ],
    ];
    for (i, golden) in golden_docs.iter().enumerate() {
        let snapshot = run(std::slice::from_ref(&docs[i]));
        assert_golden(&snapshot, golden, &format!("doc {i}"));
    }
}

#[test]
fn per_document_counters_sum_to_the_corpus_totals() {
    let (_, docs) = env();
    let whole = run(docs);
    for name in PINNED {
        let sum: u64 =
            docs.iter().map(|d| run(std::slice::from_ref(d)).counter(name)).sum();
        // Every pinned counter is per-document additive except the
        // relatedness cache, whose hit/miss split depends on what earlier
        // documents already populated.
        if name.starts_with("relatedness_cache") {
            continue;
        }
        assert_eq!(sum, whole.counter(name), "counter {name} is not per-document additive");
    }
}
