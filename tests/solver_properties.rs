//! Property-based tests of the greedy dense-subgraph solver (Algorithm 1)
//! over randomly generated mention–entity graphs.

use proptest::prelude::*;

use aida_ned::aida::algorithm::{solve, SolverConfig};
use aida_ned::aida::graph::MentionEntityGraph;
use aida_ned::relatedness::Relatedness;
use aida_ned::kb::EntityId;

/// Deterministic pseudo-relatedness derived from the entity ids.
struct HashRel;

impl Relatedness for HashRel {
    fn name(&self) -> &'static str {
        "hash"
    }
    fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        if a == b {
            return 1.0;
        }
        let x = u64::from(a.0.min(b.0)) << 32 | u64::from(a.0.max(b.0));
        let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 33;
        (h % 1000) as f64 / 1000.0
    }
}

/// Strategy: per-mention candidate lists as (entity id, weight) pairs.
fn candidate_lists() -> impl Strategy<Value = Vec<Vec<(EntityId, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..40, 0.0f64..1.0), 0..6),
        1..8,
    )
    .prop_map(|mentions| {
        mentions
            .into_iter()
            .map(|cands| {
                let mut list: Vec<(EntityId, f64)> =
                    cands.into_iter().map(|(e, w)| (EntityId(e), w)).collect();
                // Deduplicate entities within one mention (the dictionary
                // never lists a candidate twice).
                list.sort_by_key(|&(e, _)| e);
                list.dedup_by_key(|&mut (e, _)| e);
                list
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver always returns exactly one decision per mention, maps
    /// every mention with candidates, and only picks actual candidates.
    #[test]
    fn solver_output_is_a_valid_assignment(local in candidate_lists()) {
        let graph = MentionEntityGraph::build(&local, &HashRel, 0.4, true);
        let solution = solve(&graph, &SolverConfig::default());
        prop_assert_eq!(solution.len(), local.len());
        for (mi, decision) in solution.iter().enumerate() {
            match decision {
                None => prop_assert!(local[mi].is_empty(), "mention {mi} left unmapped"),
                Some(ni) => {
                    let entity = graph.nodes[*ni].entity;
                    prop_assert!(
                        local[mi].iter().any(|&(e, _)| e == entity),
                        "mention {mi} mapped to a non-candidate"
                    );
                }
            }
        }
    }

    /// Determinism: the same graph solves to the same assignment.
    #[test]
    fn solver_is_deterministic(local in candidate_lists()) {
        let graph = MentionEntityGraph::build(&local, &HashRel, 0.4, true);
        let a = solve(&graph, &SolverConfig::default());
        let b = solve(&graph, &SolverConfig::default());
        prop_assert_eq!(a, b);
    }

    /// Aggressive pruning never drops a mention's last candidate: even with
    /// factor 1 every mention with candidates gets an entity.
    #[test]
    fn pruning_preserves_coverage(local in candidate_lists()) {
        let graph = MentionEntityGraph::build(&local, &HashRel, 0.5, true);
        let config = SolverConfig { graph_size_factor: 1, ..SolverConfig::default() };
        let solution = solve(&graph, &config);
        for (mi, decision) in solution.iter().enumerate() {
            prop_assert_eq!(decision.is_none(), local[mi].is_empty());
        }
    }

    /// The exhaustive and local-search post-processing agree on the final
    /// assignment's total weight for small graphs (local search is run by
    /// forcing `exhaustive_limit` to zero).
    #[test]
    fn local_search_matches_exhaustive_weight(local in candidate_lists()) {
        let total = |solution: &[Option<usize>], graph: &MentionEntityGraph| -> f64 {
            let mut t = 0.0;
            let mut chosen: Vec<usize> = Vec::new();
            for (mi, d) in solution.iter().enumerate() {
                if let Some(ni) = d {
                    for &(m, w) in &graph.nodes[*ni].mention_edges {
                        if m == mi {
                            t += w;
                        }
                    }
                    chosen.push(*ni);
                }
            }
            chosen.sort_unstable();
            chosen.dedup();
            for (i, &a) in chosen.iter().enumerate() {
                for &(b, w) in &graph.nodes[a].entity_edges {
                    if chosen[i + 1..].binary_search(&b).is_ok() {
                        t += w;
                    }
                }
            }
            t
        };
        let graph = MentionEntityGraph::build(&local, &HashRel, 0.4, true);
        let exhaustive = solve(&graph, &SolverConfig::default());
        let ls = solve(
            &graph,
            &SolverConfig { exhaustive_limit: 0, local_search_iterations: 200, ..Default::default() },
        );
        let we = total(&exhaustive, &graph);
        let wl = total(&ls, &graph);
        // Local search is a heuristic: it may fall short, but never exceeds
        // the exhaustive optimum. Hill climbing can get stuck on adversarial
        // random graphs, so the lower bound is a loose smoke check (real
        // inputs run exhaustively up to `exhaustive_limit`).
        prop_assert!(wl <= we + 1e-9, "local search beat exhaustive: {wl} > {we}");
        prop_assert!(wl >= we * 0.6 - 1e-9, "local search too weak: {wl} vs {we}");
    }
}
