//! Integration of the Chapter-5 pipeline: news stream → confidence →
//! EE model harvesting → discovery → KB enrichment.

use aida_ned::aida::{AidaConfig, Disambiguator};
use aida_ned::emerging::confidence::{ConfAssessor, ConfidenceMethod};
use aida_ned::emerging::discover::{EeConfig, EeDiscovery};
use aida_ned::emerging::ee_model::{EeModelConfig, NameModels};
use aida_ned::emerging::enrich::{enrich_kb, harvest_confident};
use aida_ned::eval::ee_measures::ee_averages;
use aida_ned::eval::gold::{GoldDoc, Label};
use aida_ned::relatedness::MilneWitten;
use aida_ned::wikigen::config::WorldConfig;
use aida_ned::wikigen::news::{generate_stream, NewsConfig};
use aida_ned::wikigen::{ExportedKb, World};

fn setup() -> (World, ExportedKb, Vec<GoldDoc>, Vec<GoldDoc>) {
    let world = World::generate(WorldConfig {
        n_topics: 4,
        entities_per_topic: 120,
        ..WorldConfig::tiny(201)
    });
    let exported = ExportedKb::build(&world);
    let stream = generate_stream(
        &world,
        &exported,
        3,
        &NewsConfig { n_days: 4, docs_per_day: 30, emerging_prob: 0.15, burst_days: 2 },
    );
    let harvest: Vec<GoldDoc> = stream.days(0, 3).cloned().collect();
    // Drop trivially-out-of-KB mentions, as §5.7.2 does.
    let test: Vec<GoldDoc> = stream
        .day(3)
        .map(|d| {
            let mentions = d
                .mentions
                .iter()
                .filter(|lm| !exported.kb.candidates(&lm.mention.surface).is_empty())
                .cloned()
                .collect();
            GoldDoc::new(d.id.clone(), d.tokens.clone(), mentions, d.day)
        })
        .collect();
    (world, exported, harvest, test)
}

#[test]
fn ee_discovery_finds_emerging_entities() {
    let (_world, exported, harvest, test) = setup();
    let kb = &exported.kb;
    let refs: Vec<&GoldDoc> = harvest.iter().collect();
    let models = NameModels::build(kb, &refs, 2, &EeModelConfig::default());
    assert!(!models.is_empty(), "the stream must yield EE models");

    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::sim_only());
    let discovery = EeDiscovery::new(
        &aida,
        &models,
        EeConfig {
            gamma: 0.25,
            assessor: ConfAssessor::new(ConfidenceMethod::Normalized),
            ..EeConfig::default()
        },
    );

    let mut pairs: Vec<(Vec<Label>, Vec<Label>)> = Vec::new();
    for doc in &test {
        let (labels, _) = discovery.discover(&doc.tokens, &doc.bare_mentions());
        pairs.push((doc.gold_labels(), labels));
    }
    let view: Vec<(&[Label], &[Label])> =
        pairs.iter().map(|(g, p)| (g.as_slice(), p.as_slice())).collect();
    let ee = ee_averages(view.iter().copied());
    assert!(ee.recall > 0.3, "EE recall too low: {ee:?}");
    assert!(ee.precision > 0.3, "EE precision too low: {ee:?}");
    assert!(ee.f1 > 0.3, "EE F1 too low: {ee:?}");
}

#[test]
fn confidence_separates_correct_from_wrong() {
    let (_world, exported, _harvest, test) = setup();
    let kb = &exported.kb;
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::r_prior_sim());
    let assessor = ConfAssessor::new(ConfidenceMethod::Conf);
    let mut correct_conf = Vec::new();
    let mut wrong_conf = Vec::new();
    for doc in test.iter().take(15) {
        let mentions = doc.bare_mentions();
        let features = aida.features(&doc.tokens, &mentions);
        let result = aida.disambiguate_features(&features);
        let conf = assessor.assess(&aida, &features, &result);
        for (i, lm) in doc.mentions.iter().enumerate() {
            let Some(gold) = lm.label else { continue };
            if result.assignments[i].entity == Some(gold) {
                correct_conf.push(conf[i]);
            } else {
                wrong_conf.push(conf[i]);
            }
        }
    }
    assert!(!correct_conf.is_empty() && !wrong_conf.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&correct_conf) > mean(&wrong_conf) + 0.05,
        "confidence must separate correct ({:.3}) from wrong ({:.3})",
        mean(&correct_conf),
        mean(&wrong_conf)
    );
}

#[test]
fn kb_enrichment_adds_recent_phrases() {
    let (world, exported, harvest, _test) = setup();
    let kb = &exported.kb;
    let aida = Disambiguator::new(kb, MilneWitten::new(kb), AidaConfig::r_prior_sim());
    let assessor = ConfAssessor::new(ConfidenceMethod::Normalized);
    let refs: Vec<&GoldDoc> = harvest.iter().collect();
    let report = harvest_confident(&aida, &assessor, &refs, 0.95);
    assert!(report.confident_mentions > 0, "the stream must yield confident mentions");
    assert!(report.phrase_observations() > 0);

    let enriched = enrich_kb(kb, &report);
    assert_eq!(enriched.entity_count(), kb.entity_count());
    // At least one entity gained phrases.
    let gained = kb
        .entity_ids()
        .filter(|&e| enriched.keyphrases(e).len() > kb.keyphrases(e).len())
        .count();
    assert!(gained > 0, "enrichment must extend some entity");
    let _ = world;
}
