//! Robustness contract of the threaded annotation service: admission
//! control at the queue bound, graceful drain with exactly-once responses,
//! per-request panic isolation, and sustained-overload behavior — all with
//! typed errors and exact accounting.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use aida_ned::core::{DegradationLevel, ServeError, ShedReason};
use aida_ned::obs::Metrics;
use aida_ned::serve::{
    AnnotateHandler, DeadlinePlan, FnHandler, HandlerOutput, ServeRequest, Service,
    ServiceConfig,
};

/// A handler that parks on a gate channel, signalling `started` first, so
/// tests can deterministically hold a worker mid-request.
fn gated_handler(
    started: mpsc::Sender<u64>,
    gate: mpsc::Receiver<()>,
) -> impl AnnotateHandler {
    let gate = Mutex::new(gate);
    let started = Mutex::new(started);
    FnHandler::new(move |req: &ServeRequest, _plan: &DeadlinePlan| {
        let _ = started.lock().expect("started lock").send(req.id.0);
        let _ = gate.lock().expect("gate lock").recv();
        HandlerOutput { annotations: Vec::new(), degradation: DegradationLevel::None }
    })
}

#[test]
fn full_queue_rejects_with_a_typed_error_and_exact_accounting() {
    let (started_tx, started_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    let metrics = Metrics::new();
    let service = Service::start(
        gated_handler(started_tx, gate_rx),
        ServiceConfig { workers: 1, queue_capacity: 2, ..ServiceConfig::default() },
        &metrics,
    )
    .expect("service starts");

    // Occupy the single worker, then wait until it has actually dequeued.
    let t0 = service.submit(ServeRequest::new(0, "in flight")).expect("accepted");
    assert_eq!(started_rx.recv_timeout(Duration::from_secs(10)), Ok(0));

    // The queue (capacity 2) now fills with exactly two more requests…
    let t1 = service.submit(ServeRequest::new(1, "queued")).expect("accepted");
    let t2 = service.submit(ServeRequest::new(2, "queued")).expect("accepted");

    // …and the next submission is rejected at admission with a typed,
    // capacity-carrying error — not a panic, not a block, not a timeout.
    let err = service.submit(ServeRequest::new(3, "one too many")).expect_err("queue is full");
    assert_eq!(err, ServeError::QueueFull { capacity: 2 });
    assert!(err.is_rejection());

    // Release the gate: everything accepted completes normally.
    for _ in 0..3 {
        gate_tx.send(()).expect("gate open");
    }
    for ticket in [t0, t1, t2] {
        let response = ticket.wait();
        assert!(response.is_ok(), "accepted request failed: {:?}", response.result);
    }

    let stats = service.shutdown();
    stats.check_conservation().expect("books balance");
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.completed_ok, 3);
    assert_eq!(stats.queue_depth_peak, 2, "the queue never grew past its capacity");

    // The same story in the ned-obs snapshot.
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("serve_submitted"), 4);
    assert_eq!(snap.counter("serve_rejected_queue_full"), 1);
    assert_eq!(snap.counter("serve_completed_ok"), 3);
}

#[test]
fn graceful_drain_answers_in_flight_and_sheds_queued_exactly_once() {
    let (started_tx, started_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    let metrics = Metrics::new();
    let service = Service::start(
        gated_handler(started_tx, gate_rx),
        ServiceConfig { workers: 1, queue_capacity: 8, ..ServiceConfig::default() },
        &metrics,
    )
    .expect("service starts");

    // One request in flight (held at the gate), four more queued behind it.
    let mut tickets = vec![service.submit(ServeRequest::new(0, "in flight")).expect("accepted")];
    assert_eq!(started_rx.recv_timeout(Duration::from_secs(10)), Ok(0));
    for i in 1..5u64 {
        tickets.push(service.submit(ServeRequest::new(i, "queued")).expect("accepted"));
    }

    // Two-phase shutdown, so the ordering is deterministic: stop admission
    // first (non-blocking, worker still parked inside request 0), then
    // release the gate and wait for the drain.
    service.stop_admission();
    assert!(service.is_draining());
    let late = service.submit(ServeRequest::new(9, "too late")).expect_err("admission stopped");
    assert_eq!(late, ServeError::ShuttingDown);
    gate_tx.send(()).expect("gate open");
    let stats = service.shutdown();
    stats.check_conservation().expect("books balance");

    // The in-flight request finished; every queued request got a typed
    // `Shedded(Drain)` answer. Exactly one response each — `Ticket::wait`
    // consumes the ticket, and the counts partition the five requests.
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    assert!(responses[0].is_ok(), "in-flight request finishes during drain");
    let mut shed = 0;
    for response in &responses[1..] {
        assert_eq!(
            response.result.as_ref().expect_err("queued requests are shed during drain"),
            &ServeError::Shedded { reason: ShedReason::Drain }
        );
        shed += 1;
    }
    assert_eq!(shed, 4);
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.rejected_shutdown, 1);
    assert_eq!(stats.completed_ok, 1);
    assert_eq!(stats.shed_drain, 4);
    assert_eq!(stats.failed(), 4, "sheds are a flavor of failed");
    assert_eq!(metrics.snapshot().counter("serve_shed_drain"), 4);
}

#[test]
fn poisoned_document_is_isolated_to_its_request() {
    let poison = FnHandler::new(|req: &ServeRequest, _plan: &DeadlinePlan| {
        assert!(req.text != "poison", "toxic document"); // deliberate panic
        HandlerOutput { annotations: Vec::new(), degradation: DegradationLevel::None }
    });
    let metrics = Metrics::new();
    let service = Service::start(
        poison,
        ServiceConfig { workers: 1, queue_capacity: 8, ..ServiceConfig::default() },
        &metrics,
    )
    .expect("service starts");

    // Quiet the panic hook while the deliberate panic fires.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let before = service.submit_wait(ServeRequest::new(0, "fine"));
    let poisoned = service.submit_wait(ServeRequest::new(1, "poison"));
    // The same worker must survive and keep answering.
    let after = service.submit_wait(ServeRequest::new(2, "fine again"));
    std::panic::set_hook(hook);

    assert!(before.is_ok());
    assert!(after.is_ok(), "worker survives a poisoned document");
    match &poisoned.result {
        Err(ServeError::WorkerPanic { message }) => {
            assert!(message.contains("toxic document"), "panic payload surfaces: {message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    let stats = service.shutdown();
    stats.check_conservation().expect("books balance");
    assert_eq!(stats.completed_ok, 2);
    assert_eq!(stats.panicked, 1);
    assert_eq!(metrics.snapshot().counter("serve_failed"), 1);
}

#[test]
fn sustained_overload_stays_bounded_with_typed_rejections_and_no_panics() {
    let (started_tx, started_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    let metrics = Metrics::new();
    let capacity = 4usize;
    let service = Service::start(
        gated_handler(started_tx, gate_rx),
        ServiceConfig { workers: 1, queue_capacity: capacity, ..ServiceConfig::default() },
        &metrics,
    )
    .expect("service starts");

    // Far more than 2× capacity offered while the worker is held: the
    // service accepts the in-flight request plus exactly `capacity` queued,
    // rejects the rest with typed errors, and never blocks the submitter.
    let mut tickets = vec![service.submit(ServeRequest::new(0, "held")).expect("accepted")];
    assert_eq!(started_rx.recv_timeout(Duration::from_secs(10)), Ok(0));
    let mut rejected = 0u64;
    for i in 1..=(4 * capacity as u64) {
        match service.submit(ServeRequest::new(i, "burst")) {
            Ok(t) => tickets.push(t),
            Err(e) => {
                assert_eq!(e, ServeError::QueueFull { capacity });
                rejected += 1;
            }
        }
    }
    assert_eq!(tickets.len(), 1 + capacity, "accepts up to queue capacity");
    assert_eq!(rejected, 4 * capacity as u64 - capacity as u64, "sheds the excess");

    // Everything accepted still completes once the congestion clears.
    for _ in 0..tickets.len() {
        gate_tx.send(()).expect("gate open");
    }
    for ticket in tickets {
        assert!(ticket.wait().is_ok());
    }
    let stats = service.shutdown();
    stats.check_conservation().expect("books balance");
    assert_eq!(stats.accepted, 1 + capacity as u64);
    assert_eq!(stats.rejected(), rejected);
    assert_eq!(stats.panicked, 0);
    assert_eq!(stats.queue_depth_peak, capacity as u64, "bounded memory: depth ≤ capacity");
}
