//! Model-based verification of the bounded relatedness cache.
//!
//! The determinism contract (DESIGN.md §16) says eviction order is a pure
//! function of the access sequence: per-shard policy state only, recency
//! by logical access index, victims totally ordered by `(last-access
//! index, key)`. This harness replays generated access traces (lookups
//! plus generation advances) against a single-threaded reference oracle —
//! an independent, obvious reimplementation over `BTreeMap`s — and
//! asserts the hit/miss/evict event sequence, the returned values, the
//! final contents, and the counter totals are byte-identical, under plain
//! LRU and the frequency-admission policies, including the zero-cap and
//! cap-larger-than-universe edges.
//!
//! The generation-swap hammer at the bottom drives concurrent lookups
//! against a swapper thread and asserts no stale-generation value is ever
//! served after `advance_generation` returns, and that the conservation
//! laws (`lookups == hits + misses`, `misses == inserts + admit_rejected
//! + stale_discards`, `evictions + live_entries == inserts`,
//! `bytes <= cap`) hold at every observation point.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};

use aida_ned::kb::EntityId;
use aida_ned::obs::Metrics;
use aida_ned::relatedness::cache::policy::{protected_cap_for, sketch_window_for};
use aida_ned::relatedness::{
    canonical_key, shard_index, CacheConfig, EvictionPolicy, LookupEvents, PairCache, PairKey,
    ENTRY_BYTES, SHARD_COUNT,
};
use proptest::prelude::*;

/// The score both sides compute for a pair under a generation — any pure
/// injective-enough function works; the oracle and the real cache must
/// simply agree.
fn value_of(key: PairKey, generation: u64) -> f64 {
    f64::from(key.0 .0) * 1009.0 + f64::from(key.1 .0) + generation as f64 * 0.125
}

/// Mirrors `shard_byte_caps` + `entries_under`: the documented
/// whole-entry quantization of the byte cap (earlier shards absorb the
/// remainder entries).
fn shard_entry_caps(max_bytes: u64) -> Vec<u64> {
    let n = SHARD_COUNT as u64;
    let entries = max_bytes / ENTRY_BYTES;
    (0..n).map(|i| entries / n + u64::from(i < entries % n)).collect()
}

/// One oracle shard: entries plus recency/segment/frequency books, all in
/// BTree collections so the model itself is transparently ordered.
#[derive(Default)]
struct OracleShard {
    entries: BTreeMap<PairKey, f64>,
    last: BTreeMap<PairKey, u64>,
    protected: BTreeSet<PairKey>,
    counts: BTreeMap<PairKey, u32>,
    samples: u64,
    clock: u64,
}

impl OracleShard {
    /// The coldest key under the `(last-access index, key)` total order,
    /// restricted by `filter`.
    fn coldest(&self, filter: impl Fn(&PairKey) -> bool) -> Option<PairKey> {
        self.last.iter().filter(|(k, _)| filter(k)).map(|(&k, &at)| (at, k)).min().map(|(_, k)| k)
    }
}

/// Single-threaded reference cache: same configuration surface as
/// `PairCache`, deliberately naive implementation.
struct Oracle {
    shards: Vec<OracleShard>,
    entry_caps: Vec<u64>,
    policy: EvictionPolicy,
    bounded: bool,
    generation: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    admit_rejected: u64,
}

impl Oracle {
    fn new(config: CacheConfig) -> Self {
        let (bounded, entry_caps) = match config.max_bytes {
            None => (false, vec![u64::MAX; SHARD_COUNT]),
            Some(total) => (true, shard_entry_caps(total)),
        };
        Oracle {
            shards: (0..SHARD_COUNT).map(|_| OracleShard::default()).collect(),
            entry_caps,
            policy: config.policy,
            bounded,
            generation: 0,
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
            admit_rejected: 0,
        }
    }

    fn gated(&self) -> bool {
        self.policy == EvictionPolicy::TinyLfuSlru
    }

    fn segmented(&self) -> bool {
        matches!(self.policy, EvictionPolicy::SegmentedLru | EvictionPolicy::TinyLfuSlru)
    }

    fn record_frequency(&mut self, shard: usize, entry_cap: u64, key: PairKey) {
        let window = sketch_window_for(entry_cap);
        let sh = &mut self.shards[shard];
        let slot = sh.counts.entry(key).or_insert(0);
        *slot = slot.saturating_add(1);
        sh.samples += 1;
        if sh.samples >= window {
            sh.counts = sh
                .counts
                .iter()
                .filter_map(|(&k, &c)| {
                    let halved = c / 2;
                    (halved > 0).then_some((k, halved))
                })
                .collect();
            sh.samples = 0;
        }
    }

    fn note_hit(&mut self, shard: usize, entry_cap: u64, key: PairKey) {
        if self.gated() {
            self.record_frequency(shard, entry_cap, key);
        }
        let segmented = self.segmented();
        let protected_cap = protected_cap_for(entry_cap);
        let sh = &mut self.shards[shard];
        sh.clock += 1;
        let at = sh.clock;
        if segmented {
            if sh.protected.contains(&key) {
                sh.last.insert(key, at);
            } else {
                // Promote from probation; demote the coldest protected
                // entry (keeping its earned index) on overflow.
                sh.protected.insert(key);
                sh.last.insert(key, at);
                if sh.protected.len() as u64 > protected_cap {
                    if let Some(demoted) = sh.coldest(|k| sh.protected.contains(k)) {
                        sh.protected.remove(&demoted);
                    }
                }
            }
        } else {
            sh.last.insert(key, at);
        }
    }

    /// The victim the policy would evict next: probation first (whole
    /// resident set under plain LRU), then protected.
    fn victim(&self, shard: usize) -> Option<PairKey> {
        let sh = &self.shards[shard];
        if self.segmented() {
            sh.coldest(|k| !sh.protected.contains(k)).or_else(|| {
                sh.coldest(|k| sh.protected.contains(k))
            })
        } else {
            sh.coldest(|_| true)
        }
    }

    fn lookup(&mut self, a: EntityId, b: EntityId) -> (f64, LookupEvents) {
        let key = canonical_key(a, b);
        let shard = shard_index(key);
        let entry_cap = self.entry_caps[shard];
        let mut events = LookupEvents::default();
        if let Some(&v) = self.shards[shard].entries.get(&key) {
            self.note_hit(shard, entry_cap, key);
            self.hits += 1;
            events.hit = true;
            return (v, events);
        }
        let v = value_of(key, self.generation);
        self.misses += 1;
        let mut admitted = true;
        if self.bounded {
            if self.gated() {
                self.record_frequency(shard, entry_cap, key);
            }
            while self.shards[shard].entries.len() as u64 + 1 > entry_cap {
                let Some(victim) = self.victim(shard) else {
                    admitted = false;
                    break;
                };
                if self.gated() {
                    let sh = &self.shards[shard];
                    let freq = |k: &PairKey| sh.counts.get(k).copied().unwrap_or(0);
                    if freq(&key) <= freq(&victim) {
                        admitted = false;
                        break;
                    }
                }
                let sh = &mut self.shards[shard];
                sh.entries.remove(&victim);
                sh.last.remove(&victim);
                sh.protected.remove(&victim);
                self.evictions += 1;
                events.evicted.push(victim);
            }
        }
        if admitted {
            let sh = &mut self.shards[shard];
            sh.clock += 1;
            let at = sh.clock;
            sh.entries.insert(key, v);
            sh.last.insert(key, at); // fresh inserts land in probation
            self.inserts += 1;
            events.inserted = true;
        } else {
            self.admit_rejected += 1;
            events.admit_rejected = true;
        }
        (v, events)
    }

    fn advance_generation(&mut self, generation: u64) {
        if generation == self.generation {
            return;
        }
        self.generation = generation;
        for sh in &mut self.shards {
            self.evictions += sh.entries.len() as u64;
            sh.entries.clear();
            sh.last.clear();
            sh.protected.clear();
            sh.counts.clear();
            sh.samples = 0;
            // The logical clock keeps running, like the real shard's.
        }
    }

    fn contents(&self) -> Vec<(PairKey, f64)> {
        self.shards.iter().flat_map(|sh| sh.entries.iter().map(|(&k, &v)| (k, v))).collect()
    }
}

/// One step of a generated access trace.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lookup(u32, u32),
    /// Advance to a fresh generation (true) or re-announce the current one
    /// (false — must be a no-op on both sides).
    Advance(bool),
}

/// Replays `ops` on the real cache and the oracle in lockstep, asserting
/// byte-identical events, values, final contents, counters, and the
/// conservation laws.
fn check_trace(config: CacheConfig, ops: &[Op]) {
    let metrics = Metrics::new();
    let cache = PairCache::new(config, &metrics);
    let mut oracle = Oracle::new(config);
    let mut generation = 0u64;
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Lookup(a, b) => {
                let (a, b) = (EntityId(a), EntityId(b));
                let key = canonical_key(a, b);
                let (want_v, want_ev) = oracle.lookup(a, b);
                let (got_v, got_ev) = cache.get_or_insert_with(a, b, || value_of(key, generation));
                assert_eq!(
                    got_ev, want_ev,
                    "event divergence at step {step} ({config:?}, key {key:?})"
                );
                assert_eq!(
                    got_v.to_bits(),
                    want_v.to_bits(),
                    "value divergence at step {step} ({config:?}, key {key:?})"
                );
            }
            Op::Advance(fresh) => {
                if fresh {
                    generation += 1;
                }
                oracle.advance_generation(generation);
                cache.advance_generation(generation);
            }
        }
    }
    assert_eq!(cache.contents(), oracle.contents(), "final contents diverged ({config:?})");
    assert_eq!(cache.hits(), oracle.hits);
    assert_eq!(cache.misses(), oracle.misses);
    assert_eq!(cache.inserts(), oracle.inserts);
    assert_eq!(cache.evictions(), oracle.evictions);
    assert_eq!(cache.admit_rejected(), oracle.admit_rejected);
    assert_eq!(cache.stale_discards(), 0, "single-threaded traces never race a swap");
    // Conservation laws.
    let lookups = ops.iter().filter(|op| matches!(op, Op::Lookup(..))).count() as u64;
    assert_eq!(cache.hits() + cache.misses(), lookups);
    assert_eq!(cache.misses(), cache.inserts() + cache.admit_rejected());
    assert_eq!(cache.inserts(), cache.evictions() + cache.len() as u64);
    assert_eq!(cache.bytes_used(), cache.len() as u64 * ENTRY_BYTES);
    if let Some(cap) = config.max_bytes {
        assert!(cache.bytes_used() <= cap);
        assert!(cache.bytes_peak() <= cap);
    }
}

const POLICIES: [EvictionPolicy; 3] =
    [EvictionPolicy::Lru, EvictionPolicy::SegmentedLru, EvictionPolicy::TinyLfuSlru];

/// A looping scan over a small universe: lots of collisions, promotions,
/// and (for tight caps) evictions.
fn scan_ops(universe: u32, rounds: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for r in 0..rounds {
        for i in 0..universe {
            ops.push(Op::Lookup(i, (i + 1 + r as u32) % universe));
        }
    }
    ops
}

#[test]
fn oracle_agreement_on_fixed_traces_all_policies() {
    for policy in POLICIES {
        for cap_entries in [0u64, 1, 2, 5, 16, 64] {
            let config =
                CacheConfig::bounded(cap_entries * ENTRY_BYTES).with_policy(policy);
            check_trace(config, &scan_ops(9, 6));
        }
        check_trace(CacheConfig::unbounded().with_policy(policy), &scan_ops(9, 6));
    }
}

#[test]
fn zero_cap_rejects_everything_but_answers_correctly() {
    for policy in POLICIES {
        let config = CacheConfig::bounded(0).with_policy(policy);
        let metrics = Metrics::new();
        let cache = PairCache::new(config, &metrics);
        for i in 0..20u32 {
            let key = canonical_key(EntityId(i), EntityId(i + 1));
            let (v, ev) = cache.get_or_insert_with(key.0, key.1, || value_of(key, 0));
            assert_eq!(v.to_bits(), value_of(key, 0).to_bits());
            assert!(ev.admit_rejected && !ev.inserted && ev.evicted.is_empty());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.admit_rejected(), 20);
        assert_eq!(cache.evictions(), 0);
        check_trace(config, &scan_ops(7, 3));
    }
}

#[test]
fn cap_larger_than_universe_never_evicts_and_matches_unbounded() {
    // 8 entities -> at most 36 canonical pairs; 4096 entries is far above.
    let ops = scan_ops(8, 5);
    for policy in POLICIES {
        let big = CacheConfig::bounded(4096 * ENTRY_BYTES).with_policy(policy);
        check_trace(big, &ops);
        let metrics = Metrics::new();
        let bounded = PairCache::new(big, &metrics);
        let unbounded = PairCache::new(CacheConfig::unbounded(), &Metrics::new());
        for &op in &ops {
            let Op::Lookup(a, b) = op else { continue };
            let key = canonical_key(EntityId(a), EntityId(b));
            let (vb, eb) = bounded.get_or_insert_with(key.0, key.1, || value_of(key, 0));
            let (vu, eu) = unbounded.get_or_insert_with(key.0, key.1, || value_of(key, 0));
            assert_eq!(vb.to_bits(), vu.to_bits());
            assert_eq!(eb.hit, eu.hit, "an oversized cap must not change hit/miss behaviour");
        }
        assert_eq!(bounded.evictions(), 0);
        assert_eq!(bounded.admit_rejected(), 0);
        assert_eq!(bounded.contents(), unbounded.contents());
    }
}

#[test]
fn generation_advances_compose_with_eviction_in_traces() {
    for policy in POLICIES {
        let mut ops = scan_ops(6, 2);
        ops.push(Op::Advance(true));
        ops.extend(scan_ops(6, 2));
        ops.push(Op::Advance(false)); // same-generation no-op
        ops.extend(scan_ops(6, 1));
        ops.push(Op::Advance(true));
        ops.extend(scan_ops(6, 3));
        check_trace(CacheConfig::bounded(3 * ENTRY_BYTES).with_policy(policy), &ops);
        check_trace(CacheConfig::bounded(64 * ENTRY_BYTES).with_policy(policy), &ops);
    }
}

/// Strategy for one trace op: mostly lookups over a 10-entity universe,
/// with occasional fresh-generation advances and same-generation no-ops.
fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..10, 0u32..10, 0u32..10).prop_map(|(kind, a, b)| match kind {
        0 => Op::Advance(true),
        1 => Op::Advance(false),
        _ => Op::Lookup(a, b),
    })
}

/// Strategy for an entry-count cap spanning zero, binding, and
/// far-above-universe sizes.
fn arb_cap_entries() -> impl Strategy<Value = u64> {
    const CAPS: [u64; 7] = [0, 1, 2, 3, 5, 8, 10_000];
    (0usize..CAPS.len()).prop_map(|i| CAPS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline model test: arbitrary traces, every policy, a spread
    /// of caps from zero through binding to far-above-universe. The real
    /// cache and the oracle must agree event by event.
    #[test]
    fn real_cache_matches_oracle_on_arbitrary_traces(
        ops in proptest::collection::vec(arb_op(), 0..250),
        cap_entries in arb_cap_entries(),
        policy_idx in 0usize..3,
    ) {
        let config =
            CacheConfig::bounded(cap_entries * ENTRY_BYTES).with_policy(POLICIES[policy_idx]);
        check_trace(config, &ops);
    }

    /// Unbounded traces agree too (the legacy fast path).
    #[test]
    fn unbounded_cache_matches_oracle(
        ops in proptest::collection::vec(arb_op(), 0..150),
        policy_idx in 0usize..3,
    ) {
        check_trace(CacheConfig::unbounded().with_policy(POLICIES[policy_idx]), &ops);
    }
}

// ---------------------------------------------------------------------
// Generation-swap vs. lookup interleaving hammer (satellite 3).
// ---------------------------------------------------------------------

mod hammer {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Encodes the generation a value was computed under so readers can
    /// prove freshness: `v = gen * 1e6 + (a + b)`.
    fn gen_value(world_gen: &AtomicU64, a: EntityId, b: EntityId) -> f64 {
        (world_gen.load(Ordering::Acquire) * 1_000_000 + u64::from(a.0 + b.0)) as f64
    }

    fn decode_gen(v: f64) -> u64 {
        (v as u64) / 1_000_000
    }

    /// A tiny deterministic xorshift so workers need no external RNG.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn no_stale_generation_value_after_advance_and_conservation_holds() {
        const WORKERS: usize = 4;
        const LOOKUPS_PER_WORKER: u64 = 30_000;
        const SWAPS: u64 = 120;
        const UNIVERSE: u64 = 24;
        let cap = 6 * SHARD_COUNT as u64 * ENTRY_BYTES; // tight: forces eviction traffic
        let metrics = Metrics::new();
        let cache = Arc::new(PairCache::new(CacheConfig::bounded(cap), &metrics));
        // What the measure sees (moves first) vs. what is proven published
        // (moves only after advance_generation returns).
        let world_gen = Arc::new(AtomicU64::new(0));
        let published = Arc::new(AtomicU64::new(0));
        let lookups_done = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let cache = Arc::clone(&cache);
                let world_gen = Arc::clone(&world_gen);
                let published = Arc::clone(&published);
                let lookups_done = Arc::clone(&lookups_done);
                s.spawn(move || {
                    let mut rng = 0x9e37_79b9_7f4a_7c15u64.wrapping_add(w as u64 + 1);
                    for _ in 0..LOOKUPS_PER_WORKER {
                        let a = EntityId((xorshift(&mut rng) % UNIVERSE) as u32);
                        let b = EntityId((xorshift(&mut rng) % UNIVERSE) as u32);
                        // The floor is read *before* the lookup begins:
                        // everything `advance_generation` completed by now
                        // must be invisible in what we are served.
                        let floor = published.load(Ordering::Acquire);
                        let (v, _) =
                            cache.get_or_insert_with(a, b, || gen_value(&world_gen, a, b));
                        let got = decode_gen(v);
                        assert!(
                            got >= floor,
                            "stale value from generation {got} served after \
                             generation {floor} was fully published"
                        );
                        lookups_done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // Swapper + cap observer: swap generations while asserting the
            // byte bound at every observation point.
            let cache_obs = Arc::clone(&cache);
            let world_gen = Arc::clone(&world_gen);
            let published = Arc::clone(&published);
            s.spawn(move || {
                for g in 1..=SWAPS {
                    // Same order a serving epoch swap uses: the world
                    // changes first, then the cache is invalidated, then
                    // the swap is announced as complete.
                    world_gen.store(g, Ordering::Release);
                    cache_obs.advance_generation(g);
                    published.store(g, Ordering::Release);
                    assert!(
                        cache_obs.bytes_used() <= cap,
                        "byte cap violated at observation point (swap {g})"
                    );
                    for _ in 0..50 {
                        std::thread::yield_now();
                    }
                }
            });
        });

        // Conservation laws over the whole run, exact under concurrency.
        let lookups = lookups_done.load(Ordering::Relaxed);
        assert_eq!(lookups, WORKERS as u64 * LOOKUPS_PER_WORKER);
        assert_eq!(cache.hits() + cache.misses(), lookups, "lookups == hits + misses");
        assert_eq!(
            cache.misses(),
            cache.inserts() + cache.admit_rejected() + cache.stale_discards(),
            "misses == inserts + admit_rejected + stale_discards"
        );
        assert_eq!(
            cache.inserts(),
            cache.evictions() + cache.len() as u64,
            "inserts == evictions + live_entries"
        );
        assert!(cache.bytes_used() <= cap);
        assert!(cache.bytes_peak() <= cap, "summed shard peaks stay under the cap");
        assert_eq!(cache.bytes_used(), cache.len() as u64 * ENTRY_BYTES);
        // The swapper raced real traffic: with 120 swaps over 120k lookups
        // the stale-discard window is hit in practice on every run, but we
        // only *require* the accounting to be exact, not a specific count.
        cache.publish_gauges();
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("relatedness_cache_bytes"), cache.bytes_used());
        assert_eq!(snap.gauge("relatedness_cache_entries"), cache.len() as u64);
    }
}
